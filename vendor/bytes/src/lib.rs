//! Offline subset of the `bytes` API.
//!
//! [`Bytes`] is an immutable, cheaply clonable byte buffer (an `Arc`'d
//! slice view); [`BytesMut`] is a growable buffer with a read cursor that
//! can be frozen into [`Bytes`] without copying the tail.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Create from a static slice (copies; the real crate borrows).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the same backing storage (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A growable byte buffer with an amortized-O(1) read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor: bytes before `start` have been consumed by `advance`.
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Remove and return the first `at` unread bytes as a new `BytesMut`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.buf[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact();
        BytesMut {
            buf: head,
            start: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.start == 0 {
            Bytes::from(self.buf)
        } else {
            Bytes::from(self.buf[self.start..].to_vec())
        }
    }

    /// Clear all content.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    fn compact(&mut self) {
        // Reclaim consumed prefix once it dominates the buffer.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::copy_from_slice(self).fmt(f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: v, start: 0 }
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;
    /// The unread contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read a little-endian `u32` and advance past it.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read one byte and advance past it.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
        self.compact();
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cheap_clone_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b.slice(1..3)[..], &[2, 3]);
    }

    #[test]
    fn bytesmut_frame_cycle() {
        let mut m = BytesMut::new();
        m.put_u32_le(3);
        m.put_slice(b"abc");
        assert_eq!(m.len(), 7);
        m.advance(4);
        let payload = m.split_to(3).freeze();
        assert_eq!(&payload[..], b"abc");
        assert!(m.is_empty());
    }
}
