//! Offline subset of the `criterion` API.
//!
//! A thin wall-clock harness: each benchmark runs for roughly the
//! configured measurement time and reports the mean per-iteration timing
//! (plus derived throughput) as plain text. No statistical analysis, no
//! HTML reports.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    /// Filled by `iter`: (iterations, total elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `f` repeatedly for about the configured measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration over a window, so a single anomalous first
        // iteration (lazy init, cold caches) cannot skew the iteration
        // budget.
        let warmup = (self.measurement_time / 10).max(Duration::from_millis(10));
        let cal_start = Instant::now();
        let mut cal_iters: u64 = 0;
        loop {
            black_box(f());
            cal_iters += 1;
            if cal_start.elapsed() >= warmup {
                break;
            }
        }
        let per_iter = (cal_start.elapsed().as_nanos() / cal_iters as u128).max(1);
        let target_iters = (self.measurement_time.as_nanos() / per_iter)
            .clamp(self.sample_size as u128, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.result = Some((target_iters, elapsed));
    }

    /// `iter` variant that consumes per-iteration inputs (subset: setup is
    /// run per iteration, outside of nothing — timing includes setup).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut f: F,
        _size: BatchSize,
    ) {
        self.iter(move || f(setup()));
    }
}

/// Batch sizing hint for `iter_batched` (ignored by the subset).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

fn report(id: &str, throughput: Option<Throughput>, iters: u64, elapsed: Duration) {
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let mut line = format!(
        "bench {id:<40} {:>12.3} us/iter ({iters} iters in {:.2}s)",
        per_iter * 1e6,
        elapsed.as_secs_f64(),
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!(" {:>12.0} elem/s", n as f64 / per_iter));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!(
                " {:>12.1} MiB/s",
                n as f64 / per_iter / (1 << 20) as f64
            ));
        }
        None => {}
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Far below the real crate's 5s: the subset has no statistics
            // to converge, it only needs a stable mean.
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement time.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        // Cap: the subset is run in CI where long walls add nothing.
        self.measurement_time = t.min(Duration::from_secs(2));
        self
    }

    /// Set the sample size (lower bound on iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        if let Some((iters, elapsed)) = b.result {
            report(&id.to_string(), None, iters, elapsed);
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement_time: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput basis for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the group's sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Override the group's measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t.min(Duration::from_secs(2)));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            measurement_time: self
                .measurement_time
                .unwrap_or(self.criterion.measurement_time),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            result: None,
        };
        f(&mut b);
        if let Some((iters, elapsed)) = b.result {
            report(
                &format!("{}/{}", self.name, id),
                self.throughput,
                iters,
                elapsed,
            );
        }
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
