//! Offline subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Semantics match `parking_lot` where the workspace relies on them:
//! locking never returns a poison error (a poisoned std lock is unwrapped
//! into its inner guard), and `Condvar` works with this module's `Mutex`.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Block until notified or the absolute `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
