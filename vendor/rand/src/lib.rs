//! Offline subset of the `rand` 0.9 API.
//!
//! Deterministic, seedable generators only — no OS entropy source. The
//! generator is xoshiro256++ seeded via splitmix64, which is the same
//! construction the real `SmallRng` uses on 64-bit targets.

use std::ops::{Range, RangeInclusive};

/// Types that can produce random `u64`s; the base of everything else.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// User-facing sampling methods (rand 0.9 naming: `random`, `random_range`).
pub trait Rng: RngCore {
    /// Sample a uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// rand 0.8 spelling, kept for compatibility.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        self.random_range(range)
    }

    /// rand 0.8 spelling, kept for compatibility.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_bool(p)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Seed from a single `u64` (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from OS entropy — offline subset: seeds from the system clock
    /// and a per-call counter (unique, not cryptographic).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CTR: AtomicU64 = AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(t ^ CTR.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

/// Distribution support for `Rng::random`.
pub trait Standard {
    /// Sample one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Standard for i64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}
impl Standard for i8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard for isize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::random_range` can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` via Lemire reduction.
fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // 128-bit multiply-shift; bias is negligible for simulation purposes
    // and eliminated by one rejection round.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n || lo >= (n.wrapping_neg() % n) {
            return (m >> 64) as u64;
        }
    }
}

fn uniform_u128<R: RngCore>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0);
    if n <= u64::MAX as u128 {
        return uniform_u64(rng, n as u64) as u128;
    }
    // Simple rejection from the full 128-bit space.
    loop {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        let limit = u128::MAX - (u128::MAX % n);
        if x < limit {
            return x % n;
        }
    }
}

macro_rules! int_range {
    ($ty:ty, $wide:ty, $uniform:ident) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as $wide;
                self.start.wrapping_add($uniform(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return <$ty as Standard>::sample(rng);
                }
                lo.wrapping_add($uniform(rng, span) as $ty)
            }
        }
    };
}

int_range!(u8, u64, uniform_u64);
int_range!(u16, u64, uniform_u64);
int_range!(u32, u64, uniform_u64);
int_range!(u64, u64, uniform_u64);
int_range!(usize, u64, uniform_u64);
int_range!(u128, u128, uniform_u128);

macro_rules! signed_range {
    ($ty:ty, $uty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $uty).wrapping_sub(self.start as $uty) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = ((hi as $uty).wrapping_sub(lo as $uty) as u64).wrapping_add(1);
                if span == 0 {
                    return <$ty as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }
    };
}

signed_range!(i8, u8);
signed_range!(i16, u16);
signed_range!(i32, u32);
signed_range!(i64, u64);
signed_range!(isize, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let unit = f64::sample(rng);
        lo + unit * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 — fast, deterministic, and the
    /// same construction the real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the subset has a single generator family.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0u128..=5);
            assert!(w <= 5);
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
