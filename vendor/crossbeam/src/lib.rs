//! Offline subset of the `crossbeam` API: MPMC channels (with `select!`
//! and `tick`) and scoped threads, implemented over `std::sync`.

pub mod channel;
pub mod thread;
