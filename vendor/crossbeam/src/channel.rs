//! Multi-producer multi-consumer channels with crossbeam's semantics:
//! both [`Sender`] and [`Receiver`] are `Clone`; a channel disconnects
//! when all handles on the *other* side are gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signalled on push and on disconnect.
    not_empty: Condvar,
    /// Signalled on pop and on disconnect (bounded send waits on this).
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    capacity: Option<usize>,
    /// `select!` waiters registered on this channel; woken on push and on
    /// disconnect so a blocked select reacts without polling.
    select_wakers: Mutex<Vec<Arc<SelectWaker>>>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wake_selects(&self) {
        let wakers = self
            .select_wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for w in wakers.iter() {
            w.wake();
        }
    }
}

/// Wakeup cell shared between a blocked `select!` and the channels it
/// watches.
#[doc(hidden)]
pub struct SelectWaker {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl SelectWaker {
    fn new() -> Arc<Self> {
        Arc::new(SelectWaker {
            ready: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn wake(&self) {
        *self.ready.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Park until woken or `timeout` elapses; clears the ready flag.
    fn park(&self, timeout: Duration) {
        let mut ready = self.ready.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = Instant::now() + timeout;
        while !*ready {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            ready = self
                .cv
                .wait_timeout(ready, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        *ready = false;
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}
impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}
impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}
impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "recv timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}
impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel. Clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable (any one receiver gets each
/// message).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake receivers so they observe the disconnect.
            let _guard = self.shared.lock();
            self.shared.not_empty.notify_all();
            drop(_guard);
            self.shared.wake_selects();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.shared.lock();
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.lock();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self
                        .shared
                        .not_full
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                _ => break,
            }
        }
        queue.push_back(value);
        self.shared.not_empty.notify_one();
        drop(queue);
        self.shared.wake_selects();
        Ok(())
    }

    /// Try to send without blocking; returns the value on a full or
    /// disconnected channel.
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.lock();
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(SendError(value));
            }
        }
        queue.push_back(value);
        self.shared.not_empty.notify_one();
        drop(queue);
        self.shared.wake_selects();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            queue = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(v) = queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        capacity,
        select_wakers: Mutex::new(Vec::new()),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a bounded channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// A receiver that yields the current `Instant` every `period`.
///
/// Ticks are generated by a background thread that exits when the
/// receiver is dropped.
pub fn tick(period: Duration) -> Receiver<Instant> {
    let (tx, rx) = bounded::<Instant>(1);
    std::thread::Builder::new()
        .name("crossbeam-tick".into())
        .spawn(move || loop {
            std::thread::sleep(period);
            // try_send: drop the tick if the consumer is behind (matches
            // crossbeam, whose tick channel holds at most one message).
            match tx.try_send(Instant::now()) {
                Ok(()) => {}
                Err(_) if tx.shared.receivers.load(Ordering::SeqCst) == 0 => return,
                Err(_) => {}
            }
        })
        .expect("spawn tick thread");
    rx
}

/// Support for [`select!`]: poll a receiver, mapping disconnect to
/// `Some(Err(RecvError))` (a disconnected channel is always "ready").
#[doc(hidden)]
pub fn __select_poll<T>(rx: &Receiver<T>) -> Option<Result<T, RecvError>> {
    match rx.try_recv() {
        Ok(v) => Some(Ok(v)),
        Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
        Err(TryRecvError::Empty) => None,
    }
}

/// Registration of a `select!` waker on one channel; deregisters on drop
/// (including when an arm body `return`s out of the enclosing function).
#[doc(hidden)]
pub struct SelectGuard<T> {
    shared: Arc<Shared<T>>,
    waker: Arc<SelectWaker>,
}

impl<T> Drop for SelectGuard<T> {
    fn drop(&mut self) {
        let mut wakers = self
            .shared
            .select_wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        wakers.retain(|w| !Arc::ptr_eq(w, &self.waker));
    }
}

/// Register `waker` on `rx`'s channel so pushes and disconnects wake a
/// blocked [`select!`].
#[doc(hidden)]
pub fn __select_register<T>(rx: &Receiver<T>, waker: &Arc<SelectWaker>) -> SelectGuard<T> {
    rx.shared
        .select_wakers
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(Arc::clone(waker));
    SelectGuard {
        shared: Arc::clone(&rx.shared),
        waker: Arc::clone(waker),
    }
}

/// Make a fresh waker for one [`select!`] block.
#[doc(hidden)]
pub fn __select_waker() -> Arc<SelectWaker> {
    SelectWaker::new()
}

/// Park the waker (blocking wakeup path of [`select!`]). The timeout is a
/// safety net only; every push/disconnect wakes the waker promptly.
#[doc(hidden)]
pub fn __select_park(waker: &Arc<SelectWaker>) {
    waker.park(Duration::from_millis(10));
}

/// Wait until one of several receive operations is ready, then run its arm.
///
/// Offline subset: supports only `recv(ch) -> var => body` arms. Blocking
/// is condvar-based: each polled channel wakes the select on push and on
/// disconnect, so the idle path costs no CPU.
#[macro_export]
macro_rules! select {
    ( $( recv($ch:expr) -> $var:pat => $body:block )+ ) => {{
        let __waker = $crate::channel::__select_waker();
        // One guard per arm; dropped when the block exits (normally or via
        // `return` from an arm body), deregistering the waker.
        let __guards = ( $( $crate::channel::__select_register(&$ch, &__waker), )+ );
        'crossbeam_select: loop {
            $(
                if let ::std::option::Option::Some(__res) =
                    $crate::channel::__select_poll(&$ch)
                {
                    let $var = __res;
                    let _ = $body;
                    // Unreachable when the arm body diverges (e.g. `return`).
                    #[allow(unreachable_code)]
                    {
                        break 'crossbeam_select;
                    }
                }
            )+
            $crate::channel::__select_park(&__waker);
        }
        drop(__guards);
    }};
}

// Make `crossbeam::channel::select!` resolvable (the macro itself lives at
// the crate root due to `#[macro_export]`).
pub use crate::select;

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap() + rx2.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_popped() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn tick_produces_instants() {
        let ticker = tick(Duration::from_millis(5));
        assert!(ticker.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn select_picks_ready_arm() {
        let (tx, rx) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx.send(7).unwrap();
        let mut picked = 0;
        select! {
            recv(rx) -> v => { assert_eq!(v.unwrap(), 7); picked += 1; }
            recv(rx2) -> _v => { picked += 2; }
        }
        assert_eq!(picked, 1, "must take the ready arm");
    }
}
