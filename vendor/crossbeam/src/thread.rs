//! Scoped threads with crossbeam's calling convention (the spawn closure
//! receives the scope handle), implemented over `std::thread::scope`.

/// Handle passed to [`scope`]'s closure; spawns threads joined at scope
/// exit.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. As in crossbeam, the closure
    /// receives the scope handle so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope handle; all spawned threads are joined before
/// `scope` returns. Returns `Err` if any unjoined child panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_is_reported() {
        let res = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
