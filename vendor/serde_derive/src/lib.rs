//! Offline subset of `serde_derive`, written against `proc_macro` alone
//! (no `syn`/`quote`, which are unavailable offline).
//!
//! Supported inputs: non-generic `struct`s with named fields and
//! non-generic `enum`s whose variants are unit / newtype / tuple / struct.
//! `#[serde(...)]` attributes are not supported and will be rejected.
//!
//! The generated code matches real serde_derive's call pattern on the
//! data-model: structs serialize via `serialize_struct` + per-field
//! `serialize_field`, deserialize via `deserialize_struct` with a
//! `visit_seq` visitor; enums dispatch on a `u32` variant index.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Input {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with a list of variants.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    /// `Variant(T)`.
    Newtype,
    /// `Variant(T1, ..., Tn)`, n >= 2.
    Tuple(usize),
    /// `Variant { f1: T1, ... }`.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream, derive_name: &str) -> Input {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Optional pub(...) restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({derive_name}): expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({derive_name}): expected a type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!(
                "derive({derive_name}): generic type `{name}` is not supported by the \
                 offline serde_derive subset"
            );
        }
    }

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "derive({derive_name}) on `{name}`: only brace-bodied structs/enums are \
             supported, got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body, derive_name),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body, derive_name),
        },
        k => panic!("derive({derive_name}): unsupported item kind `{k}`"),
    }
}

/// Parse `attr* vis? ident : type (, ...)*` bodies, returning field names.
fn parse_named_fields(body: TokenStream, derive_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (incl. doc comments) and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        let field = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive({derive_name}): expected a field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("derive({derive_name}): expected `:` after field `{field}`, got {other:?}")
            }
        }
        consume_type(&mut iter);
        fields.push(field);
    }
    fields
}

/// Consume one type, stopping at a top-level `,` (which is also consumed).
/// Tracks `<`/`>` nesting; commas inside angle brackets, parens, etc. belong
/// to the type.
fn consume_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth: usize = 0;
    for tree in iter.by_ref() {
        // Parens/brackets arrive as single groups, commas inside them are
        // already nested; only top-level punctuation needs tracking.
        if let TokenTree::Punct(p) = tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(body: TokenStream, derive_name: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let Some(tree) = iter.next() else { break };
        let name = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive({derive_name}): expected a variant name, got {other:?}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_arity(g.stream());
                iter.next();
                match arity {
                    0 => Shape::Unit,
                    1 => Shape::Newtype,
                    n => Shape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), derive_name);
                iter.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        // Consume the trailing comma (a discriminant `= expr` is not
        // supported).
        match iter.next() {
            None => {
                variants.push(Variant { name, shape });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                panic!("derive({derive_name}): unsupported token after variant `{name}`: {other:?}")
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

/// Number of comma-separated type slots in a tuple-variant body.
fn count_tuple_arity(body: TokenStream) -> usize {
    let mut angle_depth: usize = 0;
    let mut slots = 0usize;
    let mut in_slot = false;
    for tree in body {
        // A type may *start* with a punct (`&str`, `*const T`), so any
        // non-separator token opens a slot.
        let is_separator =
            matches!(&tree, TokenTree::Punct(p) if p.as_char() == ',') && angle_depth == 0;
        if is_separator {
            in_slot = false;
            continue;
        }
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        if !in_slot {
            slots += 1;
            in_slot = true;
        }
    }
    slots
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input, "Serialize") {
        Input::Struct { name, fields } => serialize_struct(&name, &fields),
        Input::Enum { name, variants } => serialize_enum(&name, &variants),
    };
    out.parse()
        .expect("derive(Serialize): generated code parses")
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::new();
    body.push_str(&format!(
        "let mut __st = serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
        fields.len()
    ));
    for f in fields {
        body.push_str(&format!(
            "serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
        ));
    }
    body.push_str("serde::ser::SerializeStruct::end(__st)\n");
    impl_serialize(name, &body)
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vname} => serde::Serializer::serialize_unit_variant(\
                 __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
            )),
            Shape::Newtype => arms.push_str(&format!(
                "{name}::{vname}(__f0) => serde::Serializer::serialize_newtype_variant(\
                 __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            )),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __tv = serde::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                    binders.join(", ")
                );
                for b in &binders {
                    arm.push_str(&format!(
                        "serde::ser::SerializeTupleVariant::serialize_field(&mut __tv, {b})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeTupleVariant::end(__tv)\n}\n");
                arms.push_str(&arm);
            }
            Shape::Struct(fields) => {
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __sv = serde::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    fields.join(", "),
                    fields.len()
                );
                for f in fields {
                    arm.push_str(&format!(
                        "serde::ser::SerializeStructVariant::serialize_field(\
                         &mut __sv, \"{f}\", {f})?;\n"
                    ));
                }
                arm.push_str("serde::ser::SerializeStructVariant::end(__sv)\n}\n");
                arms.push_str(&arm);
            }
        }
    }
    let body = format!("match self {{\n{arms}}}\n");
    impl_serialize(name, &body)
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "const _: () = {{\n\
         #[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\
         }}\n\
         }}\n\
         }};\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input, "Deserialize") {
        Input::Struct { name, fields } => deserialize_struct(&name, &fields),
        Input::Enum { name, variants } => deserialize_enum(&name, &variants),
    };
    out.parse()
        .expect("derive(Deserialize): generated code parses")
}

/// `visit_seq` body constructing `ctor(field...)` from sequential elements.
fn visit_seq_body(ctor: &str, fields: &[String], braced: bool) -> String {
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        body.push_str(&format!(
            "let {f} = match serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             Some(__v) => __v,\n\
             None => return Err(serde::de::Error::invalid_length({i}, &\"{ctor}\")),\n\
             }};\n"
        ));
    }
    if braced {
        body.push_str(&format!("Ok({ctor} {{ {} }})\n", fields.join(", ")));
    } else if fields.is_empty() {
        body.push_str(&format!("Ok({ctor})\n"));
    } else {
        body.push_str(&format!("Ok({ctor}({}))\n", fields.join(", ")));
    }
    body
}

/// A visitor struct named `vis_name` whose `visit_seq` runs `seq_body`.
fn seq_visitor(vis_name: &str, value_ty: &str, expecting: &str, seq_body: &str) -> String {
    format!(
        "struct {vis_name};\n\
         impl<'de> serde::de::Visitor<'de> for {vis_name} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         write!(__f, \"{expecting}\")\n\
         }}\n\
         fn visit_seq<__A: serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         {seq_body}\
         }}\n\
         }}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let field_list = fields
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let visitor = seq_visitor(
        "__Visitor",
        name,
        &format!("struct {name}"),
        &visit_seq_body(name, fields, true),
    );
    format!(
        "const _: () = {{\n\
         #[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         {visitor}\
         serde::Deserializer::deserialize_struct(\
         __deserializer, \"{name}\", &[{field_list}], __Visitor)\n\
         }}\n\
         }}\n\
         }};\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let variant_list = variants
        .iter()
        .map(|v| format!("\"{}\"", v.name))
        .collect::<Vec<_>>()
        .join(", ");

    let mut arms = String::new();
    let mut inner_visitors = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{idx}u32 => {{\n\
                 serde::de::VariantAccess::unit_variant(__variant)?;\n\
                 Ok({name}::{vname})\n\
                 }}\n"
            )),
            Shape::Newtype => arms.push_str(&format!(
                "{idx}u32 => serde::de::VariantAccess::newtype_variant(__variant)\
                 .map({name}::{vname}),\n"
            )),
            Shape::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let vis_name = format!("__Variant{idx}");
                inner_visitors.push_str(&seq_visitor(
                    &vis_name,
                    name,
                    &format!("tuple variant {name}::{vname}"),
                    &visit_seq_body(&format!("{name}::{vname}"), &binders, false),
                ));
                arms.push_str(&format!(
                    "{idx}u32 => serde::de::VariantAccess::tuple_variant(\
                     __variant, {n}, {vis_name}),\n"
                ));
            }
            Shape::Struct(fields) => {
                let vis_name = format!("__Variant{idx}");
                let field_list = fields
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                inner_visitors.push_str(&seq_visitor(
                    &vis_name,
                    name,
                    &format!("struct variant {name}::{vname}"),
                    &visit_seq_body(&format!("{name}::{vname}"), fields, true),
                ));
                arms.push_str(&format!(
                    "{idx}u32 => serde::de::VariantAccess::struct_variant(\
                     __variant, &[{field_list}], {vis_name}),\n"
                ));
            }
        }
    }

    format!(
        "const _: () = {{\n\
         #[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         {inner_visitors}\
         struct __Visitor;\n\
         impl<'de> serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {name};\n\
         fn expecting(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         write!(__f, \"enum {name}\")\n\
         }}\n\
         fn visit_enum<__A: serde::de::EnumAccess<'de>>(self, __data: __A) \
         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
         let (__idx, __variant): (u32, _) = serde::de::EnumAccess::variant(__data)?;\n\
         match __idx {{\n\
         {arms}\
         __other => Err(serde::de::Error::unknown_variant(\
         &__other.to_string(), &[{variant_list}])),\n\
         }}\n\
         }}\n\
         }}\n\
         serde::Deserializer::deserialize_enum(\
         __deserializer, \"{name}\", &[{variant_list}], __Visitor)\n\
         }}\n\
         }}\n\
         }};\n"
    )
}
