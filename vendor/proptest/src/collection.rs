//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::{SizeRange, Strategy};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt::Debug;

/// Strategy for `Vec`s with random length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap`s with random size.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord + Debug,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        // Duplicate keys collapse, as in real proptest: the map may come
        // out smaller than `len`.
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// A `BTreeMap` whose size is drawn from `size`.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord + Debug,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}
