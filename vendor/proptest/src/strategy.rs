//! The [`Strategy`] trait and its combinators.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Sample one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values failing the predicate (resampling, bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut SmallRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

/// Strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}): predicate rejected 1000 consecutive samples",
            self.whence
        )
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let ix = rng.random_range(0..self.options.len());
        self.options[ix].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut SmallRng) -> $ty {
                    rng.random_range(self.clone())
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut SmallRng) -> f32 {
        rng.random_range(self.clone())
    }
}

// ---------------------------------------------------------------------------
// String patterns as strategies
// ---------------------------------------------------------------------------

/// `&str` regex patterns act as `String` strategies. The offline subset
/// understands `.{m,n}` / `.{n}` / `.*` shapes (arbitrary printable
/// characters with the given length bounds); anything else falls back to a
/// short printable string.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 8));
        let len = rng.random_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Mostly ASCII with occasional multibyte, exercising UTF-8
                // handling without blowing up payload sizes.
                if rng.random_range(0u32..16) == 0 {
                    'λ'
                } else {
                    char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap()
                }
            })
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix('.')?;
    if rest == "*" {
        return Some((0, 16));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    match body.split_once(',') {
        Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
        None => {
            let n = body.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

// ---------------------------------------------------------------------------
// Composites as strategies
// ---------------------------------------------------------------------------

/// A `Vec` of strategies generates element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ( $( ($($t:ident . $idx:tt),+) )+ ) => {
        $(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Element-count bounds for collection strategies (`usize`,
/// `Range<usize>`, and `RangeInclusive<usize>` convert into it).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum element count.
    pub lo: usize,
    /// Inclusive maximum element count.
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}
