//! Offline subset of the `proptest` API: property-based testing by random
//! sampling. Failing inputs are reported verbatim but **not shrunk**.
//!
//! Determinism: each `proptest!` test derives its RNG seed from the test's
//! source location, so failures reproduce across runs. Set
//! `PROPTEST_CASES` to override the per-test case count.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

/// A strategy producing any value of `T` (full domain).
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a test module usually imports.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( @cfg ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = __config.effective_cases();
                // Seed from the source location: deterministic across runs,
                // distinct across tests.
                let __seed = $crate::test_runner::location_seed(
                    file!(), line!(), column!(),
                );
                let mut __rng = <$crate::__rand::rngs::SmallRng
                    as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                // Evaluate each strategy once, bound under the arg's name
                // (shadowed by the sampled value inside the case closure).
                $(let $arg = $strat;)+
                for __case in 0..__cases {
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &$arg, &mut __rng,
                            );
                        )+
                        let __desc = ::std::format!(
                            concat!($(stringify!($arg), " = {:?}, "),+),
                            $(&$arg),+
                        );
                        let __run = (|| -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > { $body ::std::result::Result::Ok(()) })();
                        match __run {
                            ::std::result::Result::Ok(()) => Ok(()),
                            ::std::result::Result::Err(e) => {
                                ::std::eprintln!(
                                    "proptest case {}/{} failed with input: {}",
                                    __case + 1, __cases, __desc,
                                );
                                Err(e)
                            }
                        }
                    };
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_)
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg)
                        ) => {
                            ::std::panic!("proptest property failed: {}", msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (left: {:?}, right: {:?})",
            ::std::format!($($fmt)+), __l, __r,
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
