//! Test-runner configuration and case-level error reporting.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for shrinking support; without
        // shrinking a smaller count keeps test walltime proportionate.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed (test failure).
    Fail(String),
    /// The case was discarded by `prop_assume!` (not a failure).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result type `proptest!` bodies implicitly produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic seed derived from a source location (FNV-1a).
pub fn location_seed(file: &str, line: u32, column: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file
        .bytes()
        .chain(line.to_le_bytes())
        .chain(column.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
