//! The [`Arbitrary`] trait backing [`crate::any`].

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
pub struct Any<T>(PhantomData<T>);

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any(PhantomData)
    }
}

macro_rules! arbitrary_prim {
    ($($ty:ty => |$rng:ident| $sample:expr;)+) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, $rng: &mut SmallRng) -> $ty {
                    $sample
                }
            }
            impl Arbitrary for $ty {
                type Strategy = Any<$ty>;
                fn arbitrary() -> Any<$ty> {
                    Any::default()
                }
            }
        )+
    };
}

arbitrary_prim! {
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    bool => |rng| rng.next_u64() & 1 == 1;
    // Full bit patterns: exercises NaN, infinities, and subnormals.
    f64 => |rng| f64::from_bits(rng.next_u64());
    f32 => |rng| f32::from_bits(rng.next_u64() as u32);
    char => |rng| loop {
        if let Some(c) = char::from_u32(rng.random_range(0u32..=0x10FFFF)) {
            break c;
        }
    };
}
