//! `Option` strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Strategy yielding `None` about a quarter of the time.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        if rng.random_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// An `Option<T>` strategy from a `T` strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
