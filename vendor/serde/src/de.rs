//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Trait for deserialization errors.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A value was missing for `field`.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    /// A variant index/name was not recognized.
    fn unknown_variant(variant: &str, _expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown variant `{variant}`"))
    }

    /// Wrong number of elements in a sequence.
    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {exp}"))
    }
}

/// What a [`Visitor`] expected, for error messages.
pub trait Expected {
    /// Describe the expectation.
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(formatter, "{self}")
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, formatter)
    }
}

/// A data structure that can be deserialized from any format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful `Deserialize` driver (serde's seed mechanism).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialize using this seed.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserialize whatever the input holds (self-describing formats only).
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `bool` is expected.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `i8` is expected.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `i16` is expected.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `i32` is expected.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `i64` is expected.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `u8` is expected.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `u16` is expected.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `u32` is expected.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `u64` is expected.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `f32` is expected.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `f64` is expected.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `char` is expected.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a string slice is expected.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an owned string is expected.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a byte slice is expected.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an owned byte buffer is expected.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: an `Option` is expected.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a `()` is expected.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a unit struct is expected.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: a newtype struct is expected.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: a variable-length sequence is expected.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a tuple of `len` elements is expected.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: a tuple struct is expected.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: a map is expected.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: a struct with the given fields is expected.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: an enum with the given variants is expected.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: a struct field / enum variant identifier is expected.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: the value will be discarded.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether this format is human readable (default `true`, as in serde).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Drives construction of one value from format callbacks.
///
/// Defaults forward narrower visits to wider ones (as in serde), and
/// anything unhandled errors with the visitor's expectation.
pub trait Visitor<'de>: Sized {
    /// The value built by this visitor.
    type Value;

    /// Describe what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Input contained a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("bool {v}")))
    }
    /// Input contained an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("integer {v}")))
    }
    /// Input contained a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("integer {v}")))
    }
    /// Input contained an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Input contained an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("float {v}")))
    }
    /// Input contained a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("char {v:?}")))
    }
    /// Input contained a string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("string {v:?}")))
    }
    /// Input contained a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Input contained an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Input contained bytes.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("bytes")))
    }
    /// Input contained bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Input contained an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Input contained `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("none")))
    }
    /// Input contained `Some(...)`; deserialize the inner value.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(unexpected(&self, format_args!("some")))
    }
    /// Input contained `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, format_args!("unit")))
    }
    /// Input contained a newtype struct; deserialize the inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(unexpected(&self, format_args!("newtype struct")))
    }
    /// Input contained a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("sequence")))
    }
    /// Input contained a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("map")))
    }
    /// Input contained an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(unexpected(&self, format_args!("enum")))
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, got: fmt::Arguments<'_>) -> E {
    struct Exp<'a, 'de, V: Visitor<'de>>(&'a V, PhantomData<&'de ()>);
    impl<'a, 'de, V: Visitor<'de>> fmt::Display for Exp<'a, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format_args!(
        "invalid type: got {got}, expected {}",
        Exp(visitor, PhantomData)
    ))
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserialize the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining element count, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserialize the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserialize the next value with a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserialize the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserialize the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining entry count, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Access to the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserialize the variant tag with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserialize the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// The variant is a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant is a newtype variant; deserialize with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// The variant is a newtype variant.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant is a tuple variant with `len` fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// The variant is a struct variant with the given fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Deserializers over trivial in-memory values (`IntoDeserializer`
/// support), as used by formats to decode variant indices.
pub mod value {
    use super::{Deserializer, Error, Visitor};
    use std::marker::PhantomData;

    /// A deserializer holding one `u32`.
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<E> U32Deserializer<E> {
        /// Wrap a `u32`.
        pub fn new(value: u32) -> Self {
            U32Deserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    macro_rules! forward_to_visit_u32 {
        ($($m:ident)*) => {
            $(
                fn $m<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                    visitor.visit_u32(self.value)
                }
            )*
        };
    }

    impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        forward_to_visit_u32! {
            deserialize_any deserialize_bool deserialize_i8 deserialize_i16
            deserialize_i32 deserialize_i64 deserialize_u8 deserialize_u16
            deserialize_u32 deserialize_u64 deserialize_f32 deserialize_f64
            deserialize_char deserialize_str deserialize_string
            deserialize_bytes deserialize_byte_buf deserialize_option
            deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    }

    /// Conversion into a trivial deserializer.
    pub trait IntoDeserializer<'de, E: Error> {
        /// The deserializer produced.
        type Deserializer: Deserializer<'de, Error = E>;
        /// Convert self.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;
        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer::new(self)
        }
    }
}

pub use value::IntoDeserializer;
