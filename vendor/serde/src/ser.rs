//! Serialization half of the data model.

use std::fmt::Display;

/// Trait for serialization errors.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any format.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format that can serialize the serde data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Sub-serializer for variable-length sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    /// Whether this format is human readable (default `true`, as in serde).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Incremental serializer for sequences.
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for tuples.
pub trait SerializeTuple {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for tuple structs.
pub trait SerializeTupleStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for tuple enum variants.
pub trait SerializeTupleVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for maps.
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Serialize one entry (key then value).
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error> {
        self.serialize_key(key)?;
        self.serialize_value(value)
    }
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for structs.
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Incremental serializer for struct enum variants.
pub trait SerializeStructVariant {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
