//! Offline subset of the `serde` data model.
//!
//! Faithful (method-for-method on the used surface) to real serde: the
//! `wire` crate implements a complete binary format against these traits,
//! and the derive macros generate the same call patterns real
//! `serde_derive` would. Omitted: `i128`/`u128` hooks, `serde(...)`
//! attributes, and the self-describing-format helpers (`visit_map`-driven
//! struct decoding keyed by field name).

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
