//! `Serialize`/`Deserialize` implementations for std types, mirroring
//! serde's encodings (usize as u64, `Result` as an Ok/Err enum, maps as
//! key-value sequences).

use crate::de::{
    self, Deserialize, Deserializer, EnumAccess, MapAccess, SeqAccess, VariantAccess, Visitor,
};
use crate::ser::{
    Serialize, SerializeMap as _, SerializeSeq as _, SerializeTuple as _, Serializer,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// Forwarding impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($ty:ty, $ser:ident, $deser:ident, $visit:ident, $vty:ty, $expect:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, $expect)
                    }
                    fn $visit<E: de::Error>(self, v: $vty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deser(V)
            }
        }
    };
}

primitive!(
    bool,
    serialize_bool,
    deserialize_bool,
    visit_bool,
    bool,
    "a bool"
);
primitive!(i8, serialize_i8, deserialize_i8, visit_i8, i8, "an i8");
primitive!(
    i16,
    serialize_i16,
    deserialize_i16,
    visit_i16,
    i16,
    "an i16"
);
primitive!(
    i32,
    serialize_i32,
    deserialize_i32,
    visit_i32,
    i32,
    "an i32"
);
primitive!(
    i64,
    serialize_i64,
    deserialize_i64,
    visit_i64,
    i64,
    "an i64"
);
primitive!(u8, serialize_u8, deserialize_u8, visit_u8, u8, "a u8");
primitive!(u16, serialize_u16, deserialize_u16, visit_u16, u16, "a u16");
primitive!(u32, serialize_u32, deserialize_u32, visit_u32, u32, "a u32");
primitive!(u64, serialize_u64, deserialize_u64, visit_u64, u64, "a u64");
primitive!(
    f32,
    serialize_f32,
    deserialize_f32,
    visit_f32,
    f32,
    "an f32"
);
primitive!(
    f64,
    serialize_f64,
    deserialize_f64,
    visit_f64,
    f64,
    "an f64"
);
primitive!(
    char,
    serialize_char,
    deserialize_char,
    visit_char,
    char,
    "a char"
);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a usize")
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an isize")
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = &'de str;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a borrowed string")
            }
            fn visit_borrowed_str<E: de::Error>(self, v: &'de str) -> Result<&'de str, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_str(V)
    }
}

// ---------------------------------------------------------------------------
// Unit, Option, Result
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

/// `Result` is serialized the way serde does it: as an external enum with
/// variants `Ok` (index 0) and `Err` (index 1).
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => serializer.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => serializer.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, E>(PhantomData<(T, E)>);
        impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Visitor<'de> for V<T, E> {
            type Value = Result<T, E>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a Result enum")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (idx, variant) = data.variant::<u32>()?;
                match idx {
                    0 => variant.newtype_variant::<T>().map(Ok),
                    1 => variant.newtype_variant::<E>().map(Err),
                    v => Err(de::Error::unknown_variant(&v.to_string(), &["Ok", "Err"])),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of {N} elements")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(v) => out.push(v),
                        None => return Err(de::Error::invalid_length(i, &"array")),
                    }
                }
                out.try_into()
                    .map_err(|_| de::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impls {
    ( $( ( $len:expr => $( $t:ident . $idx:tt ),+ ) )+ ) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tup = serializer.serialize_tuple($len)?;
                    $( tup.serialize_element(&self.$idx)?; )+
                    tup.end()
                }
            }
            impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
                fn deserialize<__D: Deserializer<'de>>(
                    deserializer: __D,
                ) -> Result<Self, __D::Error> {
                    struct V<$($t),+>(PhantomData<($($t,)+)>);
                    impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                        type Value = ($($t,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, "a tuple of {} elements", $len)
                        }
                        #[allow(non_snake_case)]
                        fn visit_seq<__A: SeqAccess<'de>>(
                            self,
                            mut seq: __A,
                        ) -> Result<Self::Value, __A::Error> {
                            let mut __n = 0usize;
                            $(
                                let $t: $t = match seq.next_element()? {
                                    Some(v) => { __n += 1; v }
                                    None => return Err(de::Error::invalid_length(__n, &"tuple")),
                                };
                            )+
                            Ok(($($t,)+))
                        }
                    }
                    deserializer.deserialize_tuple($len, V(PhantomData))
                }
            }
        )+
    };
}

tuple_impls! {
    (1 => A.0)
    (2 => A.0, B.1)
    (3 => A.0, B.1, C.2)
    (4 => A.0, B.1, C.2, D.3)
    (5 => A.0, B.1, C.2, D.3, E.4)
    (6 => A.0, B.1, C.2, D.3, E.4, F.5)
    (7 => A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (8 => A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, H: BuildHasher> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for Vis<K, V, H>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Misc std types
// ---------------------------------------------------------------------------

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(2)?;
        tup.serialize_element(&self.as_secs())?;
        tup.serialize_element(&self.subsec_nanos())?;
        tup.end()
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (secs, nanos): (u64, u32) = Deserialize::deserialize(deserializer)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for std::path::PathBuf {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self.to_str() {
            Some(s) => serializer.serialize_str(s),
            None => Err(crate::ser::Error::custom("path is not valid UTF-8")),
        }
    }
}

impl<'de> Deserialize<'de> for std::path::PathBuf {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(std::path::PathBuf::from)
    }
}
