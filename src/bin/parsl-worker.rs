//! `parsl-worker` — the HTEX worker-pool process (§4.3.1).
//!
//! Spawned by `HtexExecutor::tcp` through the provider/launcher path, one
//! per node. Connects a [`nexus::TcpSpoke`] back to the interchange's hub,
//! registers its capacity, and serves task batches until shutdown or until
//! a dropped connection outlives the reconnect window ("managers, upon
//! losing contact with the interchange, exit immediately to avoid resource
//! wastage").
//!
//! ```text
//! parsl-worker --connect 127.0.0.1:9000 --name htex:node-0 --ix htex:ix \
//!              --workers 4 [--prefetch 4] [--batch 16] \
//!              [--heartbeat-ms 1000] [--threshold-ms 5000] \
//!              [--reconnect-ms 10000]
//! ```

use parsl_executors::{run_worker, WorkerOptions};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: parsl-worker --connect HOST:PORT --name NAME --ix IX \
         [--workers N] [--prefetch N] [--batch N] [--heartbeat-ms MS] \
         [--threshold-ms MS] [--reconnect-ms MS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut connect: Option<String> = None;
    let mut name: Option<String> = None;
    let mut ix: Option<String> = None;
    let mut workers = 1usize;
    let mut prefetch = 0usize;
    let mut batch_size = 16usize;
    let mut heartbeat_ms = 1000u64;
    let mut threshold_ms = 5000u64;
    let mut reconnect_ms = 10_000u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("parsl-worker: {flag} expects {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--connect" => connect = Some(val("HOST:PORT")),
            "--name" => name = Some(val("NAME")),
            "--ix" => ix = Some(val("NAME")),
            "--workers" => workers = parse(&val("N")),
            "--prefetch" => prefetch = parse(&val("N")),
            "--batch" => batch_size = parse(&val("N")),
            "--heartbeat-ms" => heartbeat_ms = parse(&val("MS")),
            "--threshold-ms" => threshold_ms = parse(&val("MS")),
            "--reconnect-ms" => reconnect_ms = parse(&val("MS")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("parsl-worker: unknown flag {other}");
                usage();
            }
        }
    }

    let (Some(connect), Some(name), Some(ix)) = (connect, name, ix) else {
        eprintln!("parsl-worker: --connect, --name, and --ix are required");
        usage();
    };
    if workers == 0 {
        eprintln!("parsl-worker: --workers must be at least 1");
        std::process::exit(2);
    }

    if let Err(e) = run_worker(WorkerOptions {
        connect,
        name,
        ix,
        workers,
        prefetch,
        batch_size: batch_size.max(1),
        heartbeat_period: Duration::from_millis(heartbeat_ms.max(1)),
        heartbeat_threshold: Duration::from_millis(threshold_ms.max(1)),
        reconnect_window: Duration::from_millis(reconnect_ms),
    }) {
        eprintln!("parsl-worker: {e}");
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("parsl-worker: invalid numeric argument {s:?}");
        std::process::exit(2)
    })
}
