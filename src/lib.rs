//! Facade crate: re-exports the full `parsl-rs` public API.
//!
//! See the README for a tour. The typical entry point is
//! [`parsl_core::DataFlowKernel`].
//!
//! # Quickstart
//!
//! ```
//! use parsl::prelude::*;
//!
//! let dfk = DataFlowKernel::builder()
//!     .executor(parsl::executors::ThreadPoolExecutor::new(2))
//!     .build()
//!     .unwrap();
//!
//! // @python_app equivalent: returns a future immediately.
//! let square = dfk.python_app("square", |x: i64| x * x);
//! let add = dfk.python_app("add", |a: i64, b: i64| a + b);
//!
//! // Futures as arguments become dependency edges: add(square(3), square(4)).
//! let a = parsl::core::call!(square, 3);
//! let b = parsl::core::call!(square, 4);
//! let c = parsl::core::call!(add, a, b);
//! assert_eq!(c.result().unwrap(), 25);
//! dfk.shutdown();
//! ```

pub use baselines;
pub use minimpi;
pub use nexus;
pub use parsl_core as core;
pub use parsl_data as data;
pub use parsl_executors as executors;
pub use parsl_monitor as monitor;
pub use parsl_providers as providers;
pub use simcluster;
pub use simnet;
pub use wire;

pub use parsl_core::prelude;
pub use parsl_core::prelude::*;
