//! Facade crate: re-exports the full `parsl-rs` public API.
//!
//! See the README for a tour. The typical entry point is
//! [`parsl_core::DataFlowKernel`].

pub use parsl_core as core;
pub use parsl_executors as executors;
pub use parsl_providers as providers;
pub use parsl_data as data;
pub use parsl_monitor as monitor;
pub use baselines;
pub use minimpi;
pub use nexus;
pub use simcluster;
pub use simnet;
pub use wire;

pub use parsl_core::prelude;
pub use parsl_core::prelude::*;
