//! The Parsl `File` object: a location-independent file reference.

use serde::{Deserialize, Serialize};

/// Access protocol for a [`File`] (§4.5: "Parsl files can be defined
/// either locally or using one of three data access protocols: HTTP, FTP,
/// and Globus").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// A path on the submitting machine / shared filesystem.
    Local,
    /// HTTP(S) download, executed as a regular task.
    Http,
    /// FTP download, executed as a regular task.
    Ftp,
    /// Globus third-party transfer, executed by the data manager.
    Globus,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scheme::Local => "local",
            Scheme::Http => "http",
            Scheme::Ftp => "ftp",
            Scheme::Globus => "globus",
        };
        f.write_str(s)
    }
}

/// A file reference that apps exchange instead of raw paths, keeping
/// programs location-independent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct File {
    /// How to reach the file.
    pub scheme: Scheme,
    /// Host/endpoint part (empty for local files).
    pub host: String,
    /// Path (or URL path) of the file.
    pub path: String,
}

impl File {
    /// Parse a URL-ish reference: `http://host/path`, `ftp://host/path`,
    /// `globus://endpoint/path`, `file://[host]/path`, or a bare local
    /// path.
    pub fn parse(url: &str) -> File {
        let (scheme, rest) = if let Some(r) = url.strip_prefix("http://") {
            (Scheme::Http, r)
        } else if let Some(r) = url.strip_prefix("https://") {
            (Scheme::Http, r)
        } else if let Some(r) = url.strip_prefix("ftp://") {
            (Scheme::Ftp, r)
        } else if let Some(r) = url.strip_prefix("globus://") {
            (Scheme::Globus, r)
        } else if let Some(r) = url.strip_prefix("file://") {
            // RFC 8089 forms: `file:///path` has an empty authority and
            // `file://host/path` names one. Either way the file is
            // reachable without a transfer, so both map to Local (the
            // host survives for display only).
            let (host, path) = match r.strip_prefix('/') {
                Some(p) => (String::new(), format!("/{p}")),
                None => match r.split_once('/') {
                    Some((h, p)) => (h.to_string(), format!("/{p}")),
                    None => (r.to_string(), "/".to_string()),
                },
            };
            return File {
                scheme: Scheme::Local,
                host,
                path,
            };
        } else {
            return File {
                scheme: Scheme::Local,
                host: String::new(),
                path: url.to_string(),
            };
        };
        match rest.split_once('/') {
            Some((host, path)) => File {
                scheme,
                host: host.to_string(),
                path: format!("/{path}"),
            },
            None => File {
                scheme,
                host: rest.to_string(),
                path: "/".to_string(),
            },
        }
    }

    /// The file's base name.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Full URL form.
    pub fn url(&self) -> String {
        match self.scheme {
            Scheme::Local => self.path.clone(),
            _ => format!("{}://{}{}", self.scheme, self.host, self.path),
        }
    }

    /// True when no transfer is needed.
    pub fn is_local(&self) -> bool {
        self.scheme == Scheme::Local
    }
}

impl std::fmt::Display for File {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.url())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_roundtrip() {
        for u in [
            "http://h/p/q.txt",
            "ftp://h/z.bin",
            "globus://ep/deep/tree/f.h5",
        ] {
            assert_eq!(File::parse(u).url(), u);
        }
        assert_eq!(File::parse("/a/b/c").url(), "/a/b/c");
    }

    #[test]
    fn https_maps_to_http_scheme() {
        let f = File::parse("https://secure/d.tar");
        assert_eq!(f.scheme, Scheme::Http);
        assert_eq!(f.host, "secure");
    }

    #[test]
    fn hostname_only_url() {
        let f = File::parse("http://justhost");
        assert_eq!(f.host, "justhost");
        assert_eq!(f.path, "/");
    }

    #[test]
    fn file_url_empty_authority_is_local() {
        let f = File::parse("file:///data/ref/hg38.fa");
        assert_eq!(f.scheme, Scheme::Local);
        assert_eq!(f.host, "");
        assert_eq!(f.path, "/data/ref/hg38.fa");
        assert!(f.is_local());
        assert_eq!(f.url(), "/data/ref/hg38.fa");
    }

    #[test]
    fn file_url_with_host_is_local() {
        let f = File::parse("file://nfs01/scratch/x.bin");
        assert_eq!(f.scheme, Scheme::Local);
        assert_eq!(f.host, "nfs01");
        assert_eq!(f.path, "/scratch/x.bin");
        assert!(f.is_local());
        assert_eq!(f.name(), "x.bin");
    }

    #[test]
    fn name_is_basename() {
        assert_eq!(File::parse("http://h/a/b/c.fastq").name(), "c.fastq");
        assert_eq!(File::parse("/x/y.z").name(), "y.z");
    }
}
