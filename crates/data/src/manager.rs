//! The data manager: transparent staging via dynamic data dependencies.

use crate::cache::{CacheStats, StagingCache};
use crate::file::{File, Scheme};
use parsl_core::app::{App, Dep};
use parsl_core::datamap::{DataHints, DataRef};
use parsl_core::error::AppError;
use parsl_core::future::AppFuture;
use parsl_core::registry::AppOptions;
use parsl_core::DataFlowKernel;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A file made available on the execution side: the result type of staging
/// tasks and the argument type apps should accept ("Parsl translates the
/// file reference to a local path via which the App can access the file").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagedFile {
    /// Path where the file's content is readable locally.
    pub local_path: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// Data manager configuration, including the simulated WAN model.
#[derive(Debug, Clone)]
pub struct DataManagerConfig {
    /// Where staged copies land (default: a temp subdirectory).
    pub staging_dir: PathBuf,
    /// Label of the executor that runs Globus transfers, standing in for
    /// "executed directly by the data manager" third-party transfer. When
    /// `None`, Globus transfers run like any other task.
    pub globus_executor: Option<String>,
    /// Per-transfer setup latency of the simulated WAN.
    pub wan_latency: Duration,
    /// Simulated HTTP bandwidth, bytes/second.
    pub http_bandwidth: u64,
    /// Simulated FTP bandwidth, bytes/second.
    pub ftp_bandwidth: u64,
    /// Simulated Globus bandwidth (parallel streams: fastest).
    pub globus_bandwidth: u64,
    /// When set, remote stage-ins flow through a [`StagingCache`] of this
    /// many bytes: repeated requests for the same URL hit the cache (or
    /// join the in-flight transfer) instead of re-crossing the WAN.
    pub cache_budget_bytes: Option<u64>,
}

impl Default for DataManagerConfig {
    fn default() -> Self {
        DataManagerConfig {
            staging_dir: std::env::temp_dir().join("parsl-staging"),
            globus_executor: None,
            wan_latency: Duration::from_millis(1),
            http_bandwidth: 8_000_000_000,
            ftp_bandwidth: 5_000_000_000,
            globus_bandwidth: 20_000_000_000,
            cache_budget_bytes: None,
        }
    }
}

impl DataManagerConfig {
    /// The WAN model: `latency + bytes / bandwidth` for the scheme.
    pub fn simulated_transfer_time(&self, scheme: Scheme, bytes: u64) -> Duration {
        let bw = match scheme {
            Scheme::Local => return Duration::ZERO,
            Scheme::Http => self.http_bandwidth,
            Scheme::Ftp => self.ftp_bandwidth,
            Scheme::Globus => self.globus_bandwidth,
        };
        self.wan_latency + Duration::from_secs_f64(bytes as f64 / bw as f64)
    }
}

/// Deterministic synthetic size for a "remote" file (the substitution for
/// data we cannot download): 10 kB–100 kB, keyed by URL.
fn synthetic_size(url: &str) -> u64 {
    10_000 + wire::fnv1a_str(url) % 90_000
}

/// Deterministic synthetic content for a "remote" file.
fn synthetic_content(url: &str, bytes: u64) -> Vec<u8> {
    let seed = wire::fnv1a_str(url);
    let mut out = Vec::with_capacity(bytes as usize);
    let mut state = seed;
    while (out.len() as u64) < bytes {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(bytes as usize);
    out
}

/// Registers staging apps on a DataFlowKernel and exposes stage-in/out.
pub struct DataManager {
    stage_local: App<(File,), StagedFile>,
    stage_http_ftp: App<(File,), StagedFile>,
    stage_globus: App<(File,), StagedFile>,
    stage_out_app: App<(StagedFile, File), StagedFile>,
    cache: Option<StagingCache>,
    wan_bytes: Arc<AtomicU64>,
}

impl DataManager {
    /// Create the manager; registers four staging apps on `dfk`.
    pub fn new(dfk: &Arc<DataFlowKernel>, config: DataManagerConfig) -> Self {
        std::fs::create_dir_all(&config.staging_dir).ok();
        let cfg = Arc::new(config);
        let wan_bytes = Arc::new(AtomicU64::new(0));

        let stage_local = dfk.python_app_fallible(
            "_parsl_stage_in_local",
            |f: File| -> Result<StagedFile, AppError> {
                let meta = std::fs::metadata(&f.path)
                    .map_err(|e| AppError::msg(format!("local file {}: {e}", f.path)))?;
                Ok(StagedFile {
                    local_path: f.path,
                    bytes: meta.len(),
                })
            },
        );

        let c = Arc::clone(&cfg);
        let w = Arc::clone(&wan_bytes);
        let stage_http_ftp = dfk.python_app_fallible(
            "_parsl_stage_in_transfer",
            move |f: File| -> Result<StagedFile, AppError> { simulate_fetch(&c, &w, &f) },
        );

        let c = Arc::clone(&cfg);
        let w = Arc::clone(&wan_bytes);
        let globus_options = AppOptions {
            executor: cfg.globus_executor.clone(),
            ..Default::default()
        };
        let stage_globus = dfk.python_app_cfg(
            "_parsl_stage_in_globus",
            globus_options,
            move |f: File| -> Result<StagedFile, AppError> { simulate_fetch(&c, &w, &f) },
        );

        let c = Arc::clone(&cfg);
        let stage_out_app = dfk.python_app_fallible(
            "_parsl_stage_out",
            move |src: StagedFile, dest: File| -> Result<StagedFile, AppError> {
                let content = std::fs::read(&src.local_path)
                    .map_err(|e| AppError::msg(format!("read {}: {e}", src.local_path)))?;
                match dest.scheme {
                    Scheme::Local => {
                        if let Some(parent) = std::path::Path::new(&dest.path).parent() {
                            std::fs::create_dir_all(parent)
                                .map_err(|e| AppError::msg(format!("mkdir: {e}")))?;
                        }
                        std::fs::write(&dest.path, &content)
                            .map_err(|e| AppError::msg(format!("write {}: {e}", dest.path)))?;
                        Ok(StagedFile {
                            local_path: dest.path,
                            bytes: content.len() as u64,
                        })
                    }
                    scheme => {
                        // Simulated upload: pay the WAN cost, mirror the
                        // bytes under the staging dir's outbound area.
                        std::thread::sleep(c.simulated_transfer_time(scheme, content.len() as u64));
                        let mirror = c.staging_dir.join("outbound").join(format!(
                            "{:016x}-{}",
                            wire::fnv1a_str(&dest.url()),
                            dest.name()
                        ));
                        if let Some(parent) = mirror.parent() {
                            std::fs::create_dir_all(parent)
                                .map_err(|e| AppError::msg(format!("mkdir: {e}")))?;
                        }
                        std::fs::write(&mirror, &content)
                            .map_err(|e| AppError::msg(format!("write mirror: {e}")))?;
                        Ok(StagedFile {
                            local_path: mirror.to_string_lossy().into_owned(),
                            bytes: content.len() as u64,
                        })
                    }
                }
            },
        );

        DataManager {
            stage_local,
            stage_http_ftp,
            stage_globus,
            stage_out_app,
            cache: cfg.cache_budget_bytes.map(StagingCache::new),
            wan_bytes,
        }
    }

    /// Make `file` available locally; returns the future of its staged
    /// form. Passing this future to an app creates the paper's dynamic
    /// data dependency.
    ///
    /// Remote files carry a declared output [`DataRef`] so the kernel's
    /// `DataMap` learns which executor holds the staged copy, and — when
    /// [`DataManagerConfig::cache_budget_bytes`] is set — flow through the
    /// [`StagingCache`]: a resident URL resolves with no task at all, and
    /// concurrent requests for the same URL share one transfer.
    pub fn stage_in(&self, file: File) -> AppFuture<StagedFile> {
        if file.scheme == Scheme::Local {
            return parsl_core::call!(self.stage_local, file);
        }
        match &self.cache {
            Some(cache) => {
                let key = wire::fnv1a_str(&file.url());
                cache.get_or_stage(key, || self.dispatch_remote(file))
            }
            None => self.dispatch_remote(file),
        }
    }

    /// Submit the staging task for a remote `file`, hinted with the
    /// expected size of the staged output so routing can account for it.
    fn dispatch_remote(&self, file: File) -> AppFuture<StagedFile> {
        let url = file.url();
        let hints = DataHints::producing(DataRef::from_url(&url, synthetic_size(&url)));
        let app = match file.scheme {
            Scheme::Globus => &self.stage_globus,
            _ => &self.stage_http_ftp,
        };
        app.invoke().hints(hints).call((Dep::value(file),))
    }

    /// Expected size of `file` once staged: the on-disk size for local
    /// files (zero if unreadable), the deterministic synthetic size for
    /// remote ones. Lets callers build input hints before any transfer
    /// has run.
    pub fn expected_bytes(file: &File) -> u64 {
        match file.scheme {
            Scheme::Local => std::fs::metadata(&file.path).map(|m| m.len()).unwrap_or(0),
            _ => synthetic_size(&file.url()),
        }
    }

    /// The [`DataRef`] describing `file` in the kernel's data plane —
    /// same key and size the staging task declares as its output, so a
    /// task hinted with this ref is pulled toward the staged copy.
    pub fn data_ref(file: &File) -> DataRef {
        DataRef::from_url(&file.url(), Self::expected_bytes(file))
    }

    /// Total bytes pulled across the simulated WAN by this manager's
    /// transfer tasks (stage-ins only; cache hits add nothing here).
    pub fn wan_bytes(&self) -> u64 {
        self.wan_bytes.load(Ordering::Relaxed)
    }

    /// Staging-cache counters, when a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Ship a produced file to `dest` (local copy or simulated upload).
    pub fn stage_out(&self, src: StagedFile, dest: File) -> AppFuture<StagedFile> {
        parsl_core::call!(self.stage_out_app, src, dest)
    }
}

/// Shared body of the simulated HTTP/FTP/Globus fetch.
fn simulate_fetch(
    cfg: &DataManagerConfig,
    wan: &AtomicU64,
    f: &File,
) -> Result<StagedFile, AppError> {
    let url = f.url();
    let bytes = synthetic_size(&url);
    std::thread::sleep(cfg.simulated_transfer_time(f.scheme, bytes));
    wan.fetch_add(bytes, Ordering::Relaxed);
    let content = synthetic_content(&url, bytes);
    let local = cfg
        .staging_dir
        .join(format!("{:016x}-{}", wire::fnv1a_str(&url), f.name()));
    std::fs::create_dir_all(&cfg.staging_dir)
        .map_err(|e| AppError::msg(format!("staging dir: {e}")))?;
    std::fs::write(&local, &content)
        .map_err(|e| AppError::msg(format!("write staged file: {e}")))?;
    Ok(StagedFile {
        local_path: local.to_string_lossy().into_owned(),
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_content_is_stable_and_sized() {
        let a = synthetic_content("http://h/x", 100);
        let b = synthetic_content("http://h/x", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = synthetic_content("http://h/y", 100);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_sizes_in_range() {
        for url in ["a", "b", "http://host/some/file"] {
            let s = synthetic_size(url);
            assert!((10_000..100_000).contains(&s), "{s}");
        }
    }
}
