//! The data manager: transparent staging via dynamic data dependencies.

use crate::file::{File, Scheme};
use parsl_core::app::App;
use parsl_core::error::AppError;
use parsl_core::future::AppFuture;
use parsl_core::registry::AppOptions;
use parsl_core::DataFlowKernel;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A file made available on the execution side: the result type of staging
/// tasks and the argument type apps should accept ("Parsl translates the
/// file reference to a local path via which the App can access the file").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagedFile {
    /// Path where the file's content is readable locally.
    pub local_path: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// Data manager configuration, including the simulated WAN model.
#[derive(Debug, Clone)]
pub struct DataManagerConfig {
    /// Where staged copies land (default: a temp subdirectory).
    pub staging_dir: PathBuf,
    /// Label of the executor that runs Globus transfers, standing in for
    /// "executed directly by the data manager" third-party transfer. When
    /// `None`, Globus transfers run like any other task.
    pub globus_executor: Option<String>,
    /// Per-transfer setup latency of the simulated WAN.
    pub wan_latency: Duration,
    /// Simulated HTTP bandwidth, bytes/second.
    pub http_bandwidth: u64,
    /// Simulated FTP bandwidth, bytes/second.
    pub ftp_bandwidth: u64,
    /// Simulated Globus bandwidth (parallel streams: fastest).
    pub globus_bandwidth: u64,
}

impl Default for DataManagerConfig {
    fn default() -> Self {
        DataManagerConfig {
            staging_dir: std::env::temp_dir().join("parsl-staging"),
            globus_executor: None,
            wan_latency: Duration::from_millis(1),
            http_bandwidth: 8_000_000_000,
            ftp_bandwidth: 5_000_000_000,
            globus_bandwidth: 20_000_000_000,
        }
    }
}

impl DataManagerConfig {
    /// The WAN model: `latency + bytes / bandwidth` for the scheme.
    pub fn simulated_transfer_time(&self, scheme: Scheme, bytes: u64) -> Duration {
        let bw = match scheme {
            Scheme::Local => return Duration::ZERO,
            Scheme::Http => self.http_bandwidth,
            Scheme::Ftp => self.ftp_bandwidth,
            Scheme::Globus => self.globus_bandwidth,
        };
        self.wan_latency + Duration::from_secs_f64(bytes as f64 / bw as f64)
    }
}

/// Deterministic synthetic size for a "remote" file (the substitution for
/// data we cannot download): 10 kB–100 kB, keyed by URL.
fn synthetic_size(url: &str) -> u64 {
    10_000 + wire::fnv1a_str(url) % 90_000
}

/// Deterministic synthetic content for a "remote" file.
fn synthetic_content(url: &str, bytes: u64) -> Vec<u8> {
    let seed = wire::fnv1a_str(url);
    let mut out = Vec::with_capacity(bytes as usize);
    let mut state = seed;
    while (out.len() as u64) < bytes {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(bytes as usize);
    out
}

/// Registers staging apps on a DataFlowKernel and exposes stage-in/out.
pub struct DataManager {
    stage_local: App<(File,), StagedFile>,
    stage_http_ftp: App<(File,), StagedFile>,
    stage_globus: App<(File,), StagedFile>,
    stage_out_app: App<(StagedFile, File), StagedFile>,
}

impl DataManager {
    /// Create the manager; registers four staging apps on `dfk`.
    pub fn new(dfk: &Arc<DataFlowKernel>, config: DataManagerConfig) -> Self {
        std::fs::create_dir_all(&config.staging_dir).ok();
        let cfg = Arc::new(config);

        let stage_local = dfk.python_app_fallible(
            "_parsl_stage_in_local",
            |f: File| -> Result<StagedFile, AppError> {
                let meta = std::fs::metadata(&f.path)
                    .map_err(|e| AppError::msg(format!("local file {}: {e}", f.path)))?;
                Ok(StagedFile {
                    local_path: f.path,
                    bytes: meta.len(),
                })
            },
        );

        let c = Arc::clone(&cfg);
        let stage_http_ftp = dfk.python_app_fallible(
            "_parsl_stage_in_transfer",
            move |f: File| -> Result<StagedFile, AppError> { simulate_fetch(&c, &f) },
        );

        let c = Arc::clone(&cfg);
        let globus_options = AppOptions {
            executor: cfg.globus_executor.clone(),
            ..Default::default()
        };
        let stage_globus = dfk.python_app_cfg(
            "_parsl_stage_in_globus",
            globus_options,
            move |f: File| -> Result<StagedFile, AppError> { simulate_fetch(&c, &f) },
        );

        let c = Arc::clone(&cfg);
        let stage_out_app = dfk.python_app_fallible(
            "_parsl_stage_out",
            move |src: StagedFile, dest: File| -> Result<StagedFile, AppError> {
                let content = std::fs::read(&src.local_path)
                    .map_err(|e| AppError::msg(format!("read {}: {e}", src.local_path)))?;
                match dest.scheme {
                    Scheme::Local => {
                        if let Some(parent) = std::path::Path::new(&dest.path).parent() {
                            std::fs::create_dir_all(parent)
                                .map_err(|e| AppError::msg(format!("mkdir: {e}")))?;
                        }
                        std::fs::write(&dest.path, &content)
                            .map_err(|e| AppError::msg(format!("write {}: {e}", dest.path)))?;
                        Ok(StagedFile {
                            local_path: dest.path,
                            bytes: content.len() as u64,
                        })
                    }
                    scheme => {
                        // Simulated upload: pay the WAN cost, mirror the
                        // bytes under the staging dir's outbound area.
                        std::thread::sleep(c.simulated_transfer_time(scheme, content.len() as u64));
                        let mirror = c.staging_dir.join("outbound").join(format!(
                            "{:016x}-{}",
                            wire::fnv1a_str(&dest.url()),
                            dest.name()
                        ));
                        if let Some(parent) = mirror.parent() {
                            std::fs::create_dir_all(parent)
                                .map_err(|e| AppError::msg(format!("mkdir: {e}")))?;
                        }
                        std::fs::write(&mirror, &content)
                            .map_err(|e| AppError::msg(format!("write mirror: {e}")))?;
                        Ok(StagedFile {
                            local_path: mirror.to_string_lossy().into_owned(),
                            bytes: content.len() as u64,
                        })
                    }
                }
            },
        );

        DataManager {
            stage_local,
            stage_http_ftp,
            stage_globus,
            stage_out_app,
        }
    }

    /// Make `file` available locally; returns the future of its staged
    /// form. Passing this future to an app creates the paper's dynamic
    /// data dependency.
    pub fn stage_in(&self, file: File) -> AppFuture<StagedFile> {
        match file.scheme {
            Scheme::Local => parsl_core::call!(self.stage_local, file),
            Scheme::Http | Scheme::Ftp => parsl_core::call!(self.stage_http_ftp, file),
            Scheme::Globus => parsl_core::call!(self.stage_globus, file),
        }
    }

    /// Ship a produced file to `dest` (local copy or simulated upload).
    pub fn stage_out(&self, src: StagedFile, dest: File) -> AppFuture<StagedFile> {
        parsl_core::call!(self.stage_out_app, src, dest)
    }
}

/// Shared body of the simulated HTTP/FTP/Globus fetch.
fn simulate_fetch(cfg: &DataManagerConfig, f: &File) -> Result<StagedFile, AppError> {
    let url = f.url();
    let bytes = synthetic_size(&url);
    std::thread::sleep(cfg.simulated_transfer_time(f.scheme, bytes));
    let content = synthetic_content(&url, bytes);
    let local = cfg
        .staging_dir
        .join(format!("{:016x}-{}", wire::fnv1a_str(&url), f.name()));
    std::fs::create_dir_all(&cfg.staging_dir)
        .map_err(|e| AppError::msg(format!("staging dir: {e}")))?;
    std::fs::write(&local, &content)
        .map_err(|e| AppError::msg(format!("write staged file: {e}")))?;
    Ok(StagedFile {
        local_path: local.to_string_lossy().into_owned(),
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_content_is_stable_and_sized() {
        let a = synthetic_content("http://h/x", 100);
        let b = synthetic_content("http://h/x", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = synthetic_content("http://h/y", 100);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_sizes_in_range() {
        for url in ["a", "b", "http://host/some/file"] {
            let s = synthetic_size(url);
            assert!((10_000..100_000).contains(&s), "{s}");
        }
    }
}
