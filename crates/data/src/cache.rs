//! Executor-side staging cache: a byte-budgeted LRU of staged files with
//! single-flight transfer coalescing.
//!
//! The paper's data manager re-transfers a remote file every time an app
//! names it. For wide fan-outs over a shared input (the common pattern in
//! §5's sequence-analysis workflows) that multiplies WAN traffic by the
//! fan-out degree. The cache collapses this: the first request for a URL
//! starts the transfer, every concurrent request for the same URL shares
//! that in-flight future (single flight), and once the bytes land the
//! [`StagedFile`] is retained under a byte budget so later requests resolve
//! immediately with no task at all.
//!
//! Concurrency shape: a miss installs an *in-flight cell* — a bare
//! [`FutureState`] — under the cache lock, then starts the real transfer
//! with the lock released. The transfer's completion is bridged into the
//! cell via `on_done`, and admission/eviction runs in the cell's own
//! completion callback, which re-acquires the lock only after the caller
//! has released it. This keeps the cache correct even with fully
//! synchronous executors that complete the transfer inside `fetch()`.

use crate::manager::StagedFile;
use parking_lot::Mutex;
use parsl_core::future::{AppFuture, FutureState};
use parsl_core::types::TaskId;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing cache behaviour since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a resident entry (no task, no transfer).
    pub hits: u64,
    /// Requests that started a new transfer.
    pub misses: u64,
    /// Requests that piggybacked on an already in-flight transfer.
    pub coalesced: u64,
    /// Resident entries dropped to make room under the byte budget.
    pub evictions: u64,
    /// Bytes currently held by resident entries.
    pub used_bytes: u64,
    /// Number of slots (resident + in-flight).
    pub entries: usize,
}

enum Slot {
    /// Bytes are on local disk; `last_use` orders LRU eviction.
    Ready { file: StagedFile, last_use: u64 },
    /// A transfer is underway; clones of this future share its result.
    InFlight(AppFuture<StagedFile>),
}

struct Inner {
    entries: HashMap<u64, Slot>,
    /// Bytes held by `Ready` entries (in-flight transfers are not charged
    /// until admission, when their true size is known).
    used: u64,
    /// Monotonic LRU clock.
    tick: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
}

/// Byte-budgeted, single-flight cache of staged files, keyed by the FNV-1a
/// hash of the source URL.
pub struct StagingCache {
    budget: u64,
    inner: Arc<Mutex<Inner>>,
}

impl StagingCache {
    /// A cache retaining at most `budget_bytes` of staged content.
    pub fn new(budget_bytes: u64) -> Self {
        StagingCache {
            budget: budget_bytes,
            inner: Arc::new(Mutex::new(Inner {
                entries: HashMap::new(),
                used: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
            })),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Resolve `key`: a resident entry answers immediately, an in-flight
    /// transfer is shared, and only a true miss invokes `fetch` to start
    /// the (single) transfer. `fetch` runs with the cache lock released.
    pub fn get_or_stage(
        &self,
        key: u64,
        fetch: impl FnOnce() -> AppFuture<StagedFile>,
    ) -> AppFuture<StagedFile> {
        let cell = {
            let mut g = self.inner.lock();
            let now = g.tick;
            match g.entries.get_mut(&key) {
                Some(Slot::Ready { file, last_use }) => {
                    let file = file.clone();
                    *last_use = now;
                    g.tick += 1;
                    g.hits += 1;
                    drop(g);
                    return AppFuture::ready(&file);
                }
                Some(Slot::InFlight(fut)) => {
                    let fut = fut.clone();
                    g.coalesced += 1;
                    return fut;
                }
                None => {
                    g.misses += 1;
                    let cell = FutureState::new(TaskId(0));
                    g.entries.insert(
                        key,
                        Slot::InFlight(AppFuture::from_shared_state(Arc::clone(&cell))),
                    );
                    cell
                }
            }
        };

        // Admission runs when the cell resolves; registered before the
        // bridge below so a synchronously completed fetch still admits.
        let inner = Arc::clone(&self.inner);
        let budget = self.budget;
        cell.on_done(move |r| {
            let mut g = inner.lock();
            g.entries.remove(&key);
            let file = match r {
                Ok(bytes) => match wire::from_bytes::<StagedFile>(bytes) {
                    Ok(f) => f,
                    Err(_) => return,
                },
                Err(_) => return,
            };
            if file.bytes > budget {
                return;
            }
            while g.used + file.bytes > budget {
                let victim = g
                    .entries
                    .iter()
                    .filter_map(|(k, s)| match s {
                        Slot::Ready { file, last_use } => Some((*k, *last_use, file.bytes)),
                        Slot::InFlight(_) => None,
                    })
                    .min_by_key(|&(_, last_use, _)| last_use);
                match victim {
                    Some((vk, _, vb)) => {
                        g.entries.remove(&vk);
                        g.used -= vb;
                        g.evictions += 1;
                    }
                    None => return,
                }
            }
            g.used += file.bytes;
            let last_use = g.tick;
            g.tick += 1;
            g.entries.insert(key, Slot::Ready { file, last_use });
        });

        let transfer = fetch();
        let cell_for_bridge = Arc::clone(&cell);
        transfer.on_done(move |r| cell_for_bridge.set(r.clone()));
        AppFuture::from_shared_state(cell)
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.inner.lock();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            coalesced: g.coalesced,
            evictions: g.evictions,
            used_bytes: g.used,
            entries: g.entries.len(),
        }
    }
}

impl std::fmt::Debug for StagingCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("StagingCache")
            .field("budget", &self.budget)
            .field("used", &s.used_bytes)
            .field("entries", &s.entries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn sf(path: &str, bytes: u64) -> StagedFile {
        StagedFile {
            local_path: path.to_string(),
            bytes,
        }
    }

    #[test]
    fn second_request_is_a_hit() {
        let cache = StagingCache::new(1_000);
        let fetched = AtomicUsize::new(0);
        for _ in 0..3 {
            let got = cache
                .get_or_stage(1, || {
                    fetched.fetch_add(1, Ordering::SeqCst);
                    AppFuture::ready(&sf("/tmp/a", 100))
                })
                .result()
                .unwrap();
            assert_eq!(got.bytes, 100);
        }
        assert_eq!(fetched.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.used_bytes), (2, 1, 100));
    }

    #[test]
    fn inflight_requests_coalesce_into_one_transfer() {
        let cache = StagingCache::new(1_000);
        let cell = FutureState::new(TaskId(0));
        let fetched = AtomicUsize::new(0);
        let first = cache.get_or_stage(7, || {
            fetched.fetch_add(1, Ordering::SeqCst);
            AppFuture::from_shared_state(Arc::clone(&cell))
        });
        let second = cache.get_or_stage(7, || {
            fetched.fetch_add(1, Ordering::SeqCst);
            panic!("second request must not start a transfer")
        });
        assert!(!first.done() && !second.done());
        cell.set(Ok(bytes::Bytes::from(
            wire::to_bytes(&sf("/tmp/b", 42)).unwrap(),
        )));
        assert_eq!(first.result().unwrap(), second.result().unwrap());
        assert_eq!(fetched.load(Ordering::SeqCst), 1);
        let s = cache.stats();
        assert_eq!((s.misses, s.coalesced, s.used_bytes), (1, 1, 42));
    }

    #[test]
    fn concurrent_requests_share_a_single_flight() {
        const THREADS: usize = 16;
        let cache = Arc::new(StagingCache::new(1_000));
        let cell = FutureState::new(TaskId(0));
        let fetched = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS + 1));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let cache = Arc::clone(&cache);
            let cell = Arc::clone(&cell);
            let fetched = Arc::clone(&fetched);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache
                    .get_or_stage(99, || {
                        fetched.fetch_add(1, Ordering::SeqCst);
                        AppFuture::from_shared_state(cell)
                    })
                    .result()
                    .unwrap()
            }));
        }
        barrier.wait();
        cell.set(Ok(bytes::Bytes::from(
            wire::to_bytes(&sf("/tmp/c", 9)).unwrap(),
        )));
        for h in handles {
            assert_eq!(h.join().unwrap().bytes, 9);
        }
        assert_eq!(fetched.load(Ordering::SeqCst), 1, "exactly one transfer");
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        // A straggler thread may arrive after the flight resolved and score
        // a resident hit instead of coalescing; either way it shared the
        // single transfer.
        assert_eq!((s.coalesced + s.hits) as usize, THREADS - 1);
    }

    #[test]
    fn eviction_respects_byte_budget_and_lru_order() {
        let cache = StagingCache::new(100);
        cache
            .get_or_stage(1, || AppFuture::ready(&sf("/tmp/one", 60)))
            .result()
            .unwrap();
        cache
            .get_or_stage(2, || AppFuture::ready(&sf("/tmp/two", 30)))
            .result()
            .unwrap();
        // Touch key 1 so key 2 becomes least recently used.
        cache
            .get_or_stage(1, || panic!("must be a hit"))
            .result()
            .unwrap();
        cache
            .get_or_stage(3, || AppFuture::ready(&sf("/tmp/three", 40)))
            .result()
            .unwrap();
        let s = cache.stats();
        assert!(s.used_bytes <= 100, "budget respected: {}", s.used_bytes);
        assert_eq!(s.evictions, 1);
        // Key 2 was evicted; key 1 survived.
        cache
            .get_or_stage(1, || panic!("key 1 must still be resident"))
            .result()
            .unwrap();
        let refetched = AtomicUsize::new(0);
        cache
            .get_or_stage(2, || {
                refetched.fetch_add(1, Ordering::SeqCst);
                AppFuture::ready(&sf("/tmp/two", 30))
            })
            .result()
            .unwrap();
        assert_eq!(refetched.load(Ordering::SeqCst), 1, "key 2 was evicted");
    }

    #[test]
    fn oversized_files_pass_through_without_admission() {
        let cache = StagingCache::new(10);
        let got = cache
            .get_or_stage(5, || AppFuture::ready(&sf("/tmp/big", 500)))
            .result()
            .unwrap();
        assert_eq!(got.bytes, 500);
        let s = cache.stats();
        assert_eq!((s.entries, s.used_bytes), (0, 0));
        // The next request is a fresh miss, not a hit.
        let refetched = AtomicUsize::new(0);
        cache.get_or_stage(5, || {
            refetched.fetch_add(1, Ordering::SeqCst);
            AppFuture::ready(&sf("/tmp/big", 500))
        });
        assert_eq!(refetched.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_transfers_are_not_cached() {
        let cache = StagingCache::new(1_000);
        let failing = cache.get_or_stage(11, || {
            let cell = FutureState::new(TaskId(0));
            cell.set(Err(parsl_core::error::TaskError::WalltimeExceeded));
            AppFuture::from_shared_state(cell)
        });
        assert!(failing.result().is_err());
        assert_eq!(cache.stats().entries, 0);
        // Retry runs a fresh transfer and succeeds.
        let got = cache
            .get_or_stage(11, || AppFuture::ready(&sf("/tmp/retry", 8)))
            .result()
            .unwrap();
        assert_eq!(got.bytes, 8);
        assert_eq!(cache.stats().misses, 2);
    }
}
