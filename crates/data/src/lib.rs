//! `parsl-data` — files and wide-area data management (§4.5).
//!
//! "Parsl provides a file abstraction to allow file references between
//! Apps ... When a remote file is passed to/from an App, the Parsl data
//! manager first inspects the file to see if it is available on the
//! compute resource. If the file is not yet available, Parsl creates a
//! dynamic data dependency between the App(s) that require the file as
//! input and a new (transparent) data transfer task."
//!
//! The reproduction:
//!
//! - [`File`] carries a scheme (`local` / `http` / `ftp` / `globus`) and a
//!   path, parsed from URL-ish strings;
//! - [`DataManager::stage_in`] turns a remote file into a **staging task**
//!   on the DataFlowKernel and returns its future. Passing that future to
//!   an app is precisely the paper's dynamic data dependency: the app
//!   launches only when the transfer completes, and receives the local
//!   [`StagedFile`] path (transparent path translation);
//! - HTTP/FTP transfers run as ordinary tasks on whichever executor the
//!   DFK picks ("executed by the executor"); Globus transfers can be
//!   pinned to a dedicated executor, standing in for third-party transfer
//!   executed by the data manager itself;
//! - the wide-area network is simulated: per-scheme latency + bandwidth
//!   delays, with deterministic synthetic content for "remote" files (the
//!   substitution documented in DESIGN.md).

mod cache;
mod file;
mod manager;

pub use cache::{CacheStats, StagingCache};
pub use file::{File, Scheme};
pub use manager::{DataManager, DataManagerConfig, StagedFile};

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::prelude::*;
    use std::sync::Arc;

    fn dfk() -> Arc<DataFlowKernel> {
        DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap()
    }

    #[test]
    fn parse_schemes() {
        assert_eq!(File::parse("/tmp/x.dat").scheme, Scheme::Local);
        assert_eq!(File::parse("http://host/path/d.csv").scheme, Scheme::Http);
        assert_eq!(File::parse("ftp://host/d.bin").scheme, Scheme::Ftp);
        let g = File::parse("globus://endpoint-uuid/share/genome.fa");
        assert_eq!(g.scheme, Scheme::Globus);
        assert!(g.path.contains("genome.fa"));
        assert_eq!(g.name(), "genome.fa");
    }

    #[test]
    fn local_files_stage_without_transfer() {
        let dir = std::env::temp_dir().join(format!("parsl-data-local-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("input.txt");
        std::fs::write(&src, b"local bytes").unwrap();

        let dfk = dfk();
        let dm = DataManager::new(&dfk, DataManagerConfig::default());
        let fut = dm.stage_in(File::parse(src.to_str().unwrap()));
        let staged = fut.result().unwrap();
        assert_eq!(std::fs::read(&staged.local_path).unwrap(), b"local bytes");
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remote_file_creates_transfer_task_and_dependency() {
        let dfk = dfk();
        let dm = DataManager::new(&dfk, DataManagerConfig::default());
        let before = dfk.task_count();
        let staged = dm.stage_in(File::parse("http://data.example.org/set1/blob.bin"));

        // The transfer is a real task in the graph.
        assert_eq!(dfk.task_count(), before + 1);

        // An app consuming the staged future runs after the transfer.
        let count = dfk.python_app("count", |f: StagedFile| {
            std::fs::read(&f.local_path)
                .map(|b| b.len() as u64)
                .unwrap_or(0)
        });
        let n = parsl_core::call!(count, staged.clone());
        let len = n.result().unwrap();
        assert!(len > 0, "synthesized remote content must be non-empty");
        assert_eq!(len, staged.result().unwrap().bytes);
        dfk.shutdown();
    }

    #[test]
    fn synthetic_remote_content_is_deterministic() {
        let dfk = dfk();
        let dm = DataManager::new(&dfk, DataManagerConfig::default());
        let a = dm
            .stage_in(File::parse("ftp://host/a.dat"))
            .result()
            .unwrap();
        let b = dm
            .stage_in(File::parse("ftp://host/a.dat"))
            .result()
            .unwrap();
        let c = dm
            .stage_in(File::parse("ftp://host/c.dat"))
            .result()
            .unwrap();
        let bytes_a = std::fs::read(&a.local_path).unwrap();
        let bytes_b = std::fs::read(&b.local_path).unwrap();
        let bytes_c = std::fs::read(&c.local_path).unwrap();
        assert_eq!(bytes_a, bytes_b, "same URL => same simulated content");
        assert_ne!(bytes_a, bytes_c, "different URL => different content");
        dfk.shutdown();
    }

    #[test]
    fn globus_pinned_to_data_manager_executor() {
        use parking_lot::Mutex;
        use parsl_core::monitor::{MonitorEvent, MonitorSink};
        #[derive(Default)]
        struct Capture(Mutex<Vec<(String, String)>>);
        impl MonitorSink for Capture {
            fn on_event(&self, e: &MonitorEvent) {
                if let MonitorEvent::Task {
                    app,
                    state: parsl_core::types::TaskState::Launched,
                    executor: Some(l),
                    ..
                } = e
                {
                    self.0.lock().push((app.to_string(), l.clone()));
                }
            }
        }
        let sink = Arc::new(Capture::default());
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::with_label("compute"))
            .executor(ImmediateExecutor::with_label("dm"))
            .monitor(sink.clone())
            .build()
            .unwrap();
        let dm = DataManager::new(
            &dfk,
            DataManagerConfig {
                globus_executor: Some("dm".into()),
                ..Default::default()
            },
        );
        let staged = dm.stage_in(File::parse("globus://ep1/data/big.h5"));
        staged.result().unwrap();
        dfk.wait_for_all();
        let launched = sink.0.lock();
        let globus_tasks: Vec<_> = launched
            .iter()
            .filter(|(app, _)| app.contains("globus"))
            .collect();
        assert!(!globus_tasks.is_empty());
        assert!(globus_tasks.iter().all(|(_, l)| l == "dm"));
        dfk.shutdown();
    }

    #[test]
    fn cached_stage_in_runs_one_transfer_for_many_requests() {
        let dfk = dfk();
        let dm = DataManager::new(
            &dfk,
            DataManagerConfig {
                cache_budget_bytes: Some(10_000_000),
                ..Default::default()
            },
        );
        let before = dfk.task_count();
        let futs: Vec<_> = (0..8)
            .map(|_| dm.stage_in(File::parse("http://mirror.example.org/ref.fa")))
            .collect();
        let staged: Vec<_> = futs.iter().map(|f| f.result().unwrap()).collect();
        assert!(staged.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            dfk.task_count(),
            before + 1,
            "eight requests, one transfer task"
        );
        let s = dm.cache_stats().unwrap();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.coalesced, 7);
        assert_eq!(dm.wan_bytes(), staged[0].bytes);
        dfk.shutdown();
    }

    #[test]
    fn stage_out_copies_to_destination() {
        let dir = std::env::temp_dir().join(format!("parsl-data-out-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("result.txt");
        std::fs::write(&src, b"computed output").unwrap();
        let dst = dir.join("archive").join("result.txt");

        let dfk = dfk();
        let dm = DataManager::new(&dfk, DataManagerConfig::default());
        let fut = dm.stage_out(
            StagedFile {
                local_path: src.to_string_lossy().into_owned(),
                bytes: 15,
            },
            File::parse(dst.to_str().unwrap()),
        );
        fut.result().unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"computed output");
        dfk.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transfer_time_scales_with_size_model() {
        // The simulated WAN: bigger synthetic files take longer. We don't
        // assert absolute times, only monotonicity of the model.
        let cfg = DataManagerConfig::default();
        let small = cfg.simulated_transfer_time(Scheme::Http, 1_000);
        let big = cfg.simulated_transfer_time(Scheme::Http, 10_000_000);
        assert!(big > small);
        // Globus (third-party, parallel streams) beats FTP on big files.
        let ftp = cfg.simulated_transfer_time(Scheme::Ftp, 100_000_000);
        let globus = cfg.simulated_transfer_time(Scheme::Globus, 100_000_000);
        assert!(globus < ftp);
    }
}
