//! Endpoints: the mailbox handles held by executor components.

use crate::addr::Addr;
use crate::error::{RecvError, SendError};
use crate::fabric::FabricInner;
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message as received: sender identity plus opaque payload.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Address of the endpoint that sent this message.
    pub from: Addr,
    /// Message body; `wire` frames in the executors.
    pub payload: Bytes,
}

/// A bound mailbox on a [`crate::Fabric`].
///
/// Dropping an endpoint unbinds its address; subsequent sends to it fail
/// with [`SendError::PeerGone`], exactly like connecting to a closed socket.
pub struct Endpoint {
    addr: Addr,
    rx: Receiver<Envelope>,
    generation: u64,
    closed: Arc<AtomicBool>,
    fabric: Arc<FabricInner>,
}

impl Endpoint {
    pub(crate) fn new(
        addr: Addr,
        rx: Receiver<Envelope>,
        generation: u64,
        closed: Arc<AtomicBool>,
        fabric: Arc<FabricInner>,
    ) -> Self {
        Endpoint {
            addr,
            rx,
            generation,
            closed,
            fabric,
        }
    }

    /// This endpoint's own address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Send `payload` to the endpoint bound at `to`.
    ///
    /// Returns as soon as the fabric accepts the message; delivery may be
    /// delayed by the fabric's configured latency.
    pub fn send(&self, to: &Addr, payload: Bytes) -> Result<(), SendError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SendError::SelfClosed);
        }
        self.fabric.route(&self.addr, to, payload)
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Closed)
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    /// Take a message if one is already queued.
    pub fn try_recv(&self) -> Option<Envelope> {
        match self.rx.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Number of messages waiting in the inbox.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// The raw inbox receiver, so callers can `select!` across an endpoint
    /// and other channels (used by executor manager loops).
    pub fn receiver(&self) -> &Receiver<Envelope> {
        &self.rx
    }

    /// True once the endpoint has been killed via fault injection.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.fabric.unbind(&self.addr, self.generation);
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("addr", &self.addr)
            .field("queued", &self.rx.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}
