//! The fabric: endpoint registry, routing, latency and fault injection.

use crate::addr::Addr;
use crate::endpoint::{Endpoint, Envelope};
use crate::error::SendError;
use crate::latency::{DelayLine, Delivery};
use crate::stats::FabricStats;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fabric-wide behaviour knobs.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// One-way delivery delay applied to every message. The paper measured
    /// 0.07 ms node-to-node RTT on Midway and 0.04 ms on Blue Waters; tests
    /// inject half the RTT here per direction when modelling those machines.
    pub latency: Duration,
    /// Probability in `[0, 1]` that any message is silently lost.
    pub loss_probability: f64,
    /// Seed for the loss RNG, for reproducible fault runs.
    pub seed: u64,
    /// Soft ceiling on one frame's payload size. Batching senders (the
    /// executors' `submit_batch` paths) chunk their task batches so a
    /// single frame stays within this budget — one oversized message would
    /// otherwise head-of-line-block everything behind it on a real
    /// transport. Advisory: the fabric itself never rejects a frame.
    pub max_frame_bytes: usize,
    /// Fixed per-message cost charged to the *sender*, modelling the
    /// syscall/serialization floor of a real transport (ZeroMQ over TCP in
    /// the paper). Zero by default; throughput experiments set it so the
    /// messages-per-task ratio shows up in wall-clock numbers the way it
    /// does on a cluster.
    pub per_message_cost: Duration,
}

/// Default frame budget: 256 KiB, a few thousand small tasks per frame.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 256 * 1024;

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            latency: Duration::ZERO,
            loss_probability: 0.0,
            seed: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            per_message_cost: Duration::ZERO,
        }
    }
}

struct Binding {
    inbox: Sender<Envelope>,
    generation: u64,
    closed: Arc<AtomicBool>,
}

pub(crate) struct FabricInner {
    config: FabricConfig,
    endpoints: RwLock<HashMap<Addr, Binding>>,
    dead_links: RwLock<HashSet<(Addr, Addr)>>,
    stats: FabricStats,
    rng: Mutex<SmallRng>,
    delay: Option<DelayLine>,
    generation: AtomicU64,
}

impl FabricInner {
    pub(crate) fn route(&self, from: &Addr, to: &Addr, payload: Bytes) -> Result<(), SendError> {
        if self.config.per_message_cost > Duration::ZERO {
            // Spin rather than sleep: the modelled costs are microseconds,
            // well under OS sleep granularity.
            let until = Instant::now() + self.config.per_message_cost;
            while Instant::now() < until {
                std::hint::spin_loop();
            }
        }
        self.stats.record_sent(payload.len());
        if !self.dead_links.read().is_empty()
            && self.dead_links.read().contains(&(from.clone(), to.clone()))
        {
            self.stats.record_dropped();
            return Ok(());
        }
        if self.config.loss_probability > 0.0 {
            let roll: f64 = self.rng.lock().random();
            if roll < self.config.loss_probability {
                self.stats.record_dropped();
                return Ok(());
            }
        }
        let inbox = {
            let eps = self.endpoints.read();
            match eps.get(to) {
                Some(b) => b.inbox.clone(),
                None => return Err(SendError::PeerGone(to.clone())),
            }
        };
        let env = Envelope {
            from: from.clone(),
            payload,
        };
        match &self.delay {
            None => {
                if inbox.send(env).is_ok() {
                    self.stats.record_delivered();
                    Ok(())
                } else {
                    Err(SendError::PeerGone(to.clone()))
                }
            }
            Some(line) => {
                line.enqueue(
                    Instant::now() + self.config.latency,
                    Delivery {
                        env,
                        inbox,
                        stats: self.stats.clone(),
                    },
                );
                Ok(())
            }
        }
    }

    pub(crate) fn unbind(&self, addr: &Addr, generation: u64) {
        let mut eps = self.endpoints.write();
        if eps.get(addr).is_some_and(|b| b.generation == generation) {
            eps.remove(addr);
        }
    }
}

/// Handle to a message fabric. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// A fabric with zero latency and no loss — a perfect network.
    pub fn new() -> Self {
        Self::with_config(FabricConfig::default())
    }

    /// A fabric with explicit latency/loss behaviour.
    pub fn with_config(config: FabricConfig) -> Self {
        let delay = if config.latency > Duration::ZERO {
            Some(DelayLine::spawn())
        } else {
            None
        };
        let seed = config.seed;
        Fabric {
            inner: Arc::new(FabricInner {
                config,
                endpoints: RwLock::new(HashMap::new()),
                dead_links: RwLock::new(HashSet::new()),
                stats: FabricStats::new(),
                rng: Mutex::new(SmallRng::seed_from_u64(seed)),
                delay,
                generation: AtomicU64::new(0),
            }),
        }
    }

    /// Bind a new endpoint at `addr`.
    ///
    /// Fails if the address is already bound by a live endpoint.
    pub fn bind(&self, addr: Addr) -> Result<Endpoint, AddrInUse> {
        let (tx, rx) = unbounded();
        let generation = self.inner.generation.fetch_add(1, Ordering::Relaxed);
        let closed = Arc::new(AtomicBool::new(false));
        {
            let mut eps = self.inner.endpoints.write();
            if eps.contains_key(&addr) {
                return Err(AddrInUse(addr));
            }
            eps.insert(
                addr.clone(),
                Binding {
                    inbox: tx,
                    generation,
                    closed: Arc::clone(&closed),
                },
            );
        }
        Ok(Endpoint::new(
            addr,
            rx,
            generation,
            closed,
            Arc::clone(&self.inner),
        ))
    }

    /// Fault injection: abruptly kill the endpoint at `addr`.
    ///
    /// Future sends to it fail with [`SendError::PeerGone`]; its own sends
    /// fail with [`SendError::SelfClosed`]; once its inbox drains, `recv`
    /// reports closure. Models a crashed manager/worker (§4.3.1).
    pub fn kill(&self, addr: &Addr) {
        let mut eps = self.inner.endpoints.write();
        if let Some(b) = eps.remove(addr) {
            b.closed.store(true, Ordering::Release);
        }
    }

    /// Fault injection: silently eat all messages from `from` to `to`.
    pub fn drop_link(&self, from: &Addr, to: &Addr) {
        self.inner
            .dead_links
            .write()
            .insert((from.clone(), to.clone()));
    }

    /// Undo [`Fabric::drop_link`].
    pub fn restore_link(&self, from: &Addr, to: &Addr) {
        self.inner
            .dead_links
            .write()
            .remove(&(from.clone(), to.clone()));
    }

    /// True if `addr` is currently bound.
    pub fn is_bound(&self, addr: &Addr) -> bool {
        self.inner.endpoints.read().contains_key(addr)
    }

    /// Number of live endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.inner.endpoints.read().len()
    }

    /// The advisory per-frame payload budget batching senders chunk at.
    pub fn max_frame_bytes(&self) -> usize {
        self.inner.config.max_frame_bytes
    }

    /// Message counters for this fabric.
    pub fn stats(&self) -> FabricStats {
        self.inner.stats.clone()
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("endpoints", &self.endpoint_count())
            .field("latency", &self.inner.config.latency)
            .field("loss", &self.inner.config.loss_probability)
            .finish()
    }
}

/// Error returned by [`Fabric::bind`] when the address is taken.
#[derive(Debug, Clone)]
pub struct AddrInUse(pub Addr);

impl std::fmt::Display for AddrInUse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "address {} already bound", self.0)
    }
}

impl std::error::Error for AddrInUse {}
