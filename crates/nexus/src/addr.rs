//! Endpoint addresses — cheap-to-clone interned strings.

use std::fmt;
use std::sync::Arc;

/// The identity of an endpoint on a [`crate::Fabric`].
///
/// Comparable to a ZeroMQ socket identity: an opaque name chosen by the
/// binder. `Addr` is reference-counted, so routing tables and envelopes
/// clone it without allocating.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(Arc<str>);

impl Addr {
    /// Create an address from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Addr(Arc::from(name.as_ref()))
    }

    /// View the address as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({})", self.0)
    }
}

impl From<&str> for Addr {
    fn from(s: &str) -> Self {
        Addr::new(s)
    }
}

impl From<String> for Addr {
    fn from(s: String) -> Self {
        Addr::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a1 = Addr::new("worker-1");
        let a2 = Addr::new(String::from("worker-1"));
        assert_eq!(a1, a2);
        let mut set = HashSet::new();
        set.insert(a1);
        assert!(set.contains(&a2));
    }

    #[test]
    fn display_is_bare_name() {
        assert_eq!(Addr::new("hub").to_string(), "hub");
    }
}
