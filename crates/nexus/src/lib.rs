//! `nexus` — in-process addressed message fabric.
//!
//! Parsl's executors wire their components together with ZeroMQ queues
//! (§4.3): the executor client, the interchange, managers, and workers each
//! hold sockets and exchange framed messages. This crate reproduces that
//! substrate for an in-process, multi-threaded world:
//!
//! - **Endpoints** are named mailboxes ([`Addr`]) registered on a
//!   [`Fabric`]. Any endpoint can send to any address, like ZeroMQ
//!   ROUTER/DEALER identities.
//! - **Envelopes** carry the sender address and an opaque payload, so
//!   request/reply and broker patterns fall out naturally.
//! - **Latency injection** delays delivery by a configurable per-fabric
//!   duration, letting tests reproduce the paper's measured 0.07 ms /
//!   0.04 ms node-to-node RTTs.
//! - **Fault injection** kills endpoints (peer-gone errors, like a closed
//!   socket) or silently drops links (network loss), which the executors'
//!   heartbeat protocols must detect, as in §4.3.1.
//!
//! # Example
//!
//! ```
//! use nexus::{Fabric, Addr};
//! use bytes::Bytes;
//!
//! let fabric = Fabric::new();
//! let a = fabric.bind(Addr::new("client")).unwrap();
//! let b = fabric.bind(Addr::new("interchange")).unwrap();
//! a.send(&Addr::new("interchange"), Bytes::from_static(b"task")).unwrap();
//! let env = b.recv().unwrap();
//! assert_eq!(env.from.as_str(), "client");
//! assert_eq!(&env.payload[..], b"task");
//! ```

mod addr;
mod endpoint;
mod error;
mod fabric;
mod latency;
mod stats;
pub mod tcp;
pub mod transport;

pub use addr::Addr;
pub use endpoint::{Endpoint, Envelope};
pub use error::{RecvError, SendError};
pub use fabric::{AddrInUse, Fabric, FabricConfig, DEFAULT_MAX_FRAME_BYTES};
pub use stats::FabricStats;
pub use tcp::{SpokeConfig, TcpHub, TcpSpoke};
pub use transport::{Port, Transport, TransportError};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn frame_budget_defaults_and_overrides() {
        assert_eq!(Fabric::new().max_frame_bytes(), DEFAULT_MAX_FRAME_BYTES);
        let fabric = Fabric::with_config(FabricConfig {
            max_frame_bytes: 512,
            ..Default::default()
        });
        assert_eq!(fabric.max_frame_bytes(), 512);
    }

    #[test]
    fn per_message_cost_charges_the_sender() {
        let fabric = Fabric::with_config(FabricConfig {
            per_message_cost: Duration::from_millis(2),
            ..Default::default()
        });
        let a = fabric.bind(Addr::new("a")).unwrap();
        let _b = fabric.bind(Addr::new("b")).unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            a.send(&Addr::new("b"), payload("x")).unwrap();
        }
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "5 sends at 2 ms each took only {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn send_recv_roundtrip() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        a.send(&Addr::new("b"), payload("hi")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from.as_str(), "a");
        assert_eq!(&env.payload[..], b"hi");
    }

    #[test]
    fn duplicate_bind_rejected() {
        let fabric = Fabric::new();
        let _a = fabric.bind(Addr::new("x")).unwrap();
        assert!(fabric.bind(Addr::new("x")).is_err());
    }

    #[test]
    fn send_to_unknown_address_fails() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        let err = a.send(&Addr::new("ghost"), payload("x")).unwrap_err();
        assert!(matches!(err, SendError::PeerGone(_)));
    }

    #[test]
    fn dropping_endpoint_unbinds() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        {
            let _b = fabric.bind(Addr::new("b")).unwrap();
        }
        assert!(matches!(
            a.send(&Addr::new("b"), payload("x")),
            Err(SendError::PeerGone(_))
        ));
        // The name can be reused after the endpoint is gone.
        let _b2 = fabric.bind(Addr::new("b")).unwrap();
    }

    #[test]
    fn kill_makes_peer_gone_and_closes_inbox() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        a.send(&Addr::new("b"), payload("first")).unwrap();
        fabric.kill(&Addr::new("b"));
        assert!(matches!(
            a.send(&Addr::new("b"), payload("second")),
            Err(SendError::PeerGone(_))
        ));
        // The killed endpoint's recv reports closure once drained.
        assert_eq!(&b.recv().unwrap().payload[..], b"first");
        assert!(matches!(b.recv(), Err(RecvError::Closed)));
    }

    #[test]
    fn dropped_link_loses_messages_silently() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        fabric.drop_link(&Addr::new("a"), &Addr::new("b"));
        // Send succeeds (the network ate it), but nothing arrives.
        a.send(&Addr::new("b"), payload("lost")).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(20)).is_err());
        assert_eq!(fabric.stats().dropped(), 1);
        // Restore and verify delivery resumes.
        fabric.restore_link(&Addr::new("a"), &Addr::new("b"));
        a.send(&Addr::new("b"), payload("found")).unwrap();
        assert_eq!(&b.recv().unwrap().payload[..], b"found");
    }

    #[test]
    fn latency_delays_delivery() {
        let fabric = Fabric::with_config(FabricConfig {
            latency: Duration::from_millis(30),
            ..Default::default()
        });
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        let t0 = std::time::Instant::now();
        a.send(&Addr::new("b"), payload("slow")).unwrap();
        let env = b.recv().unwrap();
        assert_eq!(&env.payload[..], b"slow");
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "elapsed {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn latency_preserves_order_between_same_pair() {
        let fabric = Fabric::with_config(FabricConfig {
            latency: Duration::from_millis(5),
            ..Default::default()
        });
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        for i in 0..20u8 {
            a.send(&Addr::new("b"), Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.recv().unwrap().payload[0], i);
        }
    }

    #[test]
    fn stats_count_messages() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        for _ in 0..5 {
            a.send(&Addr::new("b"), payload("m")).unwrap();
        }
        for _ in 0..5 {
            b.recv().unwrap();
        }
        assert_eq!(fabric.stats().sent(), 5);
        assert_eq!(fabric.stats().delivered(), 5);
        assert_eq!(fabric.stats().dropped(), 0);
    }

    #[test]
    fn many_to_one_fan_in() {
        let fabric = Fabric::new();
        let hub = fabric.bind(Addr::new("hub")).unwrap();
        let senders: Vec<_> = (0..8)
            .map(|i| fabric.bind(Addr::new(format!("w{i}"))).unwrap())
            .collect();
        crossbeam::thread::scope(|s| {
            for (i, ep) in senders.iter().enumerate() {
                s.spawn(move |_| {
                    for j in 0..50u8 {
                        ep.send(&Addr::new("hub"), Bytes::copy_from_slice(&[i as u8, j]))
                            .unwrap();
                    }
                });
            }
            let mut seen = 0;
            while seen < 8 * 50 {
                hub.recv().unwrap();
                seen += 1;
            }
        })
        .unwrap();
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let fabric = Fabric::new();
        let a = fabric.bind(Addr::new("a")).unwrap();
        assert!(a.try_recv().is_none());
        let b = fabric.bind(Addr::new("b")).unwrap();
        b.send(&Addr::new("a"), payload("now")).unwrap();
        // Zero-latency fabric delivers synchronously.
        assert!(a.try_recv().is_some());
    }

    #[test]
    fn loss_probability_drops_some_messages() {
        let fabric = Fabric::with_config(FabricConfig {
            loss_probability: 0.5,
            seed: 42,
            ..Default::default()
        });
        let a = fabric.bind(Addr::new("a")).unwrap();
        let b = fabric.bind(Addr::new("b")).unwrap();
        for _ in 0..200 {
            a.send(&Addr::new("b"), payload("x")).unwrap();
        }
        let mut got = 0;
        while b.try_recv().is_some() {
            got += 1;
        }
        assert!(got > 50 && got < 150, "got {got}");
        assert_eq!(fabric.stats().dropped() + got, 200);
    }
}
