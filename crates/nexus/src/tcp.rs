//! Real TCP transport: hub-and-spoke sockets carrying `wire` frames.
//!
//! The process hosting the interchange owns a [`TcpHub`]: a loopback (or
//! any-interface) listener plus a router. Remote processes — spawned
//! worker managers, or the executor client exercising a real socket path —
//! connect a [`TcpSpoke`], identify themselves with a `Hello` frame, and
//! then exchange `Data { from, to, payload }` frames. The hub routes each
//! frame to a locally attached port or to another spoke by name, giving
//! the same any-to-any addressing as the in-proc fabric, over real
//! sockets. This is the reproduction's stand-in for Parsl HTEX's ZeroMQ
//! planes (§4.3).
//!
//! Fault behavior:
//! - A dropped connection ([`TcpHub::drop_conn`], a died process, a
//!   half-written frame) discards the torn frame with the socket; both
//!   sides reset their stream decoders on the next connection.
//! - A [`TcpSpoke`] reconnects automatically within a configured window,
//!   buffering outbound frames in FIFO order while the link is down and
//!   flushing them — after a fresh `Hello` — before anything newer, so
//!   peer-observed ordering survives the gap. Each reconnect bumps the
//!   spoke's [`Port::generation`], which managers watch to re-register.
//! - When the window expires the spoke closes; pending sends fail and the
//!   inbox channel disconnects, so protocol loops exit exactly as they do
//!   when the in-proc fabric kills an endpoint.

use crate::addr::Addr;
use crate::endpoint::Envelope;
use crate::error::{RecvError, SendError};
use crate::transport::{Port, Transport, TransportError};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Read buffer size for socket reader threads.
const IO_CHUNK: usize = 64 * 1024;

/// Everything on the wire is one of these, `wire`-encoded inside a
/// length-prefixed frame.
#[derive(Serialize, Deserialize)]
enum TcpFrame {
    /// First frame on every connection: the spoke's claimed address.
    Hello { name: String },
    /// An addressed message. The payload encodes as raw bytes (varint
    /// length + body, via [`RawBytes`]), NOT as a `Vec<u8>` element
    /// sequence — [`peek_data_header`] and the hub's verbatim relay
    /// depend on the payload being a contiguous byte run in the frame.
    Data {
        from: String,
        to: String,
        payload: RawBytes,
    },
}

/// Payload wrapper that serializes through serde's bytes calls, so the
/// wire format is a varint length followed by the raw body as one
/// contiguous run — the derive on `Vec<u8>` would emit a per-element
/// varint sequence, where bytes ≥ 0x80 grow to two bytes and the payload
/// could not be sliced (or relayed) straight out of the frame.
struct RawBytes(Vec<u8>);

impl Serialize for RawBytes {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(&self.0)
    }
}

impl<'de> Deserialize<'de> for RawBytes {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct BytesVisitor;
        impl<'de> serde::de::Visitor<'de> for BytesVisitor {
            type Value = RawBytes;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "raw bytes")
            }
            fn visit_bytes<E: serde::de::Error>(self, b: &[u8]) -> Result<RawBytes, E> {
                Ok(RawBytes(b.to_vec()))
            }
            fn visit_byte_buf<E: serde::de::Error>(self, b: Vec<u8>) -> Result<RawBytes, E> {
                Ok(RawBytes(b))
            }
        }
        d.deserialize_byte_buf(BytesVisitor)
    }
}

fn encode_tcp_frame(f: &TcpFrame) -> Vec<u8> {
    let body = wire::to_bytes(f).expect("tcp control frames always encode");
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// One registered remote connection on the hub.
struct Conn {
    /// Monotonic id guarding against a stale reader tearing down its
    /// replacement after a reconnect races in.
    id: u64,
    writer: Mutex<TcpStream>,
}

impl Conn {
    fn close(&self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
    }
}

struct HubInner {
    listen: SocketAddr,
    max_frame_bytes: usize,
    closed: AtomicBool,
    next_conn: AtomicU64,
    /// Frames forwarded spoke→spoke verbatim (no decode, no re-encode).
    relayed: AtomicU64,
    /// Ports attached in this process.
    local: Mutex<HashMap<Addr, Sender<Envelope>>>,
    /// Spokes registered via `Hello`, by claimed name.
    conns: Mutex<HashMap<Addr, Arc<Conn>>>,
}

impl HubInner {
    /// Deliver a locally originated message (a hub-side port's `send`) to
    /// a local port or a registered spoke. Spoke traffic never takes this
    /// path — it arrives already framed and goes through
    /// [`HubInner::route_raw`].
    fn route(&self, from: &Addr, to: &Addr, payload: Bytes) -> Result<(), SendError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SendError::SelfClosed);
        }
        if let Some(tx) = self.local.lock().get(to).cloned() {
            return tx
                .send(Envelope {
                    from: from.clone(),
                    payload,
                })
                .map_err(|_| SendError::PeerGone(to.clone()));
        }
        let Some(conn) = self.conns.lock().get(to).cloned() else {
            return Err(SendError::PeerGone(to.clone()));
        };
        let frame = encode_tcp_frame(&TcpFrame::Data {
            from: from.to_string(),
            to: to.to_string(),
            payload: RawBytes(payload.to_vec()),
        });
        let failed = conn.writer.lock().write_all(&frame).is_err();
        if failed {
            self.drop_conn_if_current(to, conn.id);
            return Err(SendError::PeerGone(to.clone()));
        }
        Ok(())
    }

    /// Hot path for frames arriving from a spoke: the `Data` header has
    /// been peeked (not deserialized), `payload` locates the payload bytes
    /// inside `frame`. Local delivery slices the payload out of the frame
    /// buffer; a remote destination gets the original frame bytes verbatim
    /// under a fresh length prefix — the payload is never decoded, copied,
    /// or re-encoded on the way through.
    fn route_raw(
        &self,
        from: &Addr,
        to: &Addr,
        frame: Bytes,
        payload: std::ops::Range<usize>,
    ) -> Result<(), SendError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(SendError::SelfClosed);
        }
        if let Some(tx) = self.local.lock().get(to).cloned() {
            return tx
                .send(Envelope {
                    from: from.clone(),
                    payload: frame.slice(payload),
                })
                .map_err(|_| SendError::PeerGone(to.clone()));
        }
        let Some(conn) = self.conns.lock().get(to).cloned() else {
            return Err(SendError::PeerGone(to.clone()));
        };
        let prefix = (frame.len() as u32).to_le_bytes();
        let failed = {
            let mut w = conn.writer.lock();
            w.write_all(&prefix)
                .and_then(|()| w.write_all(&frame))
                .is_err()
        };
        if failed {
            self.drop_conn_if_current(to, conn.id);
            return Err(SendError::PeerGone(to.clone()));
        }
        self.relayed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Remove and close the connection named `name` iff it is still the
    /// incarnation identified by `id`.
    fn drop_conn_if_current(&self, name: &Addr, id: u64) -> bool {
        let mut conns = self.conns.lock();
        if conns.get(name).is_some_and(|c| c.id == id) {
            let c = conns.remove(name).expect("checked present");
            drop(conns);
            c.close();
            true
        } else {
            false
        }
    }
}

/// Wire layout of [`TcpFrame::Data`], peeked without deserializing: the
/// variant index, then `from`, `to`, and the payload, each length-prefixed.
/// Returns the two address fields (borrowed from the frame) and the
/// payload's byte range, or `None` if the frame is not a well-formed
/// `Data` (a `Hello`, or garbage — the caller falls back to a full
/// decode to tell which).
fn peek_data_header(frame: &[u8]) -> Option<(&str, &str, std::ops::Range<usize>)> {
    const DATA_VARIANT: u64 = 1;
    let (variant, mut off) = wire::decode_varint(frame).ok()?;
    if variant != DATA_VARIANT {
        return None;
    }
    let (from, used) = wire::decode_str_prefix(&frame[off..]).ok()?;
    off += used;
    let (to, used) = wire::decode_str_prefix(&frame[off..]).ok()?;
    off += used;
    let (payload_len, used) = wire::decode_varint(&frame[off..]).ok()?;
    off += used;
    let end = off.checked_add(usize::try_from(payload_len).ok()?)?;
    // The payload is the last field; anything shorter or longer is corrupt.
    (end == frame.len()).then_some((from, to, off..end))
}

/// Per-connection reader: handshake, then route until EOF. `Data` frames
/// — the hot path — are routed from their raw bytes via
/// [`peek_data_header`]; only `Hello` (once per connection) pays a full
/// decode.
fn hub_conn_reader(inner: Arc<HubInner>, mut stream: TcpStream) {
    let mut decoder = wire::StreamDecoder::new();
    let mut buf = vec![0u8; IO_CHUNK];
    // (name, id) once the Hello arrives.
    let mut registered: Option<(Addr, u64)> = None;
    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                // Corrupt stream: kill the connection, never panic.
                Err(_) => break 'conn,
            };
            // Hot path: route a Data frame straight from its raw bytes.
            let peeked = peek_data_header(&frame).map(|(from, to, payload)| {
                let from_ok = registered.as_ref().is_some_and(|(a, _)| a.as_str() == from);
                (from_ok, Addr::new(to), payload)
            });
            if let Some((from_ok, to, payload)) = peeked {
                let Some((from, _)) = registered.as_ref() else {
                    break 'conn; // data before Hello
                };
                if !from_ok {
                    break 'conn; // spoke speaking as someone else
                }
                // Destination gone: drop the frame, like a lossy link.
                // Heartbeats recover anything that mattered.
                let _ = inner.route_raw(from, &to, frame, payload);
                continue;
            }
            let Ok(msg) = wire::from_bytes::<TcpFrame>(&frame) else {
                break 'conn;
            };
            match msg {
                TcpFrame::Hello { name } => {
                    if registered.is_some() {
                        break 'conn; // protocol violation
                    }
                    let Ok(writer) = stream.try_clone() else {
                        break 'conn;
                    };
                    let name = Addr::new(name);
                    let id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
                    let conn = Arc::new(Conn {
                        id,
                        writer: Mutex::new(writer),
                    });
                    // Register under the conns lock, checking `closed`
                    // under that same lock: a Hello racing `shutdown`
                    // either lands before the drain (and is swept with
                    // the rest) or observes `closed` here — it must not
                    // slip in after the sweep and keep the link open.
                    let mut conns = inner.conns.lock();
                    if inner.closed.load(Ordering::Acquire) {
                        break 'conn;
                    }
                    // A reconnect replaces (and closes) the old incarnation.
                    if let Some(old) = conns.insert(name.clone(), conn) {
                        old.close();
                    }
                    drop(conns);
                    registered = Some((name, id));
                }
                // Every well-formed Data frame was already routed raw
                // above; one that peeks as malformed but still decodes
                // is impossible (same layout), so treat it as corrupt.
                TcpFrame::Data { .. } => break 'conn,
            }
        }
    }
    if let Some((name, id)) = registered {
        inner.drop_conn_if_current(&name, id);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn hub_accept_loop(inner: Arc<HubInner>, listener: TcpListener) {
    for stream in listener.incoming() {
        if inner.closed.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("nexus-tcp-conn".into())
            .spawn(move || hub_conn_reader(inner, stream))
            .expect("spawn tcp reader thread");
    }
}

/// The listening side of the TCP plane; lives in the interchange process.
pub struct TcpHub {
    inner: Arc<HubInner>,
}

impl TcpHub {
    /// Bind a listener (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and start accepting spokes.
    pub fn bind(addr: &str) -> std::io::Result<TcpHub> {
        Self::bind_with(addr, crate::fabric::DEFAULT_MAX_FRAME_BYTES)
    }

    /// [`TcpHub::bind`] with an explicit frame budget.
    pub fn bind_with(addr: &str, max_frame_bytes: usize) -> std::io::Result<TcpHub> {
        let listener = TcpListener::bind(addr)?;
        let inner = Arc::new(HubInner {
            listen: listener.local_addr()?,
            max_frame_bytes,
            closed: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            relayed: AtomicU64::new(0),
            local: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
        });
        let accept_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("nexus-tcp-accept".into())
            .spawn(move || hub_accept_loop(accept_inner, listener))
            .expect("spawn tcp accept thread");
        Ok(TcpHub { inner })
    }

    /// The socket address spokes should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.listen
    }

    /// Names of currently registered spokes.
    pub fn connected(&self) -> Vec<Addr> {
        self.inner.conns.lock().keys().cloned().collect()
    }

    /// Frames forwarded spoke→spoke as raw bytes (header peeked, payload
    /// never decoded or re-encoded). Local deliveries don't count.
    pub fn relayed_frames(&self) -> u64 {
        self.inner.relayed.load(Ordering::Relaxed)
    }

    /// Fault injection: sever the connection registered as `name`.
    ///
    /// The torn socket surfaces as EOF on both sides; a reconnecting
    /// spoke re-registers with a fresh `Hello`. Returns false if no such
    /// connection exists.
    pub fn drop_conn(&self, name: &Addr) -> bool {
        let conn = self.inner.conns.lock().get(name).map(|c| c.id);
        match conn {
            Some(id) => self.inner.drop_conn_if_current(name, id),
            None => false,
        }
    }

    /// Stop accepting, close every connection, and detach local ports.
    pub fn shutdown(&self) {
        if self.inner.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop so it observes `closed`.
        let _ = TcpStream::connect(self.inner.listen);
        let conns: Vec<_> = self.inner.conns.lock().drain().collect();
        for (_, c) in conns {
            c.close();
        }
        self.inner.local.lock().clear();
    }
}

impl Drop for TcpHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Transport for TcpHub {
    fn attach(&self, addr: Addr) -> Result<Box<dyn Port>, TransportError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(TransportError("hub is shut down".into()));
        }
        let (tx, rx) = unbounded();
        let mut local = self.inner.local.lock();
        if local.contains_key(&addr) {
            return Err(TransportError(format!("address {addr} already attached")));
        }
        local.insert(addr.clone(), tx);
        drop(local);
        Ok(Box::new(HubPort {
            addr,
            rx,
            inner: Arc::clone(&self.inner),
        }))
    }

    fn max_frame_bytes(&self) -> usize {
        self.inner.max_frame_bytes
    }
}

/// A port attached directly to the hub (interchange side).
struct HubPort {
    addr: Addr,
    rx: Receiver<Envelope>,
    inner: Arc<HubInner>,
}

impl Port for HubPort {
    fn addr(&self) -> &Addr {
        &self.addr
    }

    fn send(&self, to: &Addr, payload: Bytes) -> Result<(), SendError> {
        self.inner.route(&self.addr, to, payload)
    }

    fn recv(&self) -> Result<Envelope, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    fn try_recv(&self) -> Option<Envelope> {
        match self.rx.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    fn queued(&self) -> usize {
        self.rx.len()
    }

    fn receiver(&self) -> &Receiver<Envelope> {
        &self.rx
    }
}

impl Drop for HubPort {
    fn drop(&mut self) {
        self.inner.local.lock().remove(&self.addr);
    }
}

/// Reconnection policy for a [`TcpSpoke`].
#[derive(Debug, Clone)]
pub struct SpokeConfig {
    /// Delay between connection attempts while the link is down.
    pub retry_interval: Duration,
    /// How long a disconnected spoke keeps retrying before giving up and
    /// closing. Mirrors the paper's managers exiting on lost interchange
    /// contact to avoid wasting allocation time (§4.3.1).
    pub reconnect_window: Duration,
}

impl Default for SpokeConfig {
    fn default() -> Self {
        SpokeConfig {
            retry_interval: Duration::from_millis(25),
            reconnect_window: Duration::from_secs(10),
        }
    }
}

struct SpokeState {
    /// Write half of the live connection, if any.
    writer: Option<TcpStream>,
    /// Encoded frames queued while the link is down, flushed FIFO on
    /// reconnect (after the fresh `Hello`, before anything newer).
    pending: VecDeque<Vec<u8>>,
}

struct SpokeInner {
    name: Addr,
    server: SocketAddr,
    cfg: SpokeConfig,
    closed: AtomicBool,
    generation: AtomicU64,
    state: Mutex<SpokeState>,
}

/// The connecting side of the TCP plane: one process's addressed port.
pub struct TcpSpoke {
    inner: Arc<SpokeInner>,
    rx: Receiver<Envelope>,
}

impl TcpSpoke {
    /// Connect to a hub at `server`, announce `name`, and start the
    /// reader thread. Fails fast if the initial connection is refused.
    pub fn connect<A: ToSocketAddrs>(
        server: A,
        name: Addr,
        cfg: SpokeConfig,
    ) -> std::io::Result<TcpSpoke> {
        let server = server
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("no address resolved"))?;
        let stream = TcpStream::connect(server)?;
        stream.set_nodelay(true)?;
        (&stream).write_all(&encode_tcp_frame(&TcpFrame::Hello {
            name: name.to_string(),
        }))?;
        let writer = stream.try_clone()?;
        let inner = Arc::new(SpokeInner {
            name,
            server,
            cfg,
            closed: AtomicBool::new(false),
            generation: AtomicU64::new(1),
            state: Mutex::new(SpokeState {
                writer: Some(writer),
                pending: VecDeque::new(),
            }),
        });
        let (tx, rx) = unbounded();
        let reader_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("nexus-tcp-spoke".into())
            .spawn(move || spoke_reader(reader_inner, stream, tx))
            .expect("spawn tcp spoke reader");
        Ok(TcpSpoke { inner, rx })
    }

    /// True once the spoke has given up (window expired or closed).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Close the spoke; the reader thread exits and pending sends fail.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
        if let Some(w) = self.inner.state.lock().writer.take() {
            let _ = w.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for TcpSpoke {
    fn drop(&mut self) {
        self.close();
    }
}

/// Reader thread: decode inbound frames; on link loss, reconnect within
/// the window, replay the pending queue, and bump the generation.
fn spoke_reader(inner: Arc<SpokeInner>, mut stream: TcpStream, tx: Sender<Envelope>) {
    let mut buf = vec![0u8; IO_CHUNK];
    'link: loop {
        let mut decoder = wire::StreamDecoder::new();
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            decoder.feed(&buf[..n]);
            loop {
                match decoder.next_frame() {
                    Ok(Some(frame)) => {
                        // Same header peek as the hub: the payload is
                        // sliced out of the frame buffer, never decoded
                        // or copied. Non-Data frames are ignored.
                        let hdr =
                            peek_data_header(&frame).map(|(f, _, range)| (Addr::new(f), range));
                        if let Some((from, range)) = hdr {
                            if tx
                                .send(Envelope {
                                    from,
                                    payload: frame.slice(range),
                                })
                                .is_err()
                            {
                                break 'link; // port dropped
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break, // corrupt stream: treat as link loss
                }
            }
        }
        // Link lost: invalidate the writer so sends start buffering.
        {
            let mut st = inner.state.lock();
            if let Some(w) = st.writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
        if inner.closed.load(Ordering::Acquire) {
            break 'link;
        }
        let deadline = Instant::now() + inner.cfg.reconnect_window;
        stream = loop {
            if inner.closed.load(Ordering::Acquire) || Instant::now() >= deadline {
                break 'link;
            }
            let Ok(s) = TcpStream::connect(inner.server) else {
                std::thread::sleep(inner.cfg.retry_interval);
                continue;
            };
            let _ = s.set_nodelay(true);
            // Re-handshake and replay the pending queue under the state
            // lock so concurrent send() calls keep FIFO order.
            let mut st = inner.state.lock();
            let hello = encode_tcp_frame(&TcpFrame::Hello {
                name: inner.name.to_string(),
            });
            let mut ok = (&s).write_all(&hello).is_ok();
            while ok {
                let Some(frame) = st.pending.front() else {
                    break;
                };
                if (&s).write_all(frame).is_ok() {
                    st.pending.pop_front();
                } else {
                    ok = false;
                }
            }
            let writer = if ok { s.try_clone().ok() } else { None };
            let Some(writer) = writer else {
                drop(st);
                std::thread::sleep(inner.cfg.retry_interval);
                continue;
            };
            st.writer = Some(writer);
            drop(st);
            inner.generation.fetch_add(1, Ordering::Release);
            break s;
        };
    }
    inner.closed.store(true, Ordering::Release);
    if let Some(w) = inner.state.lock().writer.take() {
        let _ = w.shutdown(Shutdown::Both);
    }
    // Dropping `tx` here disconnects the inbox: recv() reports Closed.
}

impl Port for TcpSpoke {
    fn addr(&self) -> &Addr {
        &self.inner.name
    }

    fn send(&self, to: &Addr, payload: Bytes) -> Result<(), SendError> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(SendError::SelfClosed);
        }
        let frame = encode_tcp_frame(&TcpFrame::Data {
            from: self.inner.name.to_string(),
            to: to.to_string(),
            payload: RawBytes(payload.to_vec()),
        });
        let mut st = self.inner.state.lock();
        match st.writer.as_ref() {
            Some(w) => {
                let mut wref = w;
                if wref.write_all(&frame).is_ok() {
                    Ok(())
                } else {
                    // Broken mid-write: the torn frame dies with the
                    // socket. Queue a clean copy for the next link and
                    // wake the reader into its reconnect loop.
                    if let Some(w) = st.writer.take() {
                        let _ = w.shutdown(Shutdown::Both);
                    }
                    st.pending.push_back(frame);
                    Ok(())
                }
            }
            None => {
                st.pending.push_back(frame);
                Ok(())
            }
        }
    }

    fn recv(&self) -> Result<Envelope, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    fn try_recv(&self) -> Option<Envelope> {
        match self.rx.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    fn queued(&self) -> usize {
        self.rx.len()
    }

    fn receiver(&self) -> &Receiver<Envelope> {
        &self.rx
    }

    fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub() -> TcpHub {
        TcpHub::bind("127.0.0.1:0").unwrap()
    }

    fn wait_for<F: Fn() -> bool>(cond: F, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn spoke_to_local_port_roundtrip() {
        let hub = hub();
        let ix = hub.attach(Addr::new("ix")).unwrap();
        let spoke =
            TcpSpoke::connect(hub.local_addr(), Addr::new("mgr"), SpokeConfig::default()).unwrap();
        spoke
            .send(&Addr::new("ix"), Bytes::from_static(b"register"))
            .unwrap();
        let env = ix.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from.as_str(), "mgr");
        assert_eq!(&env.payload[..], b"register");
        // And back: hub-side port to the spoke by name.
        ix.send(&Addr::new("mgr"), Bytes::from_static(b"task"))
            .unwrap();
        let env = spoke.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from.as_str(), "ix");
        assert_eq!(&env.payload[..], b"task");
    }

    #[test]
    fn spoke_to_spoke_routes_through_hub() {
        let hub = hub();
        let a =
            TcpSpoke::connect(hub.local_addr(), Addr::new("a"), SpokeConfig::default()).unwrap();
        let b =
            TcpSpoke::connect(hub.local_addr(), Addr::new("b"), SpokeConfig::default()).unwrap();
        wait_for(|| hub.connected().len() == 2, "both spokes registered");
        a.send(&Addr::new("b"), Bytes::from_static(b"hi")).unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from.as_str(), "a");
        assert_eq!(&env.payload[..], b"hi");
    }

    #[test]
    fn send_to_unknown_name_is_peer_gone() {
        let hub = hub();
        let ix = hub.attach(Addr::new("ix")).unwrap();
        assert!(matches!(
            ix.send(&Addr::new("ghost"), Bytes::from_static(b"x")),
            Err(SendError::PeerGone(_))
        ));
    }

    #[test]
    fn dropped_conn_reconnects_and_replays_pending() {
        let hub = hub();
        let ix = hub.attach(Addr::new("ix")).unwrap();
        let spoke = TcpSpoke::connect(
            hub.local_addr(),
            Addr::new("mgr"),
            SpokeConfig {
                retry_interval: Duration::from_millis(10),
                reconnect_window: Duration::from_secs(5),
            },
        )
        .unwrap();
        wait_for(|| !hub.connected().is_empty(), "spoke registered");
        let gen0 = spoke.generation();

        // Simulate the reader having noticed a dead link: take the write
        // half so sends buffer (dropping a cloned fd does not close the
        // connection the reader still holds).
        drop(spoke.inner.state.lock().writer.take());
        for i in 0..5u8 {
            spoke
                .send(&Addr::new("ix"), Bytes::copy_from_slice(&[i]))
                .unwrap();
        }
        assert_eq!(spoke.inner.state.lock().pending.len(), 5);

        // Now actually sever the link: the reader sees EOF, reconnects,
        // re-Hellos, and replays the queue in order.
        assert!(hub.drop_conn(&Addr::new("mgr")));
        for i in 0..5u8 {
            let env = ix.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(env.payload[0], i);
        }
        wait_for(|| spoke.generation() > gen0, "generation bump");
        assert!(!spoke.is_closed());
        // The replayed link is live: a direct send arrives too.
        spoke
            .send(&Addr::new("ix"), Bytes::from_static(b"after"))
            .unwrap();
        let env = ix.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&env.payload[..], b"after");
    }

    #[test]
    fn spoke_gives_up_after_window_and_closes() {
        let hub = hub();
        let spoke = TcpSpoke::connect(
            hub.local_addr(),
            Addr::new("mgr"),
            SpokeConfig {
                retry_interval: Duration::from_millis(10),
                reconnect_window: Duration::from_millis(100),
            },
        )
        .unwrap();
        hub.shutdown();
        // Reconnects are refused (listener gone); the window expires.
        assert!(matches!(spoke.recv(), Err(RecvError::Closed)));
        wait_for(|| spoke.is_closed(), "spoke closed");
        assert!(matches!(
            spoke.send(&Addr::new("ix"), Bytes::from_static(b"x")),
            Err(SendError::SelfClosed)
        ));
    }

    #[test]
    fn oversized_frame_budget_is_reported() {
        let hub = TcpHub::bind_with("127.0.0.1:0", 1024).unwrap();
        assert_eq!(Transport::max_frame_bytes(&hub), 1024);
    }

    #[test]
    fn peek_matches_serde_layout() {
        let frame = wire::to_bytes(&TcpFrame::Data {
            from: "mgr-0".into(),
            to: "ix".into(),
            payload: RawBytes(vec![9, 0x80, 0xff]),
        })
        .unwrap();
        let (from, to, payload) = peek_data_header(&frame).expect("well-formed Data peeks");
        assert_eq!(from, "mgr-0");
        assert_eq!(to, "ix");
        // Bytes >= 0x80 must sit in the frame verbatim (raw-bytes layout,
        // not a per-element varint sequence).
        assert_eq!(&frame[payload], &[9, 0x80, 0xff]);
        // Hello frames don't peek (they take the full-decode path).
        let hello = wire::to_bytes(&TcpFrame::Hello { name: "x".into() }).unwrap();
        assert!(peek_data_header(&hello).is_none());
        // Truncated and padded frames are rejected.
        assert!(peek_data_header(&frame[..frame.len() - 1]).is_none());
        let mut padded = frame.clone();
        padded.push(0);
        assert!(peek_data_header(&padded).is_none());
    }

    #[test]
    fn hub_relays_spoke_frames_verbatim() {
        let hub = hub();
        // Two raw TCP peers speaking the frame protocol by hand, so we can
        // observe the exact bytes the hub puts on the destination socket.
        let mut a = TcpStream::connect(hub.local_addr()).unwrap();
        a.write_all(&encode_tcp_frame(&TcpFrame::Hello { name: "a".into() }))
            .unwrap();
        let mut b = TcpStream::connect(hub.local_addr()).unwrap();
        b.write_all(&encode_tcp_frame(&TcpFrame::Hello { name: "b".into() }))
            .unwrap();
        wait_for(|| hub.connected().len() == 2, "both raw peers registered");

        let frame = encode_tcp_frame(&TcpFrame::Data {
            from: "a".into(),
            to: "b".into(),
            payload: RawBytes((0..=255u8).collect()),
        });
        a.write_all(&frame).unwrap();

        let mut got = vec![0u8; frame.len()];
        b.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        b.read_exact(&mut got).unwrap();
        assert_eq!(
            got, frame,
            "a relayed frame must arrive byte-identical, prefix included"
        );
        // The counter bumps just after the bytes hit the socket; give the
        // reader thread a beat.
        wait_for(|| hub.relayed_frames() == 1, "routed via the raw path");
    }

    #[test]
    fn spoofed_from_field_kills_the_connection() {
        let hub = hub();
        let ix = hub.attach(Addr::new("ix")).unwrap();
        let mut liar = TcpStream::connect(hub.local_addr()).unwrap();
        liar.write_all(&encode_tcp_frame(&TcpFrame::Hello {
            name: "liar".into(),
        }))
        .unwrap();
        wait_for(|| hub.connected().len() == 1, "liar registered");
        // Forwarding raw frames means the embedded `from` travels as-is,
        // so the hub must refuse a frame claiming someone else's name.
        liar.write_all(&encode_tcp_frame(&TcpFrame::Data {
            from: "honest".into(),
            to: "ix".into(),
            payload: RawBytes(vec![1]),
        }))
        .unwrap();
        wait_for(|| hub.connected().is_empty(), "liar disconnected");
        assert!(ix.try_recv().is_none(), "spoofed frame must not deliver");
    }
}
