//! Fabric error types.

use crate::addr::Addr;
use std::fmt;

/// Failure to hand a message to the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The destination endpoint does not exist or has been killed.
    PeerGone(Addr),
    /// The sender itself has been killed and may no longer transmit.
    SelfClosed,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::PeerGone(a) => write!(f, "peer {a} is gone"),
            SendError::SelfClosed => write!(f, "sending endpoint is closed"),
        }
    }
}

impl std::error::Error for SendError {}

/// Failure to receive from an endpoint's inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The inbox is drained and the endpoint was killed or its fabric
    /// dropped; no further message can ever arrive.
    Closed,
    /// `recv_timeout` elapsed without a message.
    Timeout,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Closed => write!(f, "endpoint closed"),
            RecvError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for RecvError {}
