//! Delay line: a background thread that holds messages for the configured
//! network latency before delivering them.

use crate::endpoint::Envelope;
use crate::stats::FabricStats;
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

pub(crate) struct Delivery {
    pub env: Envelope,
    pub inbox: Sender<Envelope>,
    pub stats: FabricStats,
}

/// Heap entry ordered by earliest deadline first, FIFO within a deadline.
struct Pending {
    deadline: Instant,
    seq: u64,
    delivery: Delivery,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // (then lowest sequence number) on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

pub(crate) struct DelayLine {
    tx: Sender<(Instant, Delivery)>,
}

impl DelayLine {
    pub fn spawn() -> Self {
        let (tx, rx) = unbounded::<(Instant, Delivery)>();
        std::thread::Builder::new()
            .name("nexus-delay".into())
            .spawn(move || {
                let mut heap: BinaryHeap<Pending> = BinaryHeap::new();
                let mut seq = 0u64;
                let mut disconnected = false;
                loop {
                    let now = Instant::now();
                    while heap.peek().is_some_and(|p| p.deadline <= now) {
                        let p = heap.pop().expect("peeked");
                        deliver(p.delivery);
                    }
                    if disconnected && heap.is_empty() {
                        return;
                    }
                    let wait = heap
                        .peek()
                        .map(|p| p.deadline.saturating_duration_since(now));
                    let received = match wait {
                        Some(d) if disconnected => {
                            // No new messages can arrive; just wait out the
                            // remaining deadlines.
                            std::thread::sleep(d);
                            continue;
                        }
                        Some(d) => rx.recv_timeout(d),
                        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                    };
                    match received {
                        Ok((deadline, delivery)) => {
                            heap.push(Pending {
                                deadline,
                                seq,
                                delivery,
                            });
                            seq += 1;
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                    }
                }
            })
            .expect("spawn nexus delay thread");
        DelayLine { tx }
    }

    pub fn enqueue(&self, deadline: Instant, delivery: Delivery) {
        // If the delay thread is gone the fabric is shutting down; dropping
        // the message is acceptable then.
        let _ = self.tx.send((deadline, delivery));
    }
}

fn deliver(d: Delivery) {
    if d.inbox.send(d.env).is_ok() {
        d.stats.record_delivered();
    } else {
        d.stats.record_dropped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_orders_by_deadline_then_seq() {
        let now = Instant::now();
        let (tx, _rx) = unbounded();
        let mk = |offset_ms: u64, seq: u64| Pending {
            deadline: now + std::time::Duration::from_millis(offset_ms),
            seq,
            delivery: Delivery {
                env: Envelope {
                    from: crate::Addr::new("t"),
                    payload: bytes::Bytes::new(),
                },
                inbox: tx.clone(),
                stats: FabricStats::default(),
            },
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(10, 0));
        heap.push(mk(5, 1));
        heap.push(mk(5, 2));
        heap.push(mk(1, 3));
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|p| p.seq)).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }
}
