//! Transport abstraction: the executors' message plane, generalized.
//!
//! The HTEX protocol loops (interchange, manager, client) are written
//! against [`Port`] — an addressed mailbox that can send to any peer by
//! [`Addr`] — and [`Transport`] — a factory that attaches ports. Two
//! implementations exist:
//!
//! - the in-proc [`Fabric`], the fast deterministic test
//!   double with latency/loss/kill fault injection, and
//! - the real TCP plane ([`crate::tcp`]), hub-and-spoke sockets carrying
//!   `wire` length-prefixed frames between processes.
//!
//! Every protocol loop runs unchanged over either plane.

use crate::addr::Addr;
use crate::endpoint::{Endpoint, Envelope};
use crate::error::{RecvError, SendError};
use crate::fabric::Fabric;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use std::time::Duration;

/// An addressed mailbox on some message plane.
///
/// Mirrors [`Endpoint`]'s API so in-proc code ports over mechanically.
/// Delivery guarantees are those of the underlying plane: FIFO between a
/// given sender/receiver pair, no delivery guarantee across a link drop.
pub trait Port: Send + Sync {
    /// This port's own address.
    fn addr(&self) -> &Addr;

    /// Send `payload` to the peer named `to`.
    fn send(&self, to: &Addr, payload: Bytes) -> Result<(), SendError>;

    /// Block until a message arrives.
    fn recv(&self) -> Result<Envelope, RecvError>;

    /// Block up to `timeout` for a message.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError>;

    /// Take a message if one is already queued.
    fn try_recv(&self) -> Option<Envelope>;

    /// Number of messages waiting in the inbox.
    fn queued(&self) -> usize;

    /// The raw inbox receiver, so protocol loops can `select!` across the
    /// port and other channels.
    fn receiver(&self) -> &Receiver<Envelope>;

    /// Link incarnation counter: bumped each time the underlying link is
    /// re-established. In-proc endpoints never reconnect, so the default
    /// is a constant. Managers watch this to re-register after a drop.
    fn generation(&self) -> u64 {
        0
    }
}

impl Port for Endpoint {
    fn addr(&self) -> &Addr {
        Endpoint::addr(self)
    }

    fn send(&self, to: &Addr, payload: Bytes) -> Result<(), SendError> {
        Endpoint::send(self, to, payload)
    }

    fn recv(&self) -> Result<Envelope, RecvError> {
        Endpoint::recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Envelope> {
        Endpoint::try_recv(self)
    }

    fn queued(&self) -> usize {
        Endpoint::queued(self)
    }

    fn receiver(&self) -> &Receiver<Envelope> {
        Endpoint::receiver(self)
    }
}

/// Failure to attach a port (name collision, socket error).
#[derive(Debug, Clone)]
pub struct TransportError(pub String);

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport: {}", self.0)
    }
}

impl std::error::Error for TransportError {}

/// A message plane that can attach named ports.
pub trait Transport: Send + Sync {
    /// Bind a mailbox at `addr` and return it as a boxed [`Port`].
    fn attach(&self, addr: Addr) -> Result<Box<dyn Port>, TransportError>;

    /// Largest frame the plane will carry; batchers chunk to this budget.
    fn max_frame_bytes(&self) -> usize;
}

impl Transport for Fabric {
    fn attach(&self, addr: Addr) -> Result<Box<dyn Port>, TransportError> {
        self.bind(addr)
            .map(|ep| Box::new(ep) as Box<dyn Port>)
            .map_err(|e| TransportError(e.to_string()))
    }

    fn max_frame_bytes(&self) -> usize {
        Fabric::max_frame_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_attaches_ports() {
        let fabric = Fabric::new();
        let a = fabric.attach(Addr::new("a")).unwrap();
        let b = fabric.attach(Addr::new("b")).unwrap();
        assert_eq!(a.generation(), 0);
        a.send(&Addr::new("b"), Bytes::from_static(b"ping"))
            .unwrap();
        let env = b.recv().unwrap();
        assert_eq!(env.from.as_str(), "a");
        assert_eq!(&env.payload[..], b"ping");
        assert!(fabric.attach(Addr::new("a")).is_err());
    }
}
