//! Fabric-wide message counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared by all endpoints of one fabric.
///
/// Counts are monotone and lock-free; executors use them to assert batching
/// efficiency (messages per task) and tests use them to verify loss.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

impl FabricStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_sent(&self, bytes: usize) {
        self.inner.sent.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delivered(&self) {
        self.inner.delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages accepted by the fabric (including ones later dropped).
    pub fn sent(&self) -> u64 {
        self.inner.sent.load(Ordering::Relaxed)
    }

    /// Messages placed in a destination inbox.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Ordering::Relaxed)
    }

    /// Messages eaten by link faults or loss probability.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Total payload bytes accepted.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = FabricStats::new();
        s.record_sent(10);
        s.record_sent(5);
        s.record_delivered();
        s.record_dropped();
        assert_eq!(s.sent(), 2);
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.bytes(), 15);
    }

    #[test]
    fn clones_share_state() {
        let s = FabricStats::new();
        let s2 = s.clone();
        s.record_sent(1);
        assert_eq!(s2.sent(), 1);
    }
}
