//! Property tests on the fabric: delivery is exactly-once and per-pair
//! FIFO on a fault-free network, and accounting identities hold under
//! random loss.

use bytes::Bytes;
use nexus::{Addr, Fabric, FabricConfig};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every message sent on a perfect fabric arrives exactly once, in
    /// per-sender order.
    #[test]
    fn perfect_fabric_is_exactly_once_fifo(
        messages in vec((0usize..4, any::<u16>()), 1..60)
    ) {
        let fabric = Fabric::new();
        let hub = fabric.bind(Addr::new("hub")).unwrap();
        let senders: Vec<_> = (0..4)
            .map(|i| fabric.bind(Addr::new(format!("s{i}"))).unwrap())
            .collect();
        for &(s, v) in &messages {
            senders[s].send(&Addr::new("hub"), Bytes::from(v.to_le_bytes().to_vec())).unwrap();
        }
        // Collect everything; group by sender.
        let mut got: Vec<Vec<u16>> = vec![Vec::new(); 4];
        for _ in 0..messages.len() {
            let env = hub.recv().unwrap();
            let idx: usize = env.from.as_str()[1..].parse().unwrap();
            got[idx].push(u16::from_le_bytes([env.payload[0], env.payload[1]]));
        }
        prop_assert!(hub.try_recv().is_none(), "no duplicates");
        for (s, got_s) in got.iter().enumerate() {
            let sent: Vec<u16> = messages.iter().filter(|(i, _)| *i == s).map(|(_, v)| *v).collect();
            prop_assert_eq!(got_s, &sent, "per-sender FIFO for s{}", s);
        }
        prop_assert_eq!(fabric.stats().sent(), messages.len() as u64);
        prop_assert_eq!(fabric.stats().delivered(), messages.len() as u64);
        prop_assert_eq!(fabric.stats().dropped(), 0);
    }

    /// Under random loss, sent == delivered + dropped, and everything
    /// delivered was genuinely sent (no fabrication).
    #[test]
    fn lossy_fabric_accounting_balances(
        n in 1usize..120,
        loss in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let fabric = Fabric::with_config(FabricConfig {
            loss_probability: loss,
            seed,
            ..Default::default()
        });
        let rx = fabric.bind(Addr::new("rx")).unwrap();
        let tx = fabric.bind(Addr::new("tx")).unwrap();
        for i in 0..n {
            tx.send(&Addr::new("rx"), Bytes::from(vec![i as u8])).unwrap();
        }
        let mut received = 0u64;
        while rx.try_recv().is_some() {
            received += 1;
        }
        let stats = fabric.stats();
        prop_assert_eq!(stats.sent(), n as u64);
        prop_assert_eq!(stats.delivered(), received);
        prop_assert_eq!(stats.delivered() + stats.dropped(), n as u64);
    }

    /// Killing an endpoint never panics senders; every send after the kill
    /// reports PeerGone.
    #[test]
    fn kill_is_clean(n_before in 0usize..10, n_after in 1usize..10) {
        let fabric = Fabric::new();
        let rx = fabric.bind(Addr::new("victim")).unwrap();
        let tx = fabric.bind(Addr::new("tx")).unwrap();
        for _ in 0..n_before {
            tx.send(&Addr::new("victim"), Bytes::new()).unwrap();
        }
        fabric.kill(&Addr::new("victim"));
        for _ in 0..n_after {
            prop_assert!(tx.send(&Addr::new("victim"), Bytes::new()).is_err());
        }
        // The victim still drains pre-kill messages, then sees Closed.
        let mut drained = 0;
        while rx.try_recv().is_some() {
            drained += 1;
        }
        prop_assert_eq!(drained, n_before);
        prop_assert!(rx.is_closed());
    }
}
