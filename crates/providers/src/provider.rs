//! The three-action provider interface.

use std::fmt;
use std::time::Duration;

/// Opaque handle to a submitted job.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobHandle(pub u64);

impl fmt::Display for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "provider-job-{}", self.0)
    }
}

/// Provider-level job states (deliberately coarser than the LRM's: this is
/// the view Parsl's provider interface exposes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for resources.
    Pending,
    /// Nodes granted; workers should be coming up.
    Running,
    /// Finished (walltime or owner release).
    Completed,
    /// Cancelled by the owner.
    Cancelled,
    /// Died (injected failure or lost allocation).
    Failed,
    /// The provider does not know this handle.
    Unknown,
}

/// Submission failures.
#[derive(Debug, Clone)]
pub enum ProviderError {
    /// The request can never be satisfied (too many nodes, policy).
    Rejected(String),
    /// Transient inability to submit (queue full).
    Busy(String),
}

impl fmt::Display for ProviderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderError::Rejected(m) => write!(f, "submission rejected: {m}"),
            ProviderError::Busy(m) => write!(f, "provider busy: {m}"),
        }
    }
}

impl std::error::Error for ProviderError {}

/// The uniform resource-acquisition interface (§4.2): submit / status /
/// cancel, in units of nodes.
pub trait ExecutionProvider: Send + Sync {
    /// Human-readable name for logs ("local", "slurm-sim", ...).
    fn name(&self) -> &str;

    /// Ask for `nodes` nodes, optionally bounded by `walltime`.
    fn submit(&self, nodes: usize, walltime: Option<Duration>) -> Result<JobHandle, ProviderError>;

    /// Poll a job's state.
    fn status(&self, job: &JobHandle) -> JobStatus;

    /// Cancel a pending or running job; true if it was live.
    fn cancel(&self, job: &JobHandle) -> bool;

    /// Nodes not currently allocated (best effort; used by tests and the
    /// strategy's introspection).
    fn free_nodes(&self) -> usize;
}
