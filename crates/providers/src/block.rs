//! Block pools (§4.2.3, §4.4): provider-backed elasticity.
//!
//! "Parsl defines a resource unit abstraction called a block as the most
//! basic unit of resources to be acquired from a provider ... Any scaling
//! in/out must occur in units of blocks." A [`BlockPool`] turns provider
//! jobs into executor capacity: scaling out submits a job for
//! `nodes_per_block` nodes; when the provider reports the job running, the
//! pool fires `on_block_up` (which typically calls the executor's
//! `add_node`); scaling in cancels jobs and fires `on_block_down`.
//!
//! Because the provider can impose queue delays, the DataFlowKernel's
//! strategy engine experiences realistic provisioning latency — the effect
//! measured in the elasticity experiment (Figure 6).
//!
//! # Graceful drain
//!
//! [`BlockScaling::drain`] marks victim blocks *draining* instead of
//! cancelling their provider jobs outright: `on_block_drain` fires (the
//! executor stops routing there and retires its managers), and the
//! provider job is released only once the configured `drained_probe`
//! reports the executor-side drain finished — held tasks run to
//! completion, so scale-in kills no work. Without a probe, `drain`
//! falls back to the abrupt `scale_in` path.

use crate::provider::{ExecutionProvider, JobHandle, JobStatus};
use parking_lot::Mutex;
use parsl_core::executor::BlockScaling;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum BlockState {
    /// Submitted to the provider, waiting in its queue.
    Requested,
    /// Provider says the job is running; `on_block_up` has fired.
    Up,
    /// Victim of a graceful scale-in: `on_block_drain` has fired, the
    /// provider job is held until the executor-side drain completes.
    Draining,
}

struct Block {
    job: JobHandle,
    state: BlockState,
}

type NodeHook = Box<dyn Fn(usize) + Send + Sync>;

/// Reports how many executor-side nodes are still draining; the pool
/// releases a `Draining` block's provider job once the executor no
/// longer accounts for its nodes.
type DrainProbe = Box<dyn Fn() -> usize + Send + Sync>;

struct PoolInner {
    provider: Arc<dyn ExecutionProvider>,
    nodes_per_block: usize,
    workers_per_node: usize,
    min_blocks: usize,
    max_blocks: usize,
    walltime: Option<Duration>,
    on_up: NodeHook,
    on_down: NodeHook,
    on_drain: NodeHook,
    drained_probe: Option<DrainProbe>,
    blocks: Mutex<Vec<Block>>,
    stop: AtomicBool,
}

/// Provider-backed block manager implementing [`BlockScaling`].
pub struct BlockPool {
    inner: Arc<PoolInner>,
    poll_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Builder for [`BlockPool`].
pub struct BlockPoolBuilder {
    provider: Arc<dyn ExecutionProvider>,
    nodes_per_block: usize,
    workers_per_node: usize,
    min_blocks: usize,
    max_blocks: usize,
    walltime: Option<Duration>,
    poll_interval: Duration,
    on_up: Option<NodeHook>,
    on_down: Option<NodeHook>,
    on_drain: Option<NodeHook>,
    drained_probe: Option<DrainProbe>,
}

impl BlockPool {
    /// Start building a pool over `provider`.
    pub fn builder(provider: impl ExecutionProvider + 'static) -> BlockPoolBuilder {
        BlockPoolBuilder {
            provider: Arc::new(provider),
            nodes_per_block: 1,
            workers_per_node: 1,
            min_blocks: 0,
            max_blocks: usize::MAX,
            walltime: None,
            poll_interval: Duration::from_millis(100),
            on_up: None,
            on_down: None,
            on_drain: None,
            drained_probe: None,
        }
    }

    /// Blocks in `Up` state (provider granted the nodes).
    pub fn blocks_up(&self) -> usize {
        self.inner
            .blocks
            .lock()
            .iter()
            .filter(|b| matches!(b.state, BlockState::Up))
            .count()
    }

    /// Stop polling and cancel all provider jobs.
    pub fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(h) = self.poll_thread.lock().take() {
            let _ = h.join();
        }
        let mut blocks = self.inner.blocks.lock();
        for b in blocks.drain(..) {
            self.inner.provider.cancel(&b.job);
            if matches!(b.state, BlockState::Up) {
                (self.inner.on_down)(self.inner.nodes_per_block);
            }
        }
    }
}

impl BlockPoolBuilder {
    /// Nodes acquired per block (one provider job).
    pub fn nodes_per_block(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.nodes_per_block = n;
        self
    }

    /// Workers each node will contribute (for `workers_per_block`).
    pub fn workers_per_node(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.workers_per_node = n;
        self
    }

    /// Elasticity floor.
    pub fn min_blocks(mut self, n: usize) -> Self {
        self.min_blocks = n;
        self
    }

    /// Elasticity ceiling.
    pub fn max_blocks(mut self, n: usize) -> Self {
        self.max_blocks = n;
        self
    }

    /// Walltime requested for each block job.
    pub fn walltime(mut self, w: Duration) -> Self {
        self.walltime = Some(w);
        self
    }

    /// How often to poll the provider for job-state transitions.
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.poll_interval = d;
        self
    }

    /// Called with the node count when a block's job starts running.
    pub fn on_block_up(mut self, f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.on_up = Some(Box::new(f));
        self
    }

    /// Called with the node count when a block is released or dies.
    pub fn on_block_down(mut self, f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.on_down = Some(Box::new(f));
        self
    }

    /// Called with the node count when a block starts draining
    /// ([`BlockScaling::drain`]): the executor should stop routing to
    /// the block's nodes and retire them gracefully.
    pub fn on_block_drain(mut self, f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.on_drain = Some(Box::new(f));
        self
    }

    /// Probe reporting how many executor-side nodes are still draining
    /// (e.g. the executor's retiring-manager count). Required for
    /// [`BlockScaling::drain`] to defer the provider release; without it
    /// `drain` falls back to the abrupt `scale_in`.
    pub fn drained_probe(mut self, f: impl Fn() -> usize + Send + Sync + 'static) -> Self {
        self.drained_probe = Some(Box::new(f));
        self
    }

    /// Build and start the polling thread.
    pub fn build(self) -> BlockPool {
        let inner = Arc::new(PoolInner {
            provider: self.provider,
            nodes_per_block: self.nodes_per_block,
            workers_per_node: self.workers_per_node,
            min_blocks: self.min_blocks,
            max_blocks: self.max_blocks,
            walltime: self.walltime,
            on_up: self.on_up.unwrap_or_else(|| Box::new(|_| {})),
            on_down: self.on_down.unwrap_or_else(|| Box::new(|_| {})),
            on_drain: self.on_drain.unwrap_or_else(|| Box::new(|_| {})),
            drained_probe: self.drained_probe,
            blocks: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let poll = {
            let inner = Arc::clone(&inner);
            let interval = self.poll_interval;
            std::thread::Builder::new()
                .name("block-pool-poll".into())
                .spawn(move || {
                    while !inner.stop.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        poll_once(&inner);
                    }
                })
                .expect("spawn block pool poll thread")
        };
        BlockPool {
            inner,
            poll_thread: Mutex::new(Some(poll)),
        }
    }
}

/// One provider sweep: promote Requested→Up, reap dead blocks, release
/// draining blocks the executor has finished retiring.
fn poll_once(inner: &PoolInner) {
    let mut blocks = inner.blocks.lock();
    let mut i = 0;
    while i < blocks.len() {
        let status = inner.provider.status(&blocks[i].job);
        match (&blocks[i].state, status) {
            (BlockState::Requested, JobStatus::Running) => {
                blocks[i].state = BlockState::Up;
                (inner.on_up)(inner.nodes_per_block);
                i += 1;
            }
            (BlockState::Requested, JobStatus::Pending) => {
                i += 1;
            }
            (BlockState::Up | BlockState::Draining, JobStatus::Running) => {
                i += 1;
            }
            // Dead while queued, or dead after running (walltime/failure).
            (BlockState::Requested, _) => {
                blocks.remove(i);
            }
            (BlockState::Up, _) => {
                (inner.on_down)(inner.nodes_per_block);
                blocks.remove(i);
            }
            // A draining block's nodes were already surrendered via
            // `on_drain`; no `on_down` when the job dies underneath it.
            (BlockState::Draining, _) => {
                blocks.remove(i);
            }
        }
    }
    // Drain completion: the probe reports how many executor-side nodes
    // are still retiring. Keep that many blocks' worth draining and
    // release the rest (oldest first) — their held work has finished.
    if let Some(probe) = &inner.drained_probe {
        let draining = blocks
            .iter()
            .filter(|b| matches!(b.state, BlockState::Draining))
            .count();
        if draining > 0 {
            let keep = probe().div_ceil(inner.nodes_per_block);
            let mut release = draining.saturating_sub(keep);
            let mut i = 0;
            while release > 0 && i < blocks.len() {
                if matches!(blocks[i].state, BlockState::Draining) {
                    let b = blocks.remove(i);
                    inner.provider.cancel(&b.job);
                    release -= 1;
                } else {
                    i += 1;
                }
            }
        }
    }
}

impl BlockScaling for BlockPool {
    fn block_count(&self) -> usize {
        self.inner.blocks.lock().len()
    }

    fn workers_per_block(&self) -> usize {
        self.inner.nodes_per_block * self.inner.workers_per_node
    }

    fn scale_out(&self, n: usize) -> usize {
        let mut added = 0;
        for _ in 0..n {
            let mut blocks = self.inner.blocks.lock();
            if blocks.len() >= self.inner.max_blocks {
                break;
            }
            match self
                .inner
                .provider
                .submit(self.inner.nodes_per_block, self.inner.walltime)
            {
                Ok(job) => {
                    blocks.push(Block {
                        job,
                        state: BlockState::Requested,
                    });
                    added += 1;
                }
                Err(_) => break, // provider full/refusing; try again next round
            }
        }
        added
    }

    fn scale_in(&self, n: usize) -> usize {
        let mut removed = 0;
        for _ in 0..n {
            let mut blocks = self.inner.blocks.lock();
            if blocks.len() <= self.inner.min_blocks {
                break;
            }
            // Prefer releasing still-queued blocks (free), then the newest
            // running block; never steal a draining block's slot — its
            // nodes were already surrendered.
            let idx = blocks
                .iter()
                .position(|b| matches!(b.state, BlockState::Requested))
                .or_else(|| {
                    blocks
                        .iter()
                        .rposition(|b| matches!(b.state, BlockState::Up))
                });
            let Some(idx) = idx else { break };
            let b = blocks.remove(idx);
            self.inner.provider.cancel(&b.job);
            if matches!(b.state, BlockState::Up) {
                (self.inner.on_down)(self.inner.nodes_per_block);
            }
            removed += 1;
        }
        removed
    }

    fn drain(&self, n: usize) -> usize {
        // Without a completion probe there is nothing to defer against:
        // fall back to the abrupt path.
        if self.inner.drained_probe.is_none() {
            return self.scale_in(n);
        }
        let mut drained = 0;
        for _ in 0..n {
            let hook = {
                let mut blocks = self.inner.blocks.lock();
                let active = blocks
                    .iter()
                    .filter(|b| !matches!(b.state, BlockState::Draining))
                    .count();
                if active <= self.inner.min_blocks {
                    break;
                }
                // Still-queued blocks hold no work: cancel them outright.
                if let Some(idx) = blocks
                    .iter()
                    .position(|b| matches!(b.state, BlockState::Requested))
                {
                    let b = blocks.remove(idx);
                    self.inner.provider.cancel(&b.job);
                    false
                } else {
                    let Some(idx) = blocks
                        .iter()
                        .rposition(|b| matches!(b.state, BlockState::Up))
                    else {
                        break;
                    };
                    blocks[idx].state = BlockState::Draining;
                    true
                }
            };
            if hook {
                // Outside the lock: the hook typically calls back into
                // the executor (retire managers).
                (self.inner.on_drain)(self.inner.nodes_per_block);
            }
            drained += 1;
        }
        drained
    }

    fn draining_blocks(&self) -> usize {
        self.inner
            .blocks
            .lock()
            .iter()
            .filter(|b| matches!(b.state, BlockState::Draining))
            .count()
    }

    fn min_blocks(&self) -> usize {
        self.inner.min_blocks
    }

    fn max_blocks(&self) -> usize {
        self.inner.max_blocks
    }
}

impl Drop for BlockPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalProvider;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn immediate_provider_promotes_on_first_poll() {
        let ups = Arc::new(AtomicUsize::new(0));
        let downs = Arc::new(AtomicUsize::new(0));
        let pool = BlockPool::builder(LocalProvider::new(10))
            .nodes_per_block(2)
            .poll_interval(Duration::from_millis(5))
            .on_block_up({
                let ups = Arc::clone(&ups);
                move |n| {
                    ups.fetch_add(n, Ordering::SeqCst);
                }
            })
            .on_block_down({
                let downs = Arc::clone(&downs);
                move |n| {
                    downs.fetch_add(n, Ordering::SeqCst);
                }
            })
            .build();
        assert_eq!(pool.scale_out(2), 2);
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.blocks_up() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ups.load(Ordering::SeqCst), 4);
        assert_eq!(pool.scale_in(2), 2);
        assert_eq!(downs.load(Ordering::SeqCst), 4);
        pool.shutdown();
    }

    #[test]
    fn min_blocks_floor_respected() {
        let pool = BlockPool::builder(LocalProvider::new(10))
            .min_blocks(1)
            .poll_interval(Duration::from_millis(5))
            .build();
        pool.scale_out(3);
        assert_eq!(pool.scale_in(5), 2, "can only drop to min_blocks");
        assert_eq!(pool.block_count(), 1);
        pool.shutdown();
    }

    #[test]
    fn max_blocks_ceiling_respected() {
        let pool = BlockPool::builder(LocalProvider::new(100))
            .max_blocks(2)
            .poll_interval(Duration::from_millis(5))
            .build();
        assert_eq!(pool.scale_out(5), 2);
        pool.shutdown();
    }

    #[test]
    fn provider_exhaustion_stops_scale_out() {
        let pool = BlockPool::builder(LocalProvider::new(3))
            .nodes_per_block(2)
            .poll_interval(Duration::from_millis(5))
            .build();
        // 3 nodes / 2 per block: only one block fits.
        assert_eq!(pool.scale_out(3), 1);
        pool.shutdown();
    }

    /// Drive the pool until `cond` holds or two seconds pass.
    fn wait_until(cond: impl Fn() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !cond() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// A pool with a simulated executor: `on_drain` surrenders nodes into
    /// a pending-drain gauge the probe reads; the test stands in for the
    /// executor finishing its retirement by decrementing it.
    fn drain_pool(
        pending: &Arc<AtomicUsize>,
        downs: &Arc<AtomicUsize>,
        drains: &Arc<AtomicUsize>,
    ) -> BlockPool {
        BlockPool::builder(LocalProvider::new(10))
            .poll_interval(Duration::from_millis(5))
            .on_block_down({
                let downs = Arc::clone(downs);
                move |n| {
                    downs.fetch_add(n, Ordering::SeqCst);
                }
            })
            .on_block_drain({
                let pending = Arc::clone(pending);
                let drains = Arc::clone(drains);
                move |n| {
                    pending.fetch_add(n, Ordering::SeqCst);
                    drains.fetch_add(n, Ordering::SeqCst);
                }
            })
            .drained_probe({
                let pending = Arc::clone(pending);
                move || pending.load(Ordering::SeqCst)
            })
            .build()
    }

    #[test]
    fn drain_defers_release_until_probe_clears() {
        let pending = Arc::new(AtomicUsize::new(0));
        let downs = Arc::new(AtomicUsize::new(0));
        let drains = Arc::new(AtomicUsize::new(0));
        let pool = drain_pool(&pending, &downs, &drains);
        pool.scale_out(2);
        wait_until(|| pool.blocks_up() == 2);

        assert_eq!(pool.drain(1), 1);
        assert_eq!(drains.load(Ordering::SeqCst), 1, "on_drain fired");
        assert_eq!(pool.draining_blocks(), 1);
        // The job is held while the executor still reports draining nodes.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pool.block_count(), 2, "job held during drain");
        // Executor finishes retiring: the next poll releases the job,
        // without ever firing on_down (the nodes were already gone).
        pending.store(0, Ordering::SeqCst);
        wait_until(|| pool.block_count() == 1);
        assert_eq!(pool.draining_blocks(), 0);
        assert_eq!(
            downs.load(Ordering::SeqCst),
            0,
            "drain must not fire on_down"
        );
        pool.shutdown();
    }

    #[test]
    fn drain_without_probe_falls_back_to_scale_in() {
        let downs = Arc::new(AtomicUsize::new(0));
        let pool = BlockPool::builder(LocalProvider::new(10))
            .poll_interval(Duration::from_millis(5))
            .on_block_down({
                let downs = Arc::clone(&downs);
                move |n| {
                    downs.fetch_add(n, Ordering::SeqCst);
                }
            })
            .build();
        pool.scale_out(2);
        wait_until(|| pool.blocks_up() == 2);
        assert_eq!(pool.drain(1), 1);
        assert_eq!(pool.block_count(), 1, "abrupt fallback releases now");
        assert_eq!(downs.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn scale_in_never_steals_draining_blocks() {
        let pending = Arc::new(AtomicUsize::new(0));
        let downs = Arc::new(AtomicUsize::new(0));
        let drains = Arc::new(AtomicUsize::new(0));
        let pool = drain_pool(&pending, &downs, &drains);
        pool.scale_out(2);
        wait_until(|| pool.blocks_up() == 2);
        assert_eq!(pool.drain(1), 1);
        // Only the one non-draining block is eligible; the draining
        // block's nodes were already surrendered and cannot be "removed"
        // a second time.
        assert_eq!(pool.scale_in(2), 1);
        assert_eq!(pool.draining_blocks(), 1);
        assert_eq!(downs.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn drain_respects_min_blocks_on_active_count() {
        let pending = Arc::new(AtomicUsize::new(0));
        let drains = Arc::new(AtomicUsize::new(0));
        let pool = BlockPool::builder(LocalProvider::new(10))
            .min_blocks(1)
            .poll_interval(Duration::from_millis(5))
            .on_block_drain({
                let pending = Arc::clone(&pending);
                let drains = Arc::clone(&drains);
                move |n| {
                    pending.fetch_add(n, Ordering::SeqCst);
                    drains.fetch_add(n, Ordering::SeqCst);
                }
            })
            .drained_probe({
                let pending = Arc::clone(&pending);
                move || pending.load(Ordering::SeqCst)
            })
            .build();
        pool.scale_out(3);
        wait_until(|| pool.blocks_up() == 3);
        // Draining does not count as active capacity: only two blocks may
        // leave before the floor bites.
        assert_eq!(pool.drain(5), 2);
        assert_eq!(pool.draining_blocks(), 2);
        pool.shutdown();
    }
}
