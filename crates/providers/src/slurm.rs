//! Slurm submission-script rendering.
//!
//! A real Slurm provider's job is mostly assembling an `sbatch` script
//! from config parameters (§4.2: "parameters are generally mapped to LRM
//! submission script ... options"). This renders exactly that script so
//! configurations like the paper's Listing 1 are inspectable and testable,
//! while actual execution goes through the simulated LRM.

use std::time::Duration;

/// An `sbatch` script in structured form.
#[derive(Debug, Clone)]
pub struct SlurmScript {
    /// `#SBATCH --job-name=`
    pub job_name: String,
    /// `#SBATCH --partition=` (e.g. the paper's "skx-normal").
    pub partition: Option<String>,
    /// `#SBATCH --nodes=`
    pub nodes: usize,
    /// `#SBATCH --time=` as HH:MM:SS.
    pub walltime: Option<Duration>,
    /// Extra raw `#SBATCH` lines ("scheduler options").
    pub scheduler_options: Vec<String>,
    /// Environment setup before workers start ("worker initialization
    /// commands (e.g., loading a conda environment)").
    pub worker_init: String,
    /// The (launcher-wrapped) worker command.
    pub command: String,
}

impl SlurmScript {
    /// Render the script text.
    pub fn render(&self) -> String {
        let mut out = String::from("#!/bin/bash\n");
        out.push_str(&format!("#SBATCH --job-name={}\n", self.job_name));
        out.push_str(&format!("#SBATCH --nodes={}\n", self.nodes));
        if let Some(p) = &self.partition {
            out.push_str(&format!("#SBATCH --partition={p}\n"));
        }
        if let Some(w) = self.walltime {
            let secs = w.as_secs();
            out.push_str(&format!(
                "#SBATCH --time={:02}:{:02}:{:02}\n",
                secs / 3600,
                (secs % 3600) / 60,
                secs % 60
            ));
        }
        for opt in &self.scheduler_options {
            out.push_str(opt);
            out.push('\n');
        }
        out.push('\n');
        if !self.worker_init.is_empty() {
            out.push_str(&self.worker_init);
            out.push('\n');
        }
        out.push_str(&self.command);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_script() {
        let s = SlurmScript {
            job_name: "j".into(),
            partition: None,
            nodes: 1,
            walltime: None,
            scheduler_options: vec![],
            worker_init: String::new(),
            command: "worker".into(),
        };
        let text = s.render();
        assert!(text.starts_with("#!/bin/bash\n"));
        assert!(text.contains("--job-name=j"));
        assert!(!text.contains("--partition"));
        assert!(!text.contains("--time"));
        assert!(text.trim_end().ends_with("worker"));
    }

    #[test]
    fn walltime_formats_hhmmss() {
        let s = SlurmScript {
            job_name: "j".into(),
            partition: None,
            nodes: 1,
            walltime: Some(Duration::from_secs(3661)),
            scheduler_options: vec![],
            worker_init: String::new(),
            command: "w".into(),
        };
        assert!(s.render().contains("--time=01:01:01"));
    }
}
