//! Channels (§4.2.1): how submission commands reach the provider.
//!
//! "Parsl includes two primary channels: LocalChannel for execution on a
//! local resource, where the execution node has direct queue access, and
//! SSHChannel, when executing remotely." In the reproduction, channels are
//! command transformers: they render the shell pipeline that would deliver
//! an `sbatch`-style command to its scheduler.

/// Transforms a scheduler command for transport.
pub trait Channel: Send + Sync {
    /// Wrap `command` the way this channel would deliver it.
    fn wrap(&self, command: &str) -> String;

    /// Channel name for logs.
    fn name(&self) -> &str;
}

/// Direct execution: the submitting process has queue access (login node).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalChannel;

impl Channel for LocalChannel {
    fn wrap(&self, command: &str) -> String {
        command.to_string()
    }

    fn name(&self) -> &str {
        "local"
    }
}

/// Remote submission over SSH.
#[derive(Debug, Clone)]
pub struct SshChannel {
    host: String,
    user: String,
}

impl SshChannel {
    /// Channel to `user@host`.
    pub fn new(host: impl Into<String>, user: impl Into<String>) -> Self {
        SshChannel {
            host: host.into(),
            user: user.into(),
        }
    }
}

impl Channel for SshChannel {
    fn wrap(&self, command: &str) -> String {
        // Single-quoted to survive the remote shell, like Parsl's channel.
        format!(
            "ssh {}@{} '{}'",
            self.user,
            self.host,
            command.replace('\'', "'\\''")
        )
    }

    fn name(&self) -> &str {
        "ssh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssh_escapes_quotes() {
        let ch = SshChannel::new("h", "u");
        let wrapped = ch.wrap("echo 'hi'");
        assert!(wrapped.starts_with("ssh u@h '"));
        assert!(wrapped.contains("'\\''hi'\\''"));
    }

    #[test]
    fn names() {
        assert_eq!(LocalChannel.name(), "local");
        assert_eq!(SshChannel::new("h", "u").name(), "ssh");
    }
}
