//! Launchers (§4.2.2): in-job worker fan-out.
//!
//! "The Parsl Launcher abstracts these system-specific launcher systems
//! used to start workers across cores and nodes" — srun on Slurm, aprun on
//! Crays, mpirun for MPI. A launcher turns the single worker command into
//! the line that starts one worker per slot across the job's nodes.

/// Renders the command that fans worker processes out inside a job.
pub trait Launcher: Send + Sync {
    /// Wrap `command` to start `nodes × tasks_per_node` workers.
    fn wrap(&self, command: &str, nodes: usize, tasks_per_node: usize) -> String;

    /// Launcher name for logs.
    fn name(&self) -> &str;
}

/// Run the command once (single-node / fork launcher).
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleLauncher;

impl Launcher for SingleLauncher {
    fn wrap(&self, command: &str, _nodes: usize, _tasks_per_node: usize) -> String {
        command.to_string()
    }

    fn name(&self) -> &str {
        "single"
    }
}

/// Slurm's srun.
#[derive(Debug, Clone, Copy, Default)]
pub struct SrunLauncher;

impl Launcher for SrunLauncher {
    fn wrap(&self, command: &str, nodes: usize, tasks_per_node: usize) -> String {
        format!("srun --nodes={nodes} --ntasks-per-node={tasks_per_node} {command}")
    }

    fn name(&self) -> &str {
        "srun"
    }
}

/// Generic MPI launcher (mpiexec/mpirun/aprun family).
#[derive(Debug, Clone, Copy, Default)]
pub struct MpiExecLauncher;

impl Launcher for MpiExecLauncher {
    fn wrap(&self, command: &str, nodes: usize, tasks_per_node: usize) -> String {
        format!(
            "mpiexec -n {} -ppn {tasks_per_node} {command}",
            nodes * tasks_per_node
        )
    }

    fn name(&self) -> &str {
        "mpiexec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(SingleLauncher.name(), "single");
        assert_eq!(SrunLauncher.name(), "srun");
        assert_eq!(MpiExecLauncher.name(), "mpiexec");
    }

    #[test]
    fn totals_multiply() {
        assert!(MpiExecLauncher.wrap("w", 3, 4).contains("-n 12"));
    }
}
