//! The simulated batch-system provider: Slurm/PBS/Cobalt semantics on a
//! wall clock.
//!
//! Wraps the `simcluster` LRM state machine, driving it with real elapsed
//! time: submissions sit in a FIFO queue for the configured queue delay,
//! jobs wait when the machine is full, and walltimes expire. This is what
//! makes elasticity experiments experience realistic provisioning latency
//! (§4.4: "in an HPC setting, elasticity may be complicated by queue
//! delays").

use crate::provider::{ExecutionProvider, JobHandle, JobStatus, ProviderError};
use parking_lot::Mutex;
use simcluster::{JobState, Lrm, LrmConfig, Machine, SubmitError};
use simnet::SimTime;
use std::time::{Duration, Instant};

/// Batch-system provider over a simulated machine.
pub struct SimProvider {
    name: String,
    lrm: Mutex<Lrm>,
    epoch: Instant,
}

/// Builder for [`SimProvider`].
pub struct SimProviderBuilder {
    name: String,
    nodes: usize,
    queue_delay: Duration,
    queue_jitter: Duration,
    max_nodes_per_job: Option<usize>,
    min_nodes_per_job: Option<usize>,
    max_queued_jobs: Option<usize>,
    seed: u64,
}

impl SimProvider {
    /// Start building (defaults: 16 nodes, no queue delay).
    pub fn builder() -> SimProviderBuilder {
        SimProviderBuilder {
            name: "slurm-sim".into(),
            nodes: 16,
            queue_delay: Duration::ZERO,
            queue_jitter: Duration::ZERO,
            max_nodes_per_job: None,
            min_nodes_per_job: None,
            max_queued_jobs: None,
            seed: 0,
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

impl SimProviderBuilder {
    /// Provider display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Machine size in nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Base scheduler queue delay before a job can start.
    pub fn queue_delay(mut self, d: Duration) -> Self {
        self.queue_delay = d;
        self
    }

    /// Additional uniform random delay in `[0, jitter]`.
    pub fn queue_jitter(mut self, d: Duration) -> Self {
        self.queue_jitter = d;
        self
    }

    /// Scheduler policy: largest job accepted.
    pub fn max_nodes_per_job(mut self, n: usize) -> Self {
        self.max_nodes_per_job = Some(n);
        self
    }

    /// Scheduler policy: smallest job accepted.
    pub fn min_nodes_per_job(mut self, n: usize) -> Self {
        self.min_nodes_per_job = Some(n);
        self
    }

    /// Scheduler policy: queued-job cap.
    pub fn max_queued_jobs(mut self, n: usize) -> Self {
        self.max_queued_jobs = Some(n);
        self
    }

    /// Seed for queue jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the provider.
    pub fn build(self) -> SimProvider {
        let machine = Machine {
            name: self.name.clone(),
            nodes: self.nodes,
            cores_per_node: 1,
            workers_per_node: 1,
            rtt: SimTime::from_micros(70),
        };
        let cfg = LrmConfig {
            queue_delay: SimTime::from_nanos(self.queue_delay.as_nanos() as u64),
            queue_jitter: SimTime::from_nanos(self.queue_jitter.as_nanos() as u64),
            min_nodes_per_job: self.min_nodes_per_job,
            max_nodes_per_job: self.max_nodes_per_job,
            max_queued_jobs: self.max_queued_jobs,
        };
        SimProvider {
            name: self.name,
            lrm: Mutex::new(Lrm::new(machine, cfg, self.seed)),
            epoch: Instant::now(),
        }
    }
}

impl ExecutionProvider for SimProvider {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, nodes: usize, walltime: Option<Duration>) -> Result<JobHandle, ProviderError> {
        let now = self.now();
        let wt = walltime.map(|w| SimTime::from_nanos(w.as_nanos() as u64));
        match self.lrm.lock().submit(now, nodes, wt) {
            Ok(id) => Ok(JobHandle(id.0)),
            Err(e @ SubmitError::QueueFull { .. }) => Err(ProviderError::Busy(e.to_string())),
            Err(e) => Err(ProviderError::Rejected(e.to_string())),
        }
    }

    fn status(&self, job: &JobHandle) -> JobStatus {
        let now = self.now();
        let mut lrm = self.lrm.lock();
        lrm.advance(now);
        match lrm.status(simcluster::JobId(job.0)) {
            None => JobStatus::Unknown,
            Some(JobState::Pending) => JobStatus::Pending,
            Some(JobState::Running { .. }) => JobStatus::Running,
            Some(JobState::Completed) => JobStatus::Completed,
            Some(JobState::Cancelled) => JobStatus::Cancelled,
            Some(JobState::Failed) => JobStatus::Failed,
        }
    }

    fn cancel(&self, job: &JobHandle) -> bool {
        let now = self.now();
        self.lrm.lock().cancel(now, simcluster::JobId(job.0))
    }

    fn free_nodes(&self) -> usize {
        let now = self.now();
        let mut lrm = self.lrm.lock();
        lrm.advance(now);
        lrm.free_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_policies_propagate() {
        let p = SimProvider::builder()
            .nodes(8)
            .min_nodes_per_job(2)
            .max_nodes_per_job(4)
            .build();
        assert!(p.submit(1, None).is_err());
        assert!(p.submit(5, None).is_err());
        assert!(p.submit(3, None).is_ok());
    }

    #[test]
    fn queue_full_is_busy_not_rejected() {
        let p = SimProvider::builder().nodes(1).max_queued_jobs(1).build();
        let _running = p.submit(1, None).unwrap();
        let _queued = p.submit(1, None).unwrap();
        match p.submit(1, None) {
            Err(ProviderError::Busy(_)) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
    }
}
