//! Binding an executor to a provider-backed block pool.

use crate::block::BlockPool;
use parsl_core::executor::{BlockScaling, Executor, ExecutorContext, ExecutorError, TaskSpec};
use std::sync::Arc;

/// An executor whose scaling goes through a provider.
///
/// Delegates task execution to the wrapped executor but answers
/// [`Executor::scaling`] with the [`BlockPool`], so the DataFlowKernel's
/// strategy engine provisions through the provider (queue delays and all)
/// instead of the executor's instant in-process scaling. This is the
/// configuration the elasticity experiment (Figure 6) runs.
pub struct ProvidedExecutor<E: Executor> {
    inner: Arc<E>,
    pool: BlockPool,
}

impl<E: Executor> ProvidedExecutor<E> {
    /// Wrap `inner`; `pool`'s hooks should add/remove the executor's nodes.
    pub fn new(inner: Arc<E>, pool: BlockPool) -> Self {
        ProvidedExecutor { inner, pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &Arc<E> {
        &self.inner
    }
}

impl<E: Executor> Executor for ProvidedExecutor<E> {
    fn label(&self) -> &str {
        self.inner.label()
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        self.inner.start(ctx)
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        self.inner.submit(task)
    }

    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        self.inner.submit_batch(tasks)
    }

    fn cancel(&self, id: parsl_core::types::TaskId, attempt: u32) {
        self.inner.cancel(id, attempt);
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn connected_workers(&self) -> usize {
        self.inner.connected_workers()
    }

    fn shutdown(&self) {
        self.pool.shutdown();
        self.inner.shutdown();
    }

    fn scaling(&self) -> Option<&dyn BlockScaling> {
        Some(&self.pool)
    }
}
