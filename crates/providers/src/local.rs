//! The local (fork) provider: immediate node grants on this machine.

use crate::provider::{ExecutionProvider, JobHandle, JobStatus, ProviderError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Parsl's local provider: "for local execution (fork)". Grants are
/// immediate; "nodes" are purely an accounting unit for worker groups on
/// this machine.
pub struct LocalProvider {
    total: usize,
    state: Mutex<State>,
}

struct State {
    free: usize,
    jobs: HashMap<u64, (usize, JobStatus)>,
    next: u64,
}

impl LocalProvider {
    /// Provider with `nodes` grantable units.
    pub fn new(nodes: usize) -> Self {
        LocalProvider {
            total: nodes,
            state: Mutex::new(State {
                free: nodes,
                jobs: HashMap::new(),
                next: 0,
            }),
        }
    }
}

impl ExecutionProvider for LocalProvider {
    fn name(&self) -> &str {
        "local"
    }

    fn submit(
        &self,
        nodes: usize,
        _walltime: Option<Duration>,
    ) -> Result<JobHandle, ProviderError> {
        let mut st = self.state.lock();
        if nodes > self.total {
            return Err(ProviderError::Rejected(format!(
                "{nodes} nodes requested, machine has {}",
                self.total
            )));
        }
        if nodes > st.free {
            return Err(ProviderError::Busy(format!(
                "{nodes} nodes requested, {} free",
                st.free
            )));
        }
        st.free -= nodes;
        let id = st.next;
        st.next += 1;
        st.jobs.insert(id, (nodes, JobStatus::Running));
        Ok(JobHandle(id))
    }

    fn status(&self, job: &JobHandle) -> JobStatus {
        self.state
            .lock()
            .jobs
            .get(&job.0)
            .map(|(_, s)| *s)
            .unwrap_or(JobStatus::Unknown)
    }

    fn cancel(&self, job: &JobHandle) -> bool {
        let mut st = self.state.lock();
        match st.jobs.get_mut(&job.0) {
            Some((nodes, status @ JobStatus::Running)) => {
                let n = *nodes;
                *status = JobStatus::Cancelled;
                st.free += n;
                true
            }
            _ => false,
        }
    }

    fn free_nodes(&self) -> usize {
        self.state.lock().free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_vs_rejected() {
        let p = LocalProvider::new(4);
        let _a = p.submit(3, None).unwrap();
        assert!(matches!(p.submit(2, None), Err(ProviderError::Busy(_))));
        assert!(matches!(p.submit(5, None), Err(ProviderError::Rejected(_))));
    }

    #[test]
    fn unknown_handle() {
        let p = LocalProvider::new(1);
        assert_eq!(p.status(&JobHandle(99)), JobStatus::Unknown);
        assert!(!p.cancel(&JobHandle(99)));
    }

    #[test]
    fn double_cancel_is_false() {
        let p = LocalProvider::new(2);
        let j = p.submit(1, None).unwrap();
        assert!(p.cancel(&j));
        assert!(!p.cancel(&j));
    }
}
