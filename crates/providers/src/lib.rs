//! `parsl-providers` — the provider abstraction (§4.2).
//!
//! "Clouds, supercomputers, and local PCs offer vastly different modes of
//! access. To overcome these differences, and present a single uniform
//! interface, Parsl implements a simple provider abstraction ... based on
//! three core actions: submit a job for execution, retrieve the status of
//! an allocation, and cancel a running job."
//!
//! This crate provides:
//!
//! - [`ExecutionProvider`]: the three-action trait;
//! - [`LocalProvider`]: "fork on this machine" — jobs start immediately;
//! - [`SimProvider`]: jobs go through the `simcluster` LRM (queue delays,
//!   capacity limits, walltimes) driven by wall-clock time — the paper's
//!   Slurm/PBS/Cobalt stand-in;
//! - [`SlurmScript`]: renders the `#SBATCH` submission script a real Slurm
//!   provider would generate, so configs are inspectable (§4.2's
//!   parameter-to-script mapping);
//! - [`Channel`]s ([`LocalChannel`], [`SshChannel`]) that transform
//!   submission commands the way Parsl channels do;
//! - [`Launcher`]s (single, srun-like, mpiexec-like) that wrap the worker
//!   command for in-job fan-out (§4.2.2);
//! - [`BlockPool`]: glue binding a provider to an executor's node
//!   management, giving the DataFlowKernel's strategy engine real
//!   provisioning delays (blocks, §4.2.3).

mod block;
mod channel;
mod launcher;
mod local;
mod provider;
mod sim;
mod slurm;
mod wrapper;

pub use block::BlockPool;
pub use channel::{Channel, LocalChannel, SshChannel};
pub use launcher::{Launcher, MpiExecLauncher, SingleLauncher, SrunLauncher};
pub use local::LocalProvider;
pub use provider::{ExecutionProvider, JobHandle, JobStatus, ProviderError};
pub use sim::SimProvider;
pub use slurm::SlurmScript;
pub use wrapper::ProvidedExecutor;

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;
    use std::time::Duration;

    #[test]
    fn local_provider_starts_immediately() {
        let p = LocalProvider::new(8);
        let job = p.submit(2, None).unwrap();
        assert_eq!(p.status(&job), JobStatus::Running);
        assert_eq!(p.free_nodes(), 6);
        p.cancel(&job);
        assert_eq!(p.status(&job), JobStatus::Cancelled);
        assert_eq!(p.free_nodes(), 8);
    }

    #[test]
    fn local_provider_rejects_oversized() {
        let p = LocalProvider::new(2);
        assert!(p.submit(3, None).is_err());
    }

    #[test]
    fn sim_provider_queues_then_runs() {
        let p = SimProvider::builder()
            .nodes(4)
            .queue_delay(Duration::from_millis(80))
            .build();
        let job = p.submit(2, None).unwrap();
        assert_eq!(p.status(&job), JobStatus::Pending);
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(p.status(&job), JobStatus::Running);
        p.cancel(&job);
        assert_eq!(p.status(&job), JobStatus::Cancelled);
    }

    #[test]
    fn sim_provider_respects_capacity() {
        let p = SimProvider::builder().nodes(2).build();
        let a = p.submit(2, None).unwrap();
        let b = p.submit(1, None).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(p.status(&a), JobStatus::Running);
        assert_eq!(p.status(&b), JobStatus::Pending);
        p.cancel(&a);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(p.status(&b), JobStatus::Running);
    }

    #[test]
    fn sim_provider_walltime_completes_job() {
        let p = SimProvider::builder().nodes(1).build();
        let job = p.submit(1, Some(Duration::from_millis(60))).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.status(&job), JobStatus::Running);
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(p.status(&job), JobStatus::Completed);
    }

    #[test]
    fn slurm_script_renders_paper_listing() {
        // Listing 1 of the paper: 128 nodes, skx-normal, 12:00:00.
        let script = SlurmScript {
            job_name: "parsl.block-0".into(),
            partition: Some("skx-normal".into()),
            nodes: 128,
            walltime: Some(Duration::from_secs(12 * 3600)),
            scheduler_options: vec!["#SBATCH --exclusive".into()],
            worker_init: "module load conda".into(),
            command: "process_worker_pool --block 0".into(),
        };
        let text = script.render();
        assert!(text.contains("#SBATCH --nodes=128"));
        assert!(text.contains("#SBATCH --partition=skx-normal"));
        assert!(text.contains("#SBATCH --time=12:00:00"));
        assert!(text.contains("#SBATCH --exclusive"));
        assert!(text.contains("module load conda"));
        assert!(text.contains("process_worker_pool"));
    }

    #[test]
    fn channels_transform_commands() {
        let local = LocalChannel;
        assert_eq!(local.wrap("sbatch job.sh"), "sbatch job.sh");
        let ssh = SshChannel::new("login1.cluster.edu", "user");
        let wrapped = ssh.wrap("sbatch job.sh");
        assert!(wrapped.contains("ssh"));
        assert!(wrapped.contains("user@login1.cluster.edu"));
        assert!(wrapped.contains("sbatch job.sh"));
    }

    #[test]
    fn launchers_fan_out() {
        let single = SingleLauncher;
        assert_eq!(single.wrap("worker", 4, 2), "worker");
        let srun = SrunLauncher;
        let cmd = srun.wrap("worker", 4, 2);
        assert!(cmd.contains("srun"));
        assert!(cmd.contains("--nodes=4"));
        assert!(cmd.contains("--ntasks-per-node=2"));
        let mpi = MpiExecLauncher;
        let cmd = mpi.wrap("worker", 4, 2);
        assert!(cmd.contains("mpiexec"));
        assert!(cmd.contains("-n 8"));
    }

    #[test]
    fn block_pool_provisions_through_queue_delay() {
        use parsl_core::executor::BlockScaling;
        use parsl_executors::{HtexConfig, HtexExecutor};
        use std::sync::Arc;

        let htex = Arc::new(HtexExecutor::new(HtexConfig {
            label: "pool-test".into(),
            workers_per_node: 1,
            init_blocks: 0,
            ..Default::default()
        }));
        let dfk = parsl_core::DataFlowKernel::builder()
            .executor_arc(htex.clone())
            .build()
            .unwrap();
        let _ = &dfk;

        let provider = SimProvider::builder()
            .nodes(10)
            .queue_delay(Duration::from_millis(50))
            .build();
        let pool = BlockPool::builder(provider)
            .nodes_per_block(2)
            .min_blocks(0)
            .max_blocks(3)
            .poll_interval(Duration::from_millis(10))
            .on_block_up({
                let htex = Arc::clone(&htex);
                move |nodes| {
                    for _ in 0..nodes {
                        htex.add_node();
                    }
                }
            })
            .on_block_down({
                let htex = Arc::clone(&htex);
                move |nodes| {
                    for _ in 0..nodes {
                        htex.remove_node();
                    }
                }
            })
            .build();

        assert_eq!(pool.block_count(), 0);
        assert_eq!(pool.scale_out(2), 2);
        assert_eq!(
            pool.block_count(),
            2,
            "blocks count as provisioned while queued"
        );
        // Nodes appear only after the queue delay.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while htex.nodes().len() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(htex.nodes().len(), 4);
        // Scale in releases jobs and tears down nodes.
        assert_eq!(pool.scale_in(1), 1);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while htex.nodes().len() > 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(htex.nodes().len(), 2);
        pool.shutdown();
        dfk.shutdown();
        let _ = SimTime::ZERO; // keep simnet linked for the doc examples
    }
}
