//! Rank handles, point-to-point matching, and collectives.

use crate::error::MpiError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Message tag, used for receive matching like MPI tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

/// Wildcard source for [`Rank::recv`]: match a message from any rank.
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag for [`Rank::recv`]: match a message with any tag.
pub const ANY_TAG: Option<Tag> = None;

/// A received point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub from: usize,
    /// Message tag.
    pub tag: Tag,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Items travelling on rank inboxes: user messages, collective-protocol
/// control messages, and the abort broadcast.
enum Item {
    Msg(Message),
    Ctl(Ctl),
    Abort,
}

enum Ctl {
    BarrierEnter,
    BarrierRelease,
    Bcast { from: usize, data: Vec<u8> },
    Gather { from: usize, data: Vec<u8> },
}

struct Shared {
    aborted: AtomicBool,
    txs: Vec<Sender<Item>>,
}

impl Shared {
    fn abort(&self) {
        if !self.aborted.swap(true, Ordering::SeqCst) {
            for tx in &self.txs {
                let _ = tx.send(Item::Abort);
            }
        }
    }
}

/// Factory for communicators.
pub struct World;

impl World {
    /// Create an `n`-rank communicator and return the rank handles in rank
    /// order, ready to be moved onto threads.
    pub fn create(n: usize) -> Vec<Rank> {
        assert!(n > 0, "communicator needs at least one rank");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            aborted: AtomicBool::new(false),
            txs,
        });
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| Rank {
                rank,
                size: n,
                rx,
                shared: Arc::clone(&shared),
                pending_msgs: RefCell::new(Vec::new()),
                pending_ctl: RefCell::new(Vec::new()),
                finalized: Cell::new(false),
            })
            .collect()
    }
}

/// One rank's handle onto the communicator.
///
/// A rank handle is single-threaded (move it onto its thread); dropping it
/// without calling [`Rank::finalize`] aborts the entire communicator, the
/// way a crashed MPI process takes down the whole application.
pub struct Rank {
    rank: usize,
    size: usize,
    rx: Receiver<Item>,
    shared: Arc<Shared>,
    /// User messages received while waiting for something else.
    pending_msgs: RefCell<Vec<Message>>,
    /// Control messages received while waiting for user messages.
    pending_ctl: RefCell<Vec<Ctl>>,
    finalized: Cell<bool>,
}

impl Rank {
    /// This rank's index, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True once the communicator is aborted.
    pub fn is_aborted(&self) -> bool {
        self.shared.aborted.load(Ordering::SeqCst)
    }

    fn check_alive(&self) -> Result<(), MpiError> {
        if self.is_aborted() {
            Err(MpiError::Aborted)
        } else {
            Ok(())
        }
    }

    /// Send `payload` to rank `to` with `tag`.
    pub fn send(&self, to: usize, tag: Tag, payload: Vec<u8>) -> Result<(), MpiError> {
        self.check_alive()?;
        let tx = self.shared.txs.get(to).ok_or(MpiError::InvalidRank(to))?;
        tx.send(Item::Msg(Message {
            from: self.rank,
            tag,
            payload,
        }))
        .map_err(|_| MpiError::Aborted)
    }

    /// Block until a message matching `source`/`tag` arrives.
    ///
    /// `None` acts as a wildcard ([`ANY_SOURCE`] / [`ANY_TAG`]).
    pub fn recv(&self, source: Option<usize>, tag: Option<Tag>) -> Result<Message, MpiError> {
        self.recv_inner(source, tag, None)
    }

    /// [`Rank::recv`] with a deadline.
    pub fn recv_timeout(
        &self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Message, MpiError> {
        self.recv_inner(source, tag, Some(timeout))
    }

    fn recv_inner(
        &self,
        source: Option<usize>,
        tag: Option<Tag>,
        timeout: Option<Duration>,
    ) -> Result<Message, MpiError> {
        self.check_alive()?;
        let matches =
            |m: &Message| source.is_none_or(|s| s == m.from) && tag.is_none_or(|t| t == m.tag);
        // Check messages buffered by earlier non-matching receives first.
        {
            let mut pending = self.pending_msgs.borrow_mut();
            if let Some(i) = pending.iter().position(&matches) {
                return Ok(pending.remove(i));
            }
        }
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            let item = match deadline {
                None => self.rx.recv().map_err(|_| MpiError::Aborted)?,
                Some(d) => {
                    let left = d.saturating_duration_since(std::time::Instant::now());
                    match self.rx.recv_timeout(left) {
                        Ok(i) => i,
                        Err(RecvTimeoutError::Timeout) => return Err(MpiError::Timeout),
                        Err(RecvTimeoutError::Disconnected) => return Err(MpiError::Aborted),
                    }
                }
            };
            match item {
                Item::Abort => {
                    self.shared.aborted.store(true, Ordering::SeqCst);
                    return Err(MpiError::Aborted);
                }
                Item::Ctl(c) => self.pending_ctl.borrow_mut().push(c),
                Item::Msg(m) if matches(&m) => return Ok(m),
                Item::Msg(m) => self.pending_msgs.borrow_mut().push(m),
            }
        }
    }

    /// Pull the next control message matching `pred`, buffering everything
    /// else, used by the collectives below.
    fn recv_ctl(&self, pred: impl Fn(&Ctl) -> bool) -> Result<Ctl, MpiError> {
        self.check_alive()?;
        {
            let mut pending = self.pending_ctl.borrow_mut();
            if let Some(i) = pending.iter().position(&pred) {
                return Ok(pending.remove(i));
            }
        }
        loop {
            match self.rx.recv().map_err(|_| MpiError::Aborted)? {
                Item::Abort => {
                    self.shared.aborted.store(true, Ordering::SeqCst);
                    return Err(MpiError::Aborted);
                }
                Item::Msg(m) => self.pending_msgs.borrow_mut().push(m),
                Item::Ctl(c) if pred(&c) => return Ok(c),
                Item::Ctl(c) => self.pending_ctl.borrow_mut().push(c),
            }
        }
    }

    fn send_ctl(&self, to: usize, ctl: Ctl) -> Result<(), MpiError> {
        let tx = self.shared.txs.get(to).ok_or(MpiError::InvalidRank(to))?;
        tx.send(Item::Ctl(ctl)).map_err(|_| MpiError::Aborted)
    }

    /// Synchronize all ranks: nobody returns until everyone has entered.
    ///
    /// Centralized protocol: rank 0 collects enter notices and broadcasts
    /// the release, which is fine at EXEX pool sizes (ranks-per-pool is
    /// deliberately kept modest, §4.3.2).
    pub fn barrier(&self) -> Result<(), MpiError> {
        if self.size == 1 {
            return self.check_alive();
        }
        if self.rank == 0 {
            let mut entered = 1; // self
            while entered < self.size {
                self.recv_ctl(|c| matches!(c, Ctl::BarrierEnter))?;
                entered += 1;
            }
            for r in 1..self.size {
                self.send_ctl(r, Ctl::BarrierRelease)?;
            }
            Ok(())
        } else {
            self.send_ctl(0, Ctl::BarrierEnter)?;
            self.recv_ctl(|c| matches!(c, Ctl::BarrierRelease))?;
            Ok(())
        }
    }

    /// Broadcast `data` from `root` to every rank; all ranks return the
    /// root's data (non-root callers pass anything, typically empty).
    pub fn bcast(&self, root: usize, data: Vec<u8>) -> Result<Vec<u8>, MpiError> {
        if root >= self.size {
            return Err(MpiError::InvalidRank(root));
        }
        self.check_alive()?;
        if self.rank == root {
            for r in 0..self.size {
                if r != root {
                    self.send_ctl(
                        r,
                        Ctl::Bcast {
                            from: root,
                            data: data.clone(),
                        },
                    )?;
                }
            }
            Ok(data)
        } else {
            match self.recv_ctl(|c| matches!(c, Ctl::Bcast { from, .. } if *from == root))? {
                Ctl::Bcast { data, .. } => Ok(data),
                _ => unreachable!("predicate admits only Bcast"),
            }
        }
    }

    /// Gather each rank's `data` at `root`, ordered by rank index.
    ///
    /// Returns `Some(all)` at the root, `None` elsewhere.
    pub fn gather(&self, root: usize, data: Vec<u8>) -> Result<Option<Vec<Vec<u8>>>, MpiError> {
        if root >= self.size {
            return Err(MpiError::InvalidRank(root));
        }
        self.check_alive()?;
        if self.rank == root {
            let mut slots: Vec<Option<Vec<u8>>> = vec![None; self.size];
            slots[root] = Some(data);
            let mut remaining = self.size - 1;
            while remaining > 0 {
                match self.recv_ctl(|c| matches!(c, Ctl::Gather { .. }))? {
                    Ctl::Gather { from, data } => {
                        debug_assert!(slots[from].is_none(), "duplicate gather from {from}");
                        slots[from] = Some(data);
                        remaining -= 1;
                    }
                    _ => unreachable!("predicate admits only Gather"),
                }
            }
            Ok(Some(
                slots
                    .into_iter()
                    .map(|s| s.expect("all ranks gathered"))
                    .collect(),
            ))
        } else {
            self.send_ctl(
                root,
                Ctl::Gather {
                    from: self.rank,
                    data,
                },
            )?;
            Ok(None)
        }
    }

    /// Mark clean shutdown for this rank. After finalize, dropping the
    /// handle does not abort the communicator.
    pub fn finalize(self) {
        self.finalized.set(true);
        // Drop runs next and sees the flag.
    }

    /// Abort the communicator: every rank's pending and future operations
    /// fail with [`MpiError::Aborted`].
    pub fn abort(&self) {
        self.shared.abort();
    }
}

impl Drop for Rank {
    fn drop(&mut self) {
        if !self.finalized.get() && !self.is_aborted() {
            // A rank vanished without finalizing — the whole "MPI job" dies.
            self.shared.abort();
        }
    }
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("aborted", &self.is_aborted())
            .finish()
    }
}
