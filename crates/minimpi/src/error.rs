//! Communicator errors.

use std::fmt;

/// Errors surfaced by `minimpi` operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// The communicator was aborted — by an explicit [`crate::Rank::abort`]
    /// or by a rank dropped without finalizing (a "crashed process").
    /// Every subsequent operation on every rank fails with this error:
    /// MPI-style fate sharing.
    Aborted,
    /// Destination or root rank out of range.
    InvalidRank(usize),
    /// A timed receive elapsed with no matching message.
    Timeout,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Aborted => write!(f, "communicator aborted"),
            MpiError::InvalidRank(r) => write!(f, "rank {r} out of range"),
            MpiError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for MpiError {}
