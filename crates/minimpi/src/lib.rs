//! `minimpi` — a rank-based communicator, the repo's MPI substitute.
//!
//! Parsl's Extreme Scale Executor (EXEX, §4.3.2) uses mpi4py: a batch job
//! starts N ranks, rank 0 becomes the manager and the remaining ranks become
//! workers. This crate reproduces the slice of MPI that EXEX needs:
//!
//! - [`World::create`] builds an N-rank communicator whose [`Rank`] handles
//!   are moved onto threads (our stand-in for MPI processes).
//! - Point-to-point [`Rank::send`] / [`Rank::recv`] with source and tag
//!   matching (including wildcard receives, used by the EXEX manager loop).
//! - Collectives: [`Rank::barrier`], [`Rank::bcast`], [`Rank::gather`].
//! - **Fate sharing**: [`Rank::abort`] poisons the whole communicator, and a
//!   rank handle dropped before [`Rank::finalize`] does the same. This
//!   models the paper's observation that "job and node failures can result
//!   in the loss of the entire MPI application" — the EXEX fault-tolerance
//!   drawback that motivates splitting allocations into several worker
//!   pools.
//!
//! # Example
//!
//! ```
//! use minimpi::{World, Tag};
//!
//! let ranks = minimpi::World::create(2);
//! let mut handles = Vec::new();
//! for rank in ranks {
//!     handles.push(std::thread::spawn(move || {
//!         if rank.rank() == 0 {
//!             rank.send(1, Tag(7), b"ping".to_vec()).unwrap();
//!             let m = rank.recv(Some(1), Some(Tag(8))).unwrap();
//!             assert_eq!(m.payload, b"pong");
//!         } else {
//!             let m = rank.recv(Some(0), Some(Tag(7))).unwrap();
//!             assert_eq!(m.payload, b"ping");
//!             rank.send(0, Tag(8), b"pong".to_vec()).unwrap();
//!         }
//!         rank.finalize();
//!     }));
//! }
//! for h in handles { h.join().unwrap(); }
//! ```

mod comm;
mod error;

pub use comm::{Message, Rank, Tag, World, ANY_SOURCE, ANY_TAG};
pub use error::MpiError;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn run_world<F>(n: usize, f: F)
    where
        F: Fn(Rank) + Send + Sync + Copy + 'static,
    {
        let ranks = World::create(n);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|r| std::thread::spawn(move || f(r)))
            .collect();
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    }

    #[test]
    fn world_assigns_sequential_ranks() {
        let ranks = World::create(4);
        let ids: Vec<usize> = ranks.iter().map(|r| r.rank()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(ranks.iter().all(|r| r.size() == 4));
        for r in ranks {
            r.finalize();
        }
    }

    #[test]
    fn ring_pass() {
        run_world(4, |rank| {
            let me = rank.rank();
            let n = rank.size();
            if me == 0 {
                rank.send(1, Tag(0), vec![1]).unwrap();
                let m = rank.recv(Some(n - 1), Some(Tag(0))).unwrap();
                assert_eq!(m.payload, vec![n as u8]);
            } else {
                let m = rank.recv(Some(me - 1), Some(Tag(0))).unwrap();
                let mut v = m.payload;
                v[0] += 1;
                rank.send((me + 1) % n, Tag(0), v).unwrap();
            }
            rank.finalize();
        });
    }

    #[test]
    fn wildcard_receive_any_source() {
        run_world(3, |rank| {
            if rank.rank() == 0 {
                let mut seen = [false; 3];
                for _ in 0..2 {
                    let m = rank.recv(ANY_SOURCE, Some(Tag(5))).unwrap();
                    seen[m.from] = true;
                }
                assert!(seen[1] && seen[2]);
            } else {
                rank.send(0, Tag(5), vec![rank.rank() as u8]).unwrap();
            }
            rank.finalize();
        });
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        run_world(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, Tag(1), b"first".to_vec()).unwrap();
                rank.send(1, Tag(2), b"second".to_vec()).unwrap();
            } else {
                // Receive in reverse tag order; the unmatched message must
                // be buffered, not lost.
                let m2 = rank.recv(Some(0), Some(Tag(2))).unwrap();
                assert_eq!(m2.payload, b"second");
                let m1 = rank.recv(Some(0), Some(Tag(1))).unwrap();
                assert_eq!(m1.payload, b"first");
            }
            rank.finalize();
        });
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        static ARRIVED: AtomicUsize = AtomicUsize::new(0);
        ARRIVED.store(0, Ordering::SeqCst);
        let ranks = World::create(4);
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                let arrived: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
                let _ = arrived;
                std::thread::spawn(move || {
                    if rank.rank() == 2 {
                        std::thread::sleep(Duration::from_millis(30));
                    }
                    ARRIVED.fetch_add(1, Ordering::SeqCst);
                    rank.barrier().unwrap();
                    // After the barrier everyone must have arrived.
                    assert_eq!(ARRIVED.load(Ordering::SeqCst), 4);
                    rank.finalize();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn bcast_from_root() {
        run_world(3, |rank| {
            let data = if rank.rank() == 0 {
                b"model".to_vec()
            } else {
                Vec::new()
            };
            let got = rank.bcast(0, data).unwrap();
            assert_eq!(got, b"model");
            rank.finalize();
        });
    }

    #[test]
    fn gather_to_root() {
        run_world(3, |rank| {
            let mine = vec![rank.rank() as u8 * 10];
            let all = rank.gather(0, mine).unwrap();
            if rank.rank() == 0 {
                let all = all.expect("root receives");
                assert_eq!(all, vec![vec![0], vec![10], vec![20]]);
            } else {
                assert!(all.is_none());
            }
            rank.finalize();
        });
    }

    #[test]
    fn abort_poisons_every_rank() {
        let ranks = World::create(3);
        let mut iter = ranks.into_iter();
        let r0 = iter.next().unwrap();
        let r1 = iter.next().unwrap();
        let r2 = iter.next().unwrap();
        let h = std::thread::spawn(move || {
            // r1 blocks in recv, then gets woken by the abort.
            let err = r1.recv(Some(0), None).unwrap_err();
            assert!(matches!(err, MpiError::Aborted));
        });
        std::thread::sleep(Duration::from_millis(20));
        r2.abort();
        h.join().unwrap();
        assert!(matches!(r0.send(2, Tag(0), vec![]), Err(MpiError::Aborted)));
        r0.finalize();
        r2.finalize();
    }

    #[test]
    fn dropping_rank_without_finalize_aborts_world() {
        let ranks = World::create(2);
        let mut iter = ranks.into_iter();
        let r0 = iter.next().unwrap();
        let r1 = iter.next().unwrap();
        drop(r1); // simulates a crashed MPI process
        assert!(matches!(r0.send(1, Tag(0), vec![]), Err(MpiError::Aborted)));
        r0.finalize();
    }

    #[test]
    fn send_to_invalid_rank_is_error() {
        let ranks = World::create(1);
        let r0 = ranks.into_iter().next().unwrap();
        assert!(matches!(
            r0.send(5, Tag(0), vec![]),
            Err(MpiError::InvalidRank(5))
        ));
        r0.finalize();
    }
}
