//! `simcluster` — testbed machines and a batch-scheduler (LRM) simulator.
//!
//! The paper evaluates on two real systems (§5): the **Midway** campus
//! cluster (28-core Intel nodes, 0.07 ms RTT) and the **Blue Waters** Cray
//! (XE nodes with 32 integer scheduling units used one-per-worker, 0.04 ms
//! RTT). Neither is available here, so this crate provides:
//!
//! - [`Machine`] descriptions with [`machines::midway`] and
//!   [`machines::blue_waters`] presets carrying the paper's published node
//!   counts, cores, and measured RTTs;
//! - [`Lrm`], a Local Resource Manager simulation with the three provider
//!   actions Parsl needs (submit / status / cancel, §4.2), FIFO scheduling,
//!   configurable queue delay, walltime enforcement, block-size policies,
//!   and failure injection. It is *time-domain agnostic*: callers drive it
//!   with explicit clocks, so the same implementation serves the real
//!   thread-based providers (wall-clock nanoseconds) and the
//!   discrete-event experiments (virtual time);
//! - [`calib`], the cost constants that parameterize every executor and
//!   baseline model, with their provenance documented next to each number.

pub mod calib;
mod lrm;
mod machine;

pub use lrm::{JobId, JobState, Lrm, LrmConfig, SubmitError};
pub use machine::{machines, Machine};

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    fn small_machine() -> Machine {
        Machine {
            name: "test".into(),
            nodes: 4,
            cores_per_node: 2,
            workers_per_node: 2,
            rtt: SimTime::from_micros(50),
        }
    }

    fn lrm(qdelay_ms: u64) -> Lrm {
        Lrm::new(
            small_machine(),
            LrmConfig {
                queue_delay: SimTime::from_millis(qdelay_ms),
                ..Default::default()
            },
            0,
        )
    }

    #[test]
    fn submit_starts_after_queue_delay() {
        let mut lrm = lrm(100);
        let id = lrm.submit(SimTime::ZERO, 2, None).unwrap();
        assert_eq!(lrm.status(id), Some(JobState::Pending));
        lrm.advance(SimTime::from_millis(50));
        assert_eq!(lrm.status(id), Some(JobState::Pending));
        lrm.advance(SimTime::from_millis(100));
        assert!(matches!(lrm.status(id), Some(JobState::Running { .. })));
        assert_eq!(lrm.free_nodes(), 2);
    }

    #[test]
    fn fifo_queue_blocks_when_capacity_exhausted() {
        let mut lrm = lrm(0);
        let a = lrm.submit(SimTime::ZERO, 3, None).unwrap();
        let b = lrm.submit(SimTime::ZERO, 3, None).unwrap();
        lrm.advance(SimTime::ZERO);
        assert!(matches!(lrm.status(a), Some(JobState::Running { .. })));
        assert_eq!(lrm.status(b), Some(JobState::Pending));
        // Freeing A lets B start.
        lrm.cancel(SimTime::from_secs(1), a);
        lrm.advance(SimTime::from_secs(1));
        assert!(matches!(lrm.status(b), Some(JobState::Running { .. })));
    }

    #[test]
    fn walltime_expires_jobs() {
        let mut lrm = lrm(0);
        let id = lrm
            .submit(SimTime::ZERO, 1, Some(SimTime::from_secs(10)))
            .unwrap();
        lrm.advance(SimTime::ZERO);
        assert!(matches!(lrm.status(id), Some(JobState::Running { .. })));
        lrm.advance(SimTime::from_secs(10));
        assert_eq!(lrm.status(id), Some(JobState::Completed));
        assert_eq!(lrm.free_nodes(), 4);
    }

    #[test]
    fn cancel_pending_job() {
        let mut lrm = lrm(1000);
        let id = lrm.submit(SimTime::ZERO, 1, None).unwrap();
        assert!(lrm.cancel(SimTime::from_millis(1), id));
        assert_eq!(lrm.status(id), Some(JobState::Cancelled));
        lrm.advance(SimTime::from_secs(5));
        assert_eq!(lrm.free_nodes(), 4);
        // Cancelling twice is a no-op returning false.
        assert!(!lrm.cancel(SimTime::from_secs(5), id));
    }

    #[test]
    fn oversized_job_rejected() {
        let mut lrm = lrm(0);
        assert!(matches!(
            lrm.submit(SimTime::ZERO, 100, None),
            Err(SubmitError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn node_policy_enforced() {
        let mut lrm = Lrm::new(
            small_machine(),
            LrmConfig {
                min_nodes_per_job: Some(2),
                max_nodes_per_job: Some(3),
                ..Default::default()
            },
            0,
        );
        assert!(lrm.submit(SimTime::ZERO, 1, None).is_err());
        assert!(lrm.submit(SimTime::ZERO, 4, None).is_err());
        assert!(lrm.submit(SimTime::ZERO, 2, None).is_ok());
    }

    #[test]
    fn queued_job_cap_enforced() {
        let mut lrm = Lrm::new(
            small_machine(),
            LrmConfig {
                max_queued_jobs: Some(1),
                ..Default::default()
            },
            0,
        );
        // First job occupies everything; second sits in queue; third rejected.
        let _a = lrm.submit(SimTime::ZERO, 4, None).unwrap();
        lrm.advance(SimTime::ZERO);
        let _b = lrm.submit(SimTime::ZERO, 4, None).unwrap();
        assert!(matches!(
            lrm.submit(SimTime::ZERO, 4, None),
            Err(SubmitError::QueueFull { .. })
        ));
    }

    #[test]
    fn fail_job_releases_nodes() {
        let mut lrm = lrm(0);
        let id = lrm.submit(SimTime::ZERO, 4, None).unwrap();
        lrm.advance(SimTime::ZERO);
        assert_eq!(lrm.free_nodes(), 0);
        lrm.fail_job(SimTime::from_secs(1), id);
        assert_eq!(lrm.status(id), Some(JobState::Failed));
        assert_eq!(lrm.free_nodes(), 4);
    }

    #[test]
    fn queue_jitter_is_deterministic_per_seed() {
        let run = |seed| {
            let mut lrm = Lrm::new(
                small_machine(),
                LrmConfig {
                    queue_delay: SimTime::from_millis(10),
                    queue_jitter: SimTime::from_millis(50),
                    ..Default::default()
                },
                seed,
            );
            let id = lrm.submit(SimTime::ZERO, 1, None).unwrap();
            let mut t = SimTime::ZERO;
            while !matches!(lrm.status(id), Some(JobState::Running { .. })) {
                t += SimTime::from_millis(1);
                lrm.advance(t);
            }
            t
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn next_event_time_reports_earliest_transition() {
        let mut lrm = lrm(100);
        let _ = lrm.submit(SimTime::ZERO, 1, None).unwrap();
        // Earliest transition is the queued job's eligibility instant.
        assert_eq!(lrm.next_event_time(), Some(SimTime::from_millis(100)));
        lrm.advance(SimTime::from_millis(100));
        assert_eq!(lrm.next_event_time(), None); // running, no walltime
    }

    #[test]
    fn presets_match_paper() {
        let m = machines::midway();
        assert_eq!(m.cores_per_node, 28);
        assert_eq!(m.rtt, SimTime::from_micros(70));
        let b = machines::blue_waters();
        assert_eq!(b.workers_per_node, 32);
        assert_eq!(b.rtt, SimTime::from_micros(40));
        assert!(b.nodes >= 8192, "must fit the paper's 8192-node runs");
    }

    #[test]
    fn calibration_matches_reported_throughputs() {
        // The bottleneck service times must invert to the paper's Table 2
        // maximum throughputs.
        let tol = 0.01;
        let t = 1.0 / calib::HTEX_INTERCHANGE_SERVICE.as_secs_f64();
        assert!((t - 1181.0).abs() / 1181.0 < tol, "HTEX {t}");
        let t = 1.0 / calib::EXEX_INTERCHANGE_SERVICE.as_secs_f64();
        assert!((t - 1176.0).abs() / 1176.0 < tol, "EXEX {t}");
        let t = 1.0 / calib::IPP_HUB_SERVICE.as_secs_f64();
        assert!((t - 330.0).abs() / 330.0 < tol, "IPP {t}");
        let t = 1.0 / calib::DASK_SCHEDULER_SERVICE.as_secs_f64();
        assert!((t - 2617.0).abs() / 2617.0 < tol, "Dask {t}");
        let t = 1.0 / calib::FIREWORKS_DB_SERVICE.as_secs_f64();
        assert!((t - 4.0).abs() / 4.0 < tol, "FireWorks {t}");
    }
}
