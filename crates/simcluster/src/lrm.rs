//! The Local Resource Manager simulation.
//!
//! Implements exactly the three provider actions Parsl's provider
//! abstraction is built on (§4.2): *submit* a job, retrieve its *status*,
//! and *cancel* it — plus the queueing behaviour those actions observe on a
//! real batch system: FIFO start order, a queue delay before nodes are
//! granted, walltime enforcement, and node-count policies.
//!
//! The simulator is driven by explicit clocks (`advance(now)`), so the same
//! code runs under wall-clock time (thread-based providers poll it) and
//! virtual time (discrete-event experiments call it from scheduled events).

use crate::machine::Machine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::SimTime;
use std::collections::{HashMap, VecDeque};

/// Opaque job identifier returned by [`Lrm::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue (eligibility delay or capacity).
    Pending,
    /// Nodes granted and the job's processes are up.
    Running {
        /// When the job started.
        since: SimTime,
    },
    /// Ended normally (owner released it, or walltime elapsed).
    Completed,
    /// Cancelled before or during execution.
    Cancelled,
    /// Killed by injected failure.
    Failed,
}

/// Scheduler policy knobs.
#[derive(Debug, Clone)]
pub struct LrmConfig {
    /// Base delay between submission and node grant (given free capacity).
    pub queue_delay: SimTime,
    /// Uniform random extra delay in `[0, queue_jitter]`.
    pub queue_jitter: SimTime,
    /// Smallest job the scheduler accepts, in nodes.
    pub min_nodes_per_job: Option<usize>,
    /// Largest job the scheduler accepts, in nodes.
    pub max_nodes_per_job: Option<usize>,
    /// Maximum number of jobs waiting in the queue (running jobs excluded);
    /// batch systems commonly cap queued jobs per user.
    pub max_queued_jobs: Option<usize>,
}

impl Default for LrmConfig {
    fn default() -> Self {
        LrmConfig {
            queue_delay: SimTime::ZERO,
            queue_jitter: SimTime::ZERO,
            min_nodes_per_job: None,
            max_nodes_per_job: None,
            max_queued_jobs: None,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// More nodes than the machine has, or above `max_nodes_per_job`.
    TooManyNodes {
        /// Nodes requested.
        requested: usize,
        /// Largest acceptable request.
        limit: usize,
    },
    /// Below `min_nodes_per_job`.
    TooFewNodes {
        /// Nodes requested.
        requested: usize,
        /// Smallest acceptable request.
        limit: usize,
    },
    /// The queue already holds `max_queued_jobs` pending jobs.
    QueueFull {
        /// The configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::TooManyNodes { requested, limit } => {
                write!(f, "requested {requested} nodes, limit {limit}")
            }
            SubmitError::TooFewNodes { requested, limit } => {
                write!(f, "requested {requested} nodes, minimum {limit}")
            }
            SubmitError::QueueFull { limit } => write!(f, "queue full ({limit} jobs)"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Debug)]
struct Job {
    nodes: usize,
    state: JobState,
    /// Instant the queue delay elapses and the job may start.
    eligible_at: SimTime,
    /// Enforced end time once running.
    ends_at: Option<SimTime>,
    walltime: Option<SimTime>,
}

/// The batch scheduler simulation. See the module docs.
#[derive(Debug)]
pub struct Lrm {
    machine: Machine,
    config: LrmConfig,
    free_nodes: usize,
    jobs: HashMap<JobId, Job>,
    /// FIFO start order (no backfill — conservative, like a strict FIFO
    /// scheduler; documents the worst case for elasticity).
    queue: VecDeque<JobId>,
    next_id: u64,
    rng: SmallRng,
    clock: SimTime,
}

impl Lrm {
    /// Create a scheduler over `machine` with `config` policies.
    pub fn new(machine: Machine, config: LrmConfig, seed: u64) -> Self {
        let free_nodes = machine.nodes;
        Lrm {
            machine,
            config,
            free_nodes,
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            next_id: 0,
            rng: SmallRng::seed_from_u64(seed),
            clock: SimTime::ZERO,
        }
    }

    /// The machine this scheduler manages.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Submit a job asking for `nodes` nodes, optionally bounded by
    /// `walltime`. Returns immediately with a job id; the job starts after
    /// the queue delay once capacity is free.
    pub fn submit(
        &mut self,
        now: SimTime,
        nodes: usize,
        walltime: Option<SimTime>,
    ) -> Result<JobId, SubmitError> {
        self.advance(now);
        let max = self.config.max_nodes_per_job.unwrap_or(self.machine.nodes);
        let max = max.min(self.machine.nodes);
        if nodes > max {
            return Err(SubmitError::TooManyNodes {
                requested: nodes,
                limit: max,
            });
        }
        if let Some(min) = self.config.min_nodes_per_job {
            if nodes < min {
                return Err(SubmitError::TooFewNodes {
                    requested: nodes,
                    limit: min,
                });
            }
        }
        if let Some(cap) = self.config.max_queued_jobs {
            let queued = self.queue.len();
            if queued >= cap {
                return Err(SubmitError::QueueFull { limit: cap });
            }
        }
        let jitter = if self.config.queue_jitter == SimTime::ZERO {
            SimTime::ZERO
        } else {
            SimTime::from_nanos(
                self.rng
                    .random_range(0..=self.config.queue_jitter.as_nanos()),
            )
        };
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                nodes,
                state: JobState::Pending,
                eligible_at: now + self.config.queue_delay + jitter,
                ends_at: None,
                walltime,
            },
        );
        self.queue.push_back(id);
        self.advance(now);
        Ok(id)
    }

    /// Current state of `id`, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobState> {
        self.jobs.get(&id).map(|j| j.state)
    }

    /// Cancel a pending or running job. Returns true if the job was live.
    pub fn cancel(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                self.queue.retain(|&q| q != id);
                true
            }
            JobState::Running { .. } => {
                job.state = JobState::Cancelled;
                self.free_nodes += job.nodes;
                self.start_eligible(now);
                true
            }
            _ => false,
        }
    }

    /// Inject a failure: the job dies and its nodes are released.
    pub fn fail_job(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Running { .. } => {
                job.state = JobState::Failed;
                self.free_nodes += job.nodes;
                self.start_eligible(now);
                true
            }
            JobState::Pending => {
                job.state = JobState::Failed;
                self.queue.retain(|&q| q != id);
                true
            }
            _ => false,
        }
    }

    /// Drive the scheduler's internal transitions up to time `now`:
    /// walltime expirations and queued-job starts.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.clock, "LRM clock went backwards");
        self.clock = self.clock.max(now);
        // End running jobs whose walltime elapsed.
        for job in self.jobs.values_mut() {
            if let JobState::Running { .. } = job.state {
                if let Some(end) = job.ends_at {
                    if end <= now {
                        job.state = JobState::Completed;
                        self.free_nodes += job.nodes;
                    }
                }
            }
        }
        self.start_eligible(now);
    }

    fn start_eligible(&mut self, now: SimTime) {
        // Strict FIFO: the head of the queue must start before anyone else.
        while let Some(&id) = self.queue.front() {
            let job = self.jobs.get_mut(&id).expect("queued job exists");
            debug_assert_eq!(job.state, JobState::Pending);
            if job.eligible_at > now || job.nodes > self.free_nodes {
                break;
            }
            job.state = JobState::Running { since: now };
            job.ends_at = job.walltime.map(|w| now + w);
            self.free_nodes -= job.nodes;
            self.queue.pop_front();
        }
    }

    /// Earliest future instant at which some state transition can happen
    /// (queued-job eligibility or a walltime expiry). Lets discrete-event
    /// callers know when to poll next. `None` when nothing is scheduled.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > self.clock {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        if let Some(&head) = self.queue.front() {
            let job = &self.jobs[&head];
            consider(job.eligible_at);
        }
        for job in self.jobs.values() {
            if let JobState::Running { .. } = job.state {
                if let Some(end) = job.ends_at {
                    consider(end);
                }
            }
        }
        next
    }

    /// Nodes not allocated to any running job.
    pub fn free_nodes(&self) -> usize {
        self.free_nodes
    }

    /// Jobs currently running.
    pub fn running_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Running { .. }))
            .count()
    }

    /// Jobs waiting in the queue.
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::machines;

    #[test]
    fn strict_fifo_head_blocks_tail() {
        // A small job behind a large blocked job must wait (no backfill).
        let mut lrm = Lrm::new(machines::workstation(4), LrmConfig::default(), 0);
        // workstation has 1 node; occupy it.
        let a = lrm.submit(SimTime::ZERO, 1, None).unwrap();
        let b = lrm.submit(SimTime::ZERO, 1, None).unwrap();
        let c = lrm.submit(SimTime::ZERO, 1, None).unwrap();
        lrm.advance(SimTime::ZERO);
        assert!(matches!(lrm.status(a), Some(JobState::Running { .. })));
        assert_eq!(lrm.status(b), Some(JobState::Pending));
        assert_eq!(lrm.status(c), Some(JobState::Pending));
        lrm.cancel(SimTime::from_secs(1), a);
        assert!(matches!(lrm.status(b), Some(JobState::Running { .. })));
        assert_eq!(lrm.status(c), Some(JobState::Pending));
    }

    #[test]
    fn unknown_job_status_is_none() {
        let lrm = Lrm::new(machines::workstation(1), LrmConfig::default(), 0);
        assert_eq!(lrm.status(JobId(99)), None);
    }

    #[test]
    fn walltime_expiry_lets_queue_progress() {
        let mut lrm = Lrm::new(machines::workstation(1), LrmConfig::default(), 0);
        let a = lrm
            .submit(SimTime::ZERO, 1, Some(SimTime::from_secs(5)))
            .unwrap();
        let b = lrm.submit(SimTime::ZERO, 1, None).unwrap();
        lrm.advance(SimTime::from_secs(4));
        assert!(matches!(lrm.status(a), Some(JobState::Running { .. })));
        assert_eq!(lrm.status(b), Some(JobState::Pending));
        lrm.advance(SimTime::from_secs(5));
        assert_eq!(lrm.status(a), Some(JobState::Completed));
        assert!(matches!(lrm.status(b), Some(JobState::Running { .. })));
    }
}
