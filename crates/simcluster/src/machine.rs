//! Machine descriptions and the paper's two testbeds.

use simnet::SimTime;

/// A homogeneous cluster/supercomputer description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    /// Human-readable name used in logs and experiment output.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Physical cores per node.
    pub cores_per_node: usize,
    /// Workers deployed per node in the paper's experiments (one per
    /// schedulable unit, which may differ from physical cores).
    pub workers_per_node: usize,
    /// Measured node-to-node round-trip time.
    pub rtt: SimTime,
}

impl Machine {
    /// Total worker slots across the machine.
    pub fn total_workers(&self) -> usize {
        self.nodes * self.workers_per_node
    }

    /// One-way network latency (half the measured RTT).
    pub fn one_way_latency(&self) -> SimTime {
        SimTime::from_nanos(self.rtt.as_nanos() / 2)
    }
}

/// The two testbeds from §5 of the paper.
pub mod machines {
    use super::*;

    /// Midway campus cluster ("broadwl" partition): 28-core Intel E5-2680v4
    /// nodes, 64 GB RAM, InfiniBand, measured RTT 0.07 ms. Used for the
    /// latency (Fig. 3), throughput (Table 2), and elasticity (Fig. 6)
    /// experiments.
    pub fn midway() -> Machine {
        Machine {
            name: "midway".into(),
            // The partition is shared; the paper never needed more than a
            // few dozen nodes there. 100 is a generous allocation cap.
            nodes: 100,
            cores_per_node: 28,
            workers_per_node: 28,
            rtt: SimTime::from_micros(70),
        }
    }

    /// Blue Waters XE partition: 22 636 nodes with 16 AMD Interlagos cores
    /// (32 integer scheduling units) and 64 GB RAM, 3D-torus interconnect,
    /// measured RTT 0.04 ms. The paper deploys one worker per integer
    /// scheduling unit (32 per node) and scales to 8192 nodes. Used for
    /// the scaling experiments (Fig. 4, Table 2).
    pub fn blue_waters() -> Machine {
        Machine {
            name: "blue-waters".into(),
            nodes: 22_636,
            cores_per_node: 16,
            workers_per_node: 32,
            rtt: SimTime::from_micros(40),
        }
    }

    /// A laptop-scale machine for examples and tests.
    pub fn workstation(cores: usize) -> Machine {
        Machine {
            name: "workstation".into(),
            nodes: 1,
            cores_per_node: cores,
            workers_per_node: cores,
            rtt: SimTime::from_micros(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = machines::blue_waters();
        assert_eq!(m.total_workers(), 22_636 * 32);
        assert_eq!(m.one_way_latency(), SimTime::from_micros(20));
    }

    #[test]
    fn workstation_is_single_node() {
        let w = machines::workstation(8);
        assert_eq!(w.nodes, 1);
        assert_eq!(w.total_workers(), 8);
    }
}
