//! Calibration constants for the discrete-event executor models.
//!
//! Every cost number used by the scaling/latency/throughput models lives
//! here, with its provenance. Two kinds of constants exist:
//!
//! 1. **Paper-anchored**: taken directly from a number the paper reports
//!    (measured RTTs, Table 2 maximum throughputs, Figure 3 latency means).
//! 2. **Derived/assumed**: decompositions chosen so the architectural
//!    models reproduce the anchored numbers; each one documents the
//!    reasoning.
//!
//! The scaling *shapes* in Figure 4 are then emergent: no constant below
//! was fitted against Figure 4 itself.

use simnet::SimTime;

// ---------------------------------------------------------------------------
// Common path components (latency decomposition, Figure 3)
// ---------------------------------------------------------------------------

/// Client-side DataFlowKernel cost per task: app invocation, dependency
/// bookkeeping, memo lookup, argument serialization. Derived: the paper's
/// ThreadPool mean (≈1.04 ms) is `DFK_SUBMIT + EXEC_KERNEL` with no network
/// hops; we split it 0.60/0.44 (submission slightly heavier than the
/// kernel, as profiled in our real-thread plane).
pub const DFK_SUBMIT: SimTime = SimTime::from_micros(600);

/// Worker-side execution kernel cost: deserialize the task, run it in the
/// sandboxed environment, serialize the result (§4.3 "common execution
/// kernel"). See [`DFK_SUBMIT`] for the derivation.
pub const EXEC_KERNEL: SimTime = SimTime::from_micros(440);

/// Share of [`DFK_SUBMIT`] that is per-*message* dispatch work — framing
/// the submit message and writing it to the executor socket — rather than
/// per-task argument serialization. Derived: profiled on the real-thread
/// plane as roughly 30% of the submit path. Batched submission (§4.3.1)
/// pays this once per frame instead of once per task, which is the lever
/// behind the Figure-5-style launch-rate experiments.
pub const SUBMIT_PER_MSG: SimTime = SimTime::from_micros(180);

/// Fraction of the central component's per-task service that is message
/// parsing/framing rather than matching and task tracking; amortized by
/// the same batching. Assumed: framing-heavy brokers (HTEX interchange)
/// profile near this share on the real-thread plane.
pub const CENTRAL_MSG_FRACTION: f64 = 0.4;

// ---------------------------------------------------------------------------
// Per-executor extra path cost (latency experiment, Figure 3)
// ---------------------------------------------------------------------------
// For a sequential single-task round trip, mean latency =
//   DFK_SUBMIT + EXEC_KERNEL + hops × one-way-latency + EXTRA_<executor>.
// The EXTRA terms absorb executor-client processing, interchange task
// tracking, and worker-loop pickup, calibrated to the paper's reported
// means on Midway (one-way latency 0.035 ms).

/// LLEX beyond common costs: executor client + 2 stateless relay passes +
/// worker socket handling. Anchored to the paper's 3.47 ms mean:
/// 3.47 − 1.04 − 4×0.035 = 2.29 ms.
pub const EXTRA_LLEX: SimTime = SimTime::from_micros(2290);

/// HTEX beyond common costs: interchange task tracking, manager batching
/// and dispatch (6 hops). Anchored to 6.87 ms: 6.87 − 1.04 − 6×0.035 =
/// 5.62 ms.
pub const EXTRA_HTEX: SimTime = SimTime::from_micros(5620);

/// EXEX beyond common costs: interchange plus rank-0 manager MPI dispatch.
/// Anchored to 9.83 ms: 9.83 − 1.04 − 6×0.035 = 8.58 ms.
pub const EXTRA_EXEX: SimTime = SimTime::from_micros(8580);

/// IPyParallel hub processing. Anchored to 11.72 ms: 11.72 − 1.04 −
/// 4×0.035 = 10.54 ms.
pub const EXTRA_IPP: SimTime = SimTime::from_micros(10540);

/// Dask distributed scheduler processing on the sequential path. Anchored
/// to 16.19 ms: 16.19 − 1.04 − 4×0.035 = 15.01 ms.
pub const EXTRA_DASK: SimTime = SimTime::from_micros(15010);

/// ThreadPool executor has no executor-side path beyond the common costs.
pub const EXTRA_THREADPOOL: SimTime = SimTime::ZERO;

// Latency spread (± uniform jitter) roughly matching the violin widths in
// Figure 3: LLEX is reported "considerably ... lower latency variability".

/// ThreadPool latency jitter half-width.
pub const JITTER_THREADPOOL: SimTime = SimTime::from_micros(300);
/// LLEX latency jitter half-width (narrow distribution).
pub const JITTER_LLEX: SimTime = SimTime::from_micros(500);
/// HTEX latency jitter half-width.
pub const JITTER_HTEX: SimTime = SimTime::from_micros(2000);
/// EXEX latency jitter half-width.
pub const JITTER_EXEX: SimTime = SimTime::from_micros(3000);
/// IPP latency jitter half-width.
pub const JITTER_IPP: SimTime = SimTime::from_micros(4000);
/// Dask latency jitter half-width.
pub const JITTER_DASK: SimTime = SimTime::from_micros(6000);

// ---------------------------------------------------------------------------
// Central-component bottleneck service times (throughput, Table 2)
// ---------------------------------------------------------------------------
// Under pipelined load the end-to-end path no longer matters; the serial
// occupancy of the central component caps throughput at 1/service. These
// invert the paper's reported maximum tasks/second exactly.

/// HTEX interchange per-task service: 1/1181 s.
pub const HTEX_INTERCHANGE_SERVICE: SimTime = SimTime::from_nanos(1_000_000_000 / 1181);

/// EXEX interchange per-task service: 1/1176 s.
pub const EXEX_INTERCHANGE_SERVICE: SimTime = SimTime::from_nanos(1_000_000_000 / 1176);

/// IPyParallel hub per-task service: 1/330 s.
pub const IPP_HUB_SERVICE: SimTime = SimTime::from_nanos(1_000_000_000 / 330);

/// Dask scheduler per-task service: 1/2617 s ("optimized for short
/// duration jobs on small clusters").
pub const DASK_SCHEDULER_SERVICE: SimTime = SimTime::from_nanos(1_000_000_000 / 2617);

/// FireWorks LaunchPad (MongoDB) per-task service: 1/4 s — every task is a
/// database round trip by a polling FireWorker.
pub const FIREWORKS_DB_SERVICE: SimTime = SimTime::from_nanos(1_000_000_000 / 4);

/// LLEX stateless relay per-task service. Not reported in Table 2 (LLEX
/// targets latency, not throughput); assumed fast because the interchange
/// does no task tracking — 1/3000 s.
pub const LLEX_RELAY_SERVICE: SimTime = SimTime::from_nanos(1_000_000_000 / 3000);

// ---------------------------------------------------------------------------
// Scale limits and per-connection upkeep (Table 2 maxima, Figure 4 tails)
// ---------------------------------------------------------------------------
// Centralized frameworks pay continuous per-connection upkeep (heartbeats,
// socket buffers) at the central component. We model the upkeep as
// consuming a fraction `connected/cap` of central capacity, inflating the
// effective service time by 1/(1 − connected/cap) and refusing connections
// at the cap. HTEX's interchange talks to per-node managers rather than
// workers (32× fewer connections) and EXEX's rank-0 managers fan out below
// the interchange, which is why they scale further — the paper hit
// allocation limits, not framework limits, for both.

/// Connection count at which per-connection upkeep has consumed enough
/// central capacity to double the effective per-task service time. Chosen
/// so the degradation onset matches Figure 4: IPP and Dask visibly slow
/// beyond ~512 workers and are heavily degraded at their observed limits
/// (2× at 2048 connections, 5× at 8192).
pub const UPKEEP_DOUBLING_CONNECTIONS: f64 = 2048.0;

/// Dask distributed: connection failures observed at 8192 workers.
pub const DASK_MAX_CONNECTIONS: usize = 8192;

/// IPyParallel: failures observed past 2048 workers.
pub const IPP_MAX_CONNECTIONS: usize = 2048;

/// FireWorks: MongoDB timeouts and errors at 1024 workers.
pub const FIREWORKS_MAX_CONNECTIONS: usize = 1024;

/// HTEX interchange connection cap, in managers (nodes). The paper states
/// HTEX "is engineered to support up to 2000 nodes"; 4096 managers is a
/// comfortable ceiling above every tested point (the 2048-node result was
/// allocation-limited).
pub const HTEX_MAX_MANAGERS: usize = 4096;

/// EXEX has no practical interchange cap: a handful of rank-0 managers
/// (one per MPI pool) connect to it regardless of worker count.
pub const EXEX_MAX_POOLS: usize = 1024;

/// Workers per EXEX MPI pool used in the scale experiments: one pool per
/// node of 32 workers keeps pools small as §4.3.2 recommends.
pub const EXEX_POOL_SIZE: usize = 32;

// ---------------------------------------------------------------------------
// Batching (HTEX manager prefetch, §4.3.1)
// ---------------------------------------------------------------------------

/// Default task batch size managers request from the interchange.
pub const HTEX_DEFAULT_BATCH: usize = 8;

/// Per-batch fixed messaging overhead between interchange and manager.
pub const HTEX_BATCH_OVERHEAD: SimTime = SimTime::from_micros(150);

// ---------------------------------------------------------------------------
// Elasticity experiment (Figures 5–6)
// ---------------------------------------------------------------------------

/// Strategy evaluation period (Parsl's default polling cadence).
pub const STRATEGY_INTERVAL: SimTime = SimTime::from_secs(5);

/// Queue delay for acquiring a block on the Midway-like cluster during the
/// elasticity run; chosen at the small end of campus-cluster delays so the
/// elastic run's makespan penalty (~10%) matches Figure 6.
pub const ELASTICITY_BLOCK_QDELAY: SimTime = SimTime::from_secs(8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_decomposition_reconstructs_paper_means() {
        let one_way = SimTime::from_micros(35); // Midway 0.07 ms RTT
        let common = DFK_SUBMIT + EXEC_KERNEL;
        let total = |hops: u64, extra: SimTime| common + one_way * hops + extra;
        let close = |t: SimTime, ms: f64| (t.as_millis_f64() - ms).abs() < 0.05;
        assert!(close(total(0, EXTRA_THREADPOOL), 1.04));
        assert!(close(total(4, EXTRA_LLEX), 3.47));
        assert!(close(total(6, EXTRA_HTEX), 6.87));
        assert!(close(total(6, EXTRA_EXEX), 9.83));
        assert!(close(total(4, EXTRA_IPP), 11.72));
        assert!(close(total(4, EXTRA_DASK), 16.19));
    }

    #[test]
    fn executor_latency_ordering_matches_paper() {
        // ThreadPool < LLEX < HTEX < EXEX < IPP < Dask
        assert!(EXTRA_THREADPOOL < EXTRA_LLEX);
        assert!(EXTRA_LLEX < EXTRA_HTEX);
        assert!(EXTRA_HTEX < EXTRA_EXEX);
        assert!(EXTRA_EXEX < EXTRA_IPP);
        assert!(EXTRA_IPP < EXTRA_DASK);
    }

    #[test]
    fn throughput_ordering_matches_table2() {
        // Dask > HTEX > EXEX > IPP > FireWorks (smaller service = faster).
        assert!(DASK_SCHEDULER_SERVICE < HTEX_INTERCHANGE_SERVICE);
        assert!(HTEX_INTERCHANGE_SERVICE < EXEX_INTERCHANGE_SERVICE);
        assert!(EXEX_INTERCHANGE_SERVICE < IPP_HUB_SERVICE);
        assert!(IPP_HUB_SERVICE < FIREWORKS_DB_SERVICE);
    }

    #[test]
    fn connection_caps_match_table2() {
        assert_eq!(IPP_MAX_CONNECTIONS, 2048);
        assert_eq!(DASK_MAX_CONNECTIONS, 8192);
        assert_eq!(FIREWORKS_MAX_CONNECTIONS, 1024);
    }
}
