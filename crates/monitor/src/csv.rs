//! CSV file sink.

use parking_lot::Mutex;
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Appends one CSV row per event. Columns:
/// `kind,at_us,task,app,state,executor,attempt,tenant,items,detail`.
pub struct CsvSink {
    writer: Mutex<BufWriter<File>>,
}

impl CsvSink {
    /// Create (truncate) the file and write the header.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writeln!(
            writer,
            "kind,at_us,task,app,state,executor,attempt,tenant,items,detail"
        )?;
        Ok(CsvSink {
            writer: Mutex::new(writer),
        })
    }

    /// Flush buffered rows to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Write one event's row (caller holds the writer lock). Failures are
/// swallowed like any logging sink's; `flush()` surfaces them.
fn write_event(w: &mut BufWriter<File>, event: &MonitorEvent) {
    let _ = match event {
        MonitorEvent::Task {
            task,
            app,
            state,
            executor,
            attempt,
            tenant,
            items,
            at,
        } => writeln!(
            w,
            "task,{},{},{},{},{},{},{},{},",
            at.as_micros(),
            task,
            csv_escape(app),
            state,
            executor.as_deref().unwrap_or(""),
            attempt,
            tenant.0,
            items
        ),
        MonitorEvent::Retry {
            task,
            attempt,
            reason,
            at,
        } => writeln!(
            w,
            "retry,{},{},,,,{},,,{}",
            at.as_micros(),
            task,
            attempt,
            csv_escape(reason)
        ),
        MonitorEvent::Hedge {
            task,
            attempt,
            executor,
            age,
            at,
        } => writeln!(
            w,
            "hedge,{},{},,,{},{},,,age_us={}",
            at.as_micros(),
            task,
            executor.as_deref().unwrap_or(""),
            attempt,
            age.as_micros()
        ),
        MonitorEvent::Workers {
            executor,
            connected,
            outstanding,
            at,
        } => writeln!(
            w,
            "workers,{},,,,{},,,,connected={} outstanding={}",
            at.as_micros(),
            executor,
            connected,
            outstanding
        ),
    };
}

impl MonitorSink for CsvSink {
    fn on_event(&self, event: &MonitorEvent) {
        write_event(&mut self.writer.lock(), event);
    }

    /// Native batching: one lock acquisition per completion-plane pass;
    /// the rows land back to back in the same buffered stream.
    fn on_batch(&self, events: &[MonitorEvent]) {
        let mut w = self.writer.lock();
        for event in events {
            write_event(&mut w, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_quotes_and_commas() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
