//! Reducers for the elasticity experiment (Figure 6) and the task
//! lifecycle visualization.

use crate::store::MemoryStore;
use std::time::Duration;

/// Integrate the executor's connected-worker step series over
/// `[first record, until]` — total worker-seconds of acquired resources.
pub fn worker_seconds(store: &MemoryStore, executor: &str, until: Duration) -> f64 {
    let series = store.worker_series(executor);
    if series.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for w in series.windows(2) {
        let (t0, v) = w[0];
        let (t1, _) = w[1];
        let hi = t1.min(until);
        if hi > t0 {
            total += v as f64 * (hi - t0).as_secs_f64();
        }
    }
    let (tl, vl) = *series.last().expect("non-empty");
    if until > tl {
        total += vl as f64 * (until - tl).as_secs_f64();
    }
    total
}

/// The paper's utilization metric: "the ratio of total wall clock time of
/// tasks to that of the workers".
pub fn utilization(task_seconds: f64, worker_seconds: f64) -> f64 {
    if worker_seconds <= 0.0 {
        0.0
    } else {
        task_seconds / worker_seconds
    }
}

/// Makespan: first submission to last terminal event.
pub fn makespan(store: &MemoryStore) -> Duration {
    let timelines = store.timelines();
    let start = timelines
        .iter()
        .filter_map(|(_, t)| t.submitted)
        .min()
        .unwrap_or(Duration::ZERO);
    let end = timelines
        .iter()
        .filter_map(|(_, t)| t.finished)
        .max()
        .unwrap_or(Duration::ZERO);
    end.saturating_sub(start)
}

/// ASCII task-lifecycle chart (Figure 6 bottom): one row per task,
/// `.` while waiting (submitted → launched), `#` while launched →
/// finished. `width` is the chart width in characters.
pub fn lifecycle_chart(store: &MemoryStore, width: usize) -> String {
    let timelines = store.timelines();
    let end = store.last_event_at().as_secs_f64().max(1e-9);
    let scale = width as f64 / end;
    let mut out = String::new();
    for (id, t) in &timelines {
        let sub = t.submitted.unwrap_or(Duration::ZERO).as_secs_f64();
        let launch = t.launched.unwrap_or(Duration::ZERO).as_secs_f64().max(sub);
        let fin = t
            .finished
            .map(|d| d.as_secs_f64())
            .unwrap_or(end)
            .max(launch);
        let a = (sub * scale).round() as usize;
        let b = (launch * scale).round() as usize;
        let c = (fin * scale).round() as usize;
        let mut row = String::with_capacity(width + 16);
        row.push_str(&format!("{id:>10} |"));
        for x in 0..width {
            row.push(if x >= a && x < b {
                '.'
            } else if x >= b && x < c.max(b + 1) {
                '#'
            } else {
                ' '
            });
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::monitor::{MonitorEvent, MonitorSink};
    use parsl_core::types::{TaskId, TaskState};

    #[test]
    fn makespan_spans_first_submit_to_last_finish() {
        let store = MemoryStore::new();
        for (id, sub, fin) in [(1u64, 10u64, 100u64), (2, 20, 250), (3, 0, 50)] {
            store.on_event(&MonitorEvent::Task {
                task: TaskId(id),
                app: "a".into(),
                state: TaskState::Pending,
                executor: None,
                attempt: 0,
                tenant: parsl_core::types::TenantId::DEFAULT,
                items: 1,
                at: Duration::from_millis(sub),
            });
            store.on_event(&MonitorEvent::Task {
                task: TaskId(id),
                app: "a".into(),
                state: TaskState::Done,
                executor: None,
                attempt: 0,
                tenant: parsl_core::types::TenantId::DEFAULT,
                items: 1,
                at: Duration::from_millis(fin),
            });
        }
        assert_eq!(makespan(&store), Duration::from_millis(250));
    }

    #[test]
    fn empty_store_is_zero() {
        let store = MemoryStore::new();
        assert_eq!(makespan(&store), Duration::ZERO);
        assert_eq!(worker_seconds(&store, "x", Duration::from_secs(5)), 0.0);
        assert_eq!(utilization(0.0, 0.0), 0.0);
    }
}
