//! `parsl-monitor` — monitoring stores and analysis (§4.6).
//!
//! "To enable both real-time and post-completion analysis and
//! introspection of execution information, DFK logs execution metadata and
//! task state transitions ... A modular DFK interface allows monitoring
//! information to be stored in a SQL database, Elastic Search, or files."
//!
//! The reproduction provides:
//!
//! - [`MemoryStore`]: an in-memory event store with query APIs (the
//!   "SQL database" role);
//! - [`CsvSink`]: append events to a CSV file (the "files" role);
//! - [`analysis`]: makespan / worker-seconds / utilization reducers used
//!   by the elasticity experiment (Figure 6), plus an ASCII task-lifecycle
//!   chart standing in for the web visualization.

pub mod analysis;
mod csv;
mod store;

pub use csv::CsvSink;
pub use store::{MemoryStore, TaskTimeline};

#[cfg(test)]
mod tests {
    use super::*;
    use parsl_core::monitor::{MonitorEvent, MonitorSink};
    use parsl_core::types::{TaskId, TaskState};
    use std::time::Duration;

    fn task_event(id: u64, state: TaskState, at_ms: u64) -> MonitorEvent {
        MonitorEvent::Task {
            task: TaskId(id),
            app: "app".into(),
            state,
            executor: Some("x".into()),
            attempt: 0,
            tenant: parsl_core::types::TenantId::DEFAULT,
            items: 1,
            at: Duration::from_millis(at_ms),
        }
    }

    #[test]
    fn store_accumulates_and_queries() {
        let store = MemoryStore::new();
        store.on_event(&task_event(1, TaskState::Pending, 0));
        store.on_event(&task_event(1, TaskState::Launched, 5));
        store.on_event(&task_event(1, TaskState::Done, 20));
        store.on_event(&task_event(2, TaskState::Pending, 1));
        assert_eq!(store.event_count(), 4);
        let t1 = store.task_timeline(TaskId(1)).unwrap();
        assert_eq!(t1.submitted, Some(Duration::from_millis(0)));
        assert_eq!(t1.launched, Some(Duration::from_millis(5)));
        assert_eq!(t1.finished, Some(Duration::from_millis(20)));
        assert_eq!(t1.final_state, Some(TaskState::Done));
        assert!(store.task_timeline(TaskId(3)).is_none());
        assert_eq!(store.tasks_in_state(TaskState::Done).len(), 1);
    }

    #[test]
    fn store_tracks_worker_series() {
        let store = MemoryStore::new();
        store.on_event(&MonitorEvent::Workers {
            executor: "htex".into(),
            connected: 5,
            outstanding: 10,
            at: Duration::from_secs(1),
        });
        store.on_event(&MonitorEvent::Workers {
            executor: "htex".into(),
            connected: 10,
            outstanding: 3,
            at: Duration::from_secs(2),
        });
        let series = store.worker_series("htex");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (Duration::from_secs(1), 5));
        assert_eq!(series[1], (Duration::from_secs(2), 10));
    }

    #[test]
    fn live_with_dfk() {
        use parsl_core::prelude::*;
        use std::sync::Arc;
        let store = Arc::new(MemoryStore::new());
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .monitor(store.clone())
            .build()
            .unwrap();
        let add = dfk.python_app("add", |a: i64, b: i64| a + b);
        let f = parsl_core::call!(add, 1i64, 2i64);
        assert_eq!(f.result().unwrap(), 3);
        dfk.wait_for_all();
        let t = store.task_timeline(f.task_id()).expect("recorded");
        assert_eq!(t.final_state, Some(TaskState::Done));
        assert!(t.finished >= t.launched);
        dfk.shutdown();
    }

    #[test]
    fn fused_map_expands_to_logical_items() {
        use parsl_core::fusion::MapOptions;
        use parsl_core::prelude::*;
        use std::sync::Arc;
        let store = Arc::new(MemoryStore::new());
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .monitor(store.clone())
            .build()
            .unwrap();
        let id = dfk.python_app("id", |x: u64| x);
        let handle = id.map_with(
            0..50u64,
            MapOptions {
                chunk_size: Some(8),
                ..MapOptions::default()
            },
        );
        assert!(handle.results().iter().all(|r| r.is_ok()));
        dfk.wait_for_all();
        // 7 fused tasks finish, but they stand for 50 logical items.
        assert_eq!(store.tasks_in_state(TaskState::Done).len(), 7);
        assert_eq!(store.logical_items_in_state(TaskState::Done), 50);
        dfk.shutdown();
    }

    #[test]
    fn csv_sink_writes_rows() {
        let path = std::env::temp_dir().join(format!("parsl-monitor-{}.csv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let sink = CsvSink::create(&path).unwrap();
            sink.on_event(&task_event(1, TaskState::Pending, 0));
            sink.on_event(&task_event(1, TaskState::Done, 9));
            sink.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "kind,at_us,task,app,state,executor,attempt,tenant,items,detail"
        );
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("pending"));
        assert!(lines[2].contains("done"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn utilization_analysis_matches_hand_computation() {
        use analysis::utilization;
        let store = MemoryStore::new();
        // 2 workers for 10 s, then 4 workers for 10 s => 60 worker-seconds.
        store.on_event(&MonitorEvent::Workers {
            executor: "e".into(),
            connected: 2,
            outstanding: 0,
            at: Duration::from_secs(0),
        });
        store.on_event(&MonitorEvent::Workers {
            executor: "e".into(),
            connected: 4,
            outstanding: 0,
            at: Duration::from_secs(10),
        });
        let ws = analysis::worker_seconds(&store, "e", Duration::from_secs(20));
        assert!((ws - 60.0).abs() < 1e-9);
        // 30 task-seconds of useful work => 50% utilization.
        let u = utilization(30.0, ws);
        assert!((u - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_chart_renders() {
        let store = MemoryStore::new();
        store.on_event(&task_event(1, TaskState::Pending, 0));
        store.on_event(&task_event(1, TaskState::Launched, 100));
        store.on_event(&task_event(1, TaskState::Done, 300));
        store.on_event(&task_event(2, TaskState::Pending, 50));
        store.on_event(&task_event(2, TaskState::Launched, 150));
        store.on_event(&task_event(2, TaskState::Done, 400));
        let chart = analysis::lifecycle_chart(&store, 40);
        assert!(chart.contains("task-1"));
        assert!(chart.contains("task-2"));
        // Waiting rendered distinct from executing.
        assert!(chart.contains('.') && chart.contains('#'));
    }
}
