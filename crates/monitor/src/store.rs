//! In-memory event store.

use parking_lot::RwLock;
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::types::{TaskId, TaskState};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-task lifecycle timestamps derived from the event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaskTimeline {
    /// App name (shared with the event stream, never copied per event).
    pub app: Arc<str>,
    /// First `Pending` event.
    pub submitted: Option<Duration>,
    /// Most recent `Launched` event (retries re-launch).
    pub launched: Option<Duration>,
    /// Terminal event time.
    pub finished: Option<Duration>,
    /// Terminal state.
    pub final_state: Option<TaskState>,
    /// Executor that ran (or was meant to run) the task.
    pub executor: Option<String>,
    /// Retries observed.
    pub retries: u32,
    /// Speculative straggler hedges observed.
    pub hedges: u32,
    /// Logical items the task represents (1 normally; the chunk length
    /// for fused `app.map` chunks). Zero only before any event arrived.
    pub items: u32,
}

#[derive(Default)]
struct Inner {
    events: Vec<MonitorEvent>,
    timelines: HashMap<TaskId, TaskTimeline>,
    workers: HashMap<String, Vec<(Duration, usize)>>,
}

/// Thread-safe in-memory store; register as the DFK's monitor sink and
/// query after (or during) the run.
#[derive(Default)]
pub struct MemoryStore {
    inner: RwLock<Inner>,
}

impl MemoryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events recorded.
    pub fn event_count(&self) -> usize {
        self.inner.read().events.len()
    }

    /// Copy of the raw event log.
    pub fn events(&self) -> Vec<MonitorEvent> {
        self.inner.read().events.clone()
    }

    /// Lifecycle info for one task.
    pub fn task_timeline(&self, task: TaskId) -> Option<TaskTimeline> {
        self.inner.read().timelines.get(&task).cloned()
    }

    /// All task ids whose final state is `state`.
    pub fn tasks_in_state(&self, state: TaskState) -> Vec<TaskId> {
        self.inner
            .read()
            .timelines
            .iter()
            .filter(|(_, t)| t.final_state == Some(state))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Logical items whose task's final state is `state`: fused `app.map`
    /// chunks expand to their chunk length, ordinary tasks count as 1.
    pub fn logical_items_in_state(&self, state: TaskState) -> u64 {
        self.inner
            .read()
            .timelines
            .values()
            .filter(|t| t.final_state == Some(state))
            .map(|t| t.items.max(1) as u64)
            .sum()
    }

    /// All task timelines, sorted by task id.
    pub fn timelines(&self) -> Vec<(TaskId, TaskTimeline)> {
        let mut v: Vec<_> = self
            .inner
            .read()
            .timelines
            .iter()
            .map(|(&id, t)| (id, t.clone()))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Worker-count step series for one executor.
    pub fn worker_series(&self, executor: &str) -> Vec<(Duration, usize)> {
        self.inner
            .read()
            .workers
            .get(executor)
            .cloned()
            .unwrap_or_default()
    }

    /// Observed service times (launch → terminal) of completed tasks,
    /// optionally filtered to one app. The rollup behind the elasticity
    /// benches' latency metrics.
    pub fn service_times(&self, app: Option<&str>) -> Vec<Duration> {
        self.inner
            .read()
            .timelines
            .values()
            .filter(|t| t.final_state == Some(TaskState::Done))
            .filter(|t| app.is_none_or(|a| &*t.app == a))
            .filter_map(|t| Some(t.finished?.saturating_sub(t.launched?)))
            .collect()
    }

    /// Quantile of the observed service times (`q` in `[0, 1]`); `None`
    /// with no completed tasks.
    pub fn service_quantile(&self, app: Option<&str>, q: f64) -> Option<Duration> {
        let mut times = self.service_times(app);
        if times.is_empty() {
            return None;
        }
        times.sort();
        let idx = ((times.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(times[idx])
    }

    /// Hedges recorded across all tasks.
    pub fn hedge_count(&self) -> usize {
        self.inner
            .read()
            .timelines
            .values()
            .map(|t| t.hedges as usize)
            .sum()
    }

    /// Time of the last recorded event.
    pub fn last_event_at(&self) -> Duration {
        self.inner
            .read()
            .events
            .iter()
            .map(|e| e.at())
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// Fold one event into the store (caller holds the write lock).
fn apply(inner: &mut Inner, event: &MonitorEvent) {
    match event {
        MonitorEvent::Task {
            task,
            app,
            state,
            executor,
            items,
            at,
            ..
        } => {
            let t = inner.timelines.entry(*task).or_default();
            if t.app.is_empty() {
                t.app = Arc::clone(app);
            }
            t.items = (*items).max(1);
            match state {
                TaskState::Pending => t.submitted = Some(*at),
                TaskState::Launched => {
                    t.launched = Some(*at);
                    t.executor.clone_from(executor);
                }
                s if s.is_terminal() => {
                    t.finished = Some(*at);
                    t.final_state = Some(*s);
                    if t.executor.is_none() {
                        t.executor.clone_from(executor);
                    }
                }
                _ => {}
            }
        }
        MonitorEvent::Retry { task, at, .. } => {
            let t = inner.timelines.entry(*task).or_default();
            t.retries += 1;
            let _ = at;
        }
        MonitorEvent::Hedge { task, .. } => {
            inner.timelines.entry(*task).or_default().hedges += 1;
        }
        MonitorEvent::Workers {
            executor,
            connected,
            at,
            ..
        } => {
            inner
                .workers
                .entry(executor.clone())
                .or_default()
                .push((*at, *connected));
        }
    }
    inner.events.push(event.clone());
}

impl MonitorSink for MemoryStore {
    fn on_event(&self, event: &MonitorEvent) {
        apply(&mut self.inner.write(), event);
    }

    /// Native batching: one write-lock acquisition covers everything a
    /// completion-plane pass produced.
    fn on_batch(&self, events: &[MonitorEvent]) {
        let mut inner = self.inner.write();
        for event in events {
            apply(&mut inner, event);
        }
    }
}

impl std::fmt::Debug for MemoryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("MemoryStore")
            .field("events", &inner.events.len())
            .field("tasks", &inner.timelines.len())
            .finish()
    }
}
