//! Shared helpers for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§5); see DESIGN.md's experiment index. Binaries
//! print the paper's reported numbers next to the reproduction's so the
//! *shape* comparison (who wins, by what factor, where curves cross) is
//! immediate.

/// Fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with sensible precision for experiment output.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format an optional value, printing `-` for absent points (e.g. a
/// framework that cannot reach a scale).
pub fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt_f).unwrap_or_else(|| "-".into())
}

/// Powers-of-two worker counts from `lo` to `hi` inclusive.
pub fn pow2_range(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut w = lo;
    while w <= hi {
        v.push(w);
        w *= 2;
    }
    v
}

/// Print a section header for experiment output.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Extract the numeric value of a top-level-unique `"key": <number>` pair
/// from a `BENCH_*.json` document. The bench files are flat
/// machine-written JSON, so a scan for the quoted key is sufficient — no
/// JSON parser is vendored. Returns `None` if the key is absent or not
/// followed by a number.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn pow2_ranges() {
        assert_eq!(pow2_range(32, 256), vec![32, 64, 128, 256]);
        assert_eq!(pow2_range(8, 8), vec![8]);
    }

    #[test]
    fn json_number_extracts_flat_keys() {
        let doc = r#"{
  "experiment": "x",
  "tps": 1234.5,
  "nested": { "inner_tps": 9.0 },
  "speedup": 2.5e1,
  "neg": -3
}"#;
        assert_eq!(json_number(doc, "tps"), Some(1234.5));
        assert_eq!(json_number(doc, "inner_tps"), Some(9.0));
        assert_eq!(json_number(doc, "speedup"), Some(25.0));
        assert_eq!(json_number(doc, "neg"), Some(-3.0));
        assert_eq!(json_number(doc, "missing"), None);
        assert_eq!(
            json_number(doc, "experiment"),
            None,
            "strings are not numbers"
        );
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1.23456), "1.23");
        assert_eq!(fmt_f(42.5), "42.5");
        assert_eq!(fmt_f(1234.5), "1234");
        assert_eq!(fmt_opt(None), "-");
    }
}
