//! Scheduler-policy experiment: makespan under skewed executor speeds.
//!
//! The paper's multi-site scenario (§4.3) runs one DataFlowKernel over
//! several executors of different sizes. Random placement (§4.1) sends
//! each executor the *same* share of tasks, so the slowest executor sets
//! the makespan. This binary pits the four routing policies against each
//! other on a deliberately skewed two-executor config — a fast pool with
//! 4x the worker slots of a slow one — and measures end-to-end makespan
//! and throughput for an embarrassingly parallel bag of fixed-cost tasks:
//!
//! - `random_hash` / `round_robin` split ~50/50, drowning the slow pool;
//! - `least_outstanding` (join-shortest-queue) adapts with no config;
//! - `capacity_weighted` splits by worker slots (80/20 here);
//! - a fifth run demonstrates backpressure: `least_outstanding` with a
//!   per-executor in-flight cap, which must not change the result.
//!
//! Arrivals are paced at the aggregate service rate (10 worker slots →
//! 10 tasks per task-length tick): the steady-state regime where routing
//! matters. In a single burst every queue is filled before the first
//! completion and no policy can rebalance after dispatch; under paced
//! arrivals a blind 50/50 split piles backlog onto the slow pool while
//! the fast pool idles, which is exactly what load-aware routing fixes.
//!
//! Usage: `fig_scheduler [--smoke] [--out FILE]`. The full run writes
//! `BENCH_scheduler.json`; `--out` redirects the JSON (used by CI to
//! compare a smoke run against the committed baseline).

use bench::{fmt_f, Table};
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use parsl_core::SchedulerPolicy;
use parsl_executors::ThreadPoolExecutor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker slots of the fast and slow executors: the 4x skew.
const FAST_WORKERS: usize = 8;
const SLOW_WORKERS: usize = 2;

/// Counts `Launched` events per executor label.
#[derive(Default)]
struct ShareSink(parking_lot::Mutex<std::collections::HashMap<String, usize>>);

impl MonitorSink for ShareSink {
    fn on_event(&self, e: &MonitorEvent) {
        if let MonitorEvent::Task {
            state: TaskState::Launched,
            executor: Some(l),
            ..
        } = e
        {
            *self.0.lock().entry(l.clone()).or_insert(0) += 1;
        }
    }
}

struct PolicyRun {
    makespan: Duration,
    tps: f64,
    fast_share: f64,
}

/// Drive `n` fixed-cost tasks through a fresh skewed two-executor kernel
/// under `policy`; returns makespan, throughput, and the fast pool's
/// traffic share.
fn run_policy(policy: SchedulerPolicy, n: usize, task_ms: u64, cap: Option<usize>) -> PolicyRun {
    let sink = Arc::new(ShareSink::default());
    let mut builder = DataFlowKernel::builder()
        .executor(ThreadPoolExecutor::with_label("fast", FAST_WORKERS))
        .executor(ThreadPoolExecutor::with_label("slow", SLOW_WORKERS))
        .scheduler(policy)
        .seed(7)
        .monitor(sink.clone());
    if let Some(c) = cap {
        builder = builder.max_inflight_per_executor(c);
    }
    let dfk = builder.build().unwrap();
    let work = dfk.python_app("work", move |_i: u64| {
        std::thread::sleep(Duration::from_millis(task_ms));
        0u8
    });
    // Pace arrivals at the aggregate service rate: one tick of task_ms
    // admits as many tasks as there are worker slots in total.
    let pace = (FAST_WORKERS + SLOW_WORKERS) as u64;
    let tick = Duration::from_millis(task_ms);
    let t0 = Instant::now();
    let mut futs = Vec::with_capacity(n);
    for i in 0..n as u64 {
        futs.push(parsl_core::call!(work, i));
        if (i + 1) % pace == 0 {
            std::thread::sleep(tick);
        }
    }
    dfk.wait_for_all();
    let makespan = t0.elapsed();
    for f in &futs {
        f.result().unwrap();
    }
    let launched = sink.0.lock();
    let fast = *launched.get("fast").unwrap_or(&0);
    let total: usize = launched.values().sum();
    dfk.shutdown();
    PolicyRun {
        makespan,
        tps: n as f64 / makespan.as_secs_f64(),
        fast_share: fast as f64 / total.max(1) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    let (n, task_ms) = if smoke { (300, 2) } else { (2000, 2) };

    println!(
        "fig_scheduler: {n} tasks x {task_ms} ms, fast={FAST_WORKERS}w vs slow={SLOW_WORKERS}w \
         (4x skew){}",
        if smoke { " (smoke)" } else { "" }
    );

    let policies = [
        ("random_hash", SchedulerPolicy::RandomHash),
        ("round_robin", SchedulerPolicy::RoundRobin),
        ("least_outstanding", SchedulerPolicy::LeastOutstanding),
        ("capacity_weighted", SchedulerPolicy::CapacityWeighted),
    ];

    let mut table = Table::new(&["policy", "makespan ms", "tasks/s", "fast share"]);
    let mut results: Vec<(&str, PolicyRun)> = Vec::new();
    for (name, policy) in policies {
        let r = run_policy(policy, n, task_ms, None);
        table.row(vec![
            name.into(),
            fmt_f(r.makespan.as_secs_f64() * 1e3),
            fmt_f(r.tps),
            format!("{:.2}", r.fast_share),
        ]);
        results.push((name, r));
    }
    // Backpressure demo: JSQ with a cap of 2 slots per worker; parked
    // tasks must drain and the makespan must stay in JSQ's ballpark.
    let capped = run_policy(
        SchedulerPolicy::LeastOutstanding,
        n,
        task_ms,
        Some(FAST_WORKERS * 2),
    );
    table.row(vec![
        "least_outstanding+cap".into(),
        fmt_f(capped.makespan.as_secs_f64() * 1e3),
        fmt_f(capped.tps),
        format!("{:.2}", capped.fast_share),
    ]);
    table.print();

    let get = |name: &str| &results.iter().find(|(k, _)| *k == name).unwrap().1;
    let random = get("random_hash");
    let least = get("least_outstanding");
    let speedup = random.makespan.as_secs_f64() / least.makespan.as_secs_f64();
    println!(
        "least_outstanding vs random_hash: {speedup:.2}x makespan improvement \
         ({} ms -> {} ms)",
        fmt_f(random.makespan.as_secs_f64() * 1e3),
        fmt_f(least.makespan.as_secs_f64() * 1e3),
    );
    if speedup <= 1.0 {
        println!("WARNING: least_outstanding did not beat random_hash");
    }

    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, false) => "BENCH_scheduler.json".to_string(),
        (None, true) => {
            println!("smoke mode: skipping BENCH_scheduler.json (pass --out to write)");
            return;
        }
    };
    let row = |r: &PolicyRun| {
        format!(
            "{{ \"makespan_ms\": {:.1}, \"tps\": {:.1}, \"fast_share\": {:.3} }}",
            r.makespan.as_secs_f64() * 1e3,
            r.tps,
            r.fast_share
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"fig_scheduler\",\n  \"workload\": \"{n} x {task_ms} ms tasks, \
         fast {FAST_WORKERS}w vs slow {SLOW_WORKERS}w (4x skew)\",\n  \"random_hash\": {},\n  \
         \"round_robin\": {},\n  \"least_outstanding\": {},\n  \"capacity_weighted\": {},\n  \
         \"least_outstanding_capped\": {},\n  \"random_hash_tps\": {:.1},\n  \
         \"least_outstanding_tps\": {:.1},\n  \"capacity_weighted_tps\": {:.1},\n  \
         \"speedup_least_vs_random\": {speedup:.3}\n}}\n",
        row(random),
        row(get("round_robin")),
        row(least),
        row(get("capacity_weighted")),
        row(&capped),
        random.tps,
        least.tps,
        get("capacity_weighted").tps,
    );
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
