//! Multi-tenant fairness experiment: interleaved tenant DAGs under
//! skewed load.
//!
//! The paper's DataFlowKernel serves one workflow; the reproduction's
//! multi-tenant plane (per-tenant in-flight quotas, weighted-deficit
//! unparking, tenant-aware `WeightedFair` placement) lets several
//! workflows share a kernel without starving each other. This binary
//! measures that claim: four light tenants and one heavy tenant with a
//! **4x DAG backlog** interleave 1000 three-task chain DAGs through one
//! thread-pool kernel, every tenant capped at the same in-flight quota
//! and equal weight.
//!
//! Reported:
//!
//! - per-tenant throughput over the **contended phase** — up to the
//!   first instant some tenant ran out of work. After that, the freed
//!   share flows to the backlogged tenant (work conservation, not
//!   unfairness), so fairness is judged only while every tenant is
//!   competing. Under equal weights the contended rates must be close,
//!   summarized by the **Jain fairness index** `(Σx)² / (n·Σx²)`
//!   (1.0 = perfectly equal shares, 1/n = one tenant monopolizes); the
//!   guard requires ≥ 0.9;
//! - **aggregate throughput** against a single-tenant run of the same
//!   3000 tasks with no quotas — fairness must cost < 10% (`tps_ratio`);
//! - a starvation check: every tenant's completion count must match its
//!   submission count (enforced, not just printed).
//!
//! Usage: `fig_fairness [--smoke] [--out FILE]`. The full run writes
//! `BENCH_fairness.json`; `--out` redirects the JSON (used by CI to
//! compare a smoke run against the committed baseline).

use bench::{fmt_f, Table};
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use parsl_core::SchedulerPolicy;
use parsl_executors::ThreadPoolExecutor;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker slots in the shared pool.
const WORKERS: usize = 8;
/// Per-tenant in-flight quota. Equal to the pool width: a tenant running
/// alone can still saturate the pool (so fairness costs no tail
/// throughput), while five contending tenants oversubscribe it 5x and
/// the weighted-deficit unpark order decides who runs.
const QUOTA: usize = WORKERS;
/// Tasks per chain DAG.
const CHAIN: usize = 3;

/// Per-tenant activity trace from monitor events: first launch and
/// every completion timestamp (for windowed rate computation).
#[derive(Default, Clone)]
struct Trace {
    first_launch: Option<Duration>,
    dones: Vec<Duration>,
}

#[derive(Default)]
struct TenantSink(parking_lot::Mutex<HashMap<u32, Trace>>);

impl MonitorSink for TenantSink {
    fn on_event(&self, e: &MonitorEvent) {
        let MonitorEvent::Task {
            state, tenant, at, ..
        } = e
        else {
            return;
        };
        let mut map = self.0.lock();
        let w = map.entry(tenant.0).or_default();
        match state {
            TaskState::Launched if w.first_launch.is_none() => w.first_launch = Some(*at),
            TaskState::Done | TaskState::Memoized => w.dones.push(*at),
            _ => {}
        }
    }
}

struct MultiRun {
    makespan: Duration,
    aggregate_tps: f64,
    /// (tenant id, tasks completed, rate during the contended phase).
    per_tenant: Vec<(u32, usize, f64)>,
    jain: f64,
}

/// Submit one `CHAIN`-long dependency chain for `tenant`; returns the
/// tail future.
fn submit_chain(
    tenant: &TenantHandle,
    app: &App<(u64,), u64>,
    seed: u64,
) -> parsl_core::AppFuture<u64> {
    let mut f = tenant.call(app, (Dep::value(seed),));
    for _ in 1..CHAIN {
        f = tenant.call(app, (Dep::future(f),));
    }
    f
}

/// Jain fairness index over per-tenant throughputs.
fn jain_index(tps: &[f64]) -> f64 {
    let n = tps.len() as f64;
    let sum: f64 = tps.iter().sum();
    let sq: f64 = tps.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    sum * sum / (n * sq)
}

/// The multi-tenant run: `light_dags` chains for each of four light
/// tenants, 4x that for the heavy tenant, submissions interleaved so
/// every tenant always has work parked behind its quota.
fn run_multi(light_dags: usize, task_ms: u64) -> MultiRun {
    let heavy_dags = 4 * light_dags;
    let sink = Arc::new(TenantSink::default());
    let mut builder = DataFlowKernel::builder()
        .executor(ThreadPoolExecutor::with_label("pool", WORKERS))
        .scheduler(SchedulerPolicy::WeightedFair)
        .seed(7)
        .monitor(sink.clone());
    // Tenant 0 is the heavy one; 1..=4 are light. Equal weights and
    // quotas: fairness must come from the admission plane, not from
    // tuning the heavy tenant down.
    for t in 0..5u32 {
        builder = builder.tenant(
            TenantId(t),
            TenantConfig {
                weight: 1,
                max_inflight: Some(QUOTA),
            },
        );
    }
    let dfk = builder.build().unwrap();
    let work = dfk.python_app("work", move |i: u64| {
        std::thread::sleep(Duration::from_millis(task_ms));
        i
    });
    let tenants: Vec<TenantHandle> = (0..5).map(|t| dfk.tenant(TenantId(t))).collect();

    let t0 = Instant::now();
    let mut futs = Vec::with_capacity(heavy_dags + 4 * light_dags);
    // Interleaved arrival: each round submits four heavy chains and one
    // chain per light tenant, so the heavy backlog is always present.
    for round in 0..light_dags as u64 {
        for k in 0..4 {
            futs.push(submit_chain(&tenants[0], &work, round * 4 + k));
        }
        for light in &tenants[1..5] {
            futs.push(submit_chain(light, &work, round));
        }
    }
    dfk.wait_for_all();
    let makespan = t0.elapsed();
    for f in &futs {
        f.result().unwrap();
    }
    let windows = sink.0.lock().clone();
    dfk.shutdown();

    // End of the contended phase: the first instant some tenant's last
    // task completed. Beyond it the drained tenant's share legitimately
    // flows to whoever still has work.
    let contended_end = (0..5u32)
        .map(|t| {
            windows
                .get(&t)
                .and_then(|w| w.dones.iter().max().copied())
                .unwrap_or_default()
        })
        .min()
        .unwrap_or_default();

    let expected = |t: u32| CHAIN * if t == 0 { heavy_dags } else { light_dags };
    let mut per_tenant: Vec<(u32, usize, f64)> = Vec::new();
    for t in 0..5u32 {
        let w = windows.get(&t).cloned().unwrap_or_default();
        assert_eq!(
            w.dones.len(),
            expected(t),
            "tenant {t} starved: {} of {} tasks completed",
            w.dones.len(),
            expected(t)
        );
        let in_window = w.dones.iter().filter(|&&at| at <= contended_end).count();
        let span = match w.first_launch {
            Some(a) if contended_end > a => (contended_end - a).as_secs_f64(),
            _ => makespan.as_secs_f64(),
        };
        per_tenant.push((t, w.dones.len(), in_window as f64 / span));
    }
    let total_tasks: usize = per_tenant.iter().map(|(_, n, _)| n).sum();
    let tps: Vec<f64> = per_tenant.iter().map(|&(_, _, x)| x).collect();
    MultiRun {
        makespan,
        aggregate_tps: total_tasks as f64 / makespan.as_secs_f64(),
        per_tenant,
        jain: jain_index(&tps),
    }
}

/// The single-tenant baseline: the same total task count as one
/// workflow, no quotas — what fairness is allowed to cost 10% of.
fn run_single(light_dags: usize, task_ms: u64) -> f64 {
    let total_dags = 8 * light_dags;
    let dfk = DataFlowKernel::builder()
        .executor(ThreadPoolExecutor::with_label("pool", WORKERS))
        .scheduler(SchedulerPolicy::WeightedFair)
        .seed(7)
        .build()
        .unwrap();
    let work = dfk.python_app("work", move |i: u64| {
        std::thread::sleep(Duration::from_millis(task_ms));
        i
    });
    let tenant = dfk.tenant(TenantId::DEFAULT);
    let t0 = Instant::now();
    let futs: Vec<_> = (0..total_dags as u64)
        .map(|i| submit_chain(&tenant, &work, i))
        .collect();
    dfk.wait_for_all();
    let makespan = t0.elapsed();
    for f in &futs {
        f.result().unwrap();
    }
    dfk.shutdown();
    (CHAIN * total_dags) as f64 / makespan.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    // Full: 4x125 + 500 = 1000 DAGs (3000 tasks). Smoke: 200 DAGs.
    let (light_dags, task_ms) = if smoke { (25, 1) } else { (125, 1) };
    let total_dags = 8 * light_dags;

    println!(
        "fig_fairness: {total_dags} chain DAGs x {CHAIN} tasks ({} heavy / 4x{} light), \
         {WORKERS} workers, quota {QUOTA}/tenant{}",
        4 * light_dags,
        light_dags,
        if smoke { " (smoke)" } else { "" }
    );

    let multi = run_multi(light_dags, task_ms);
    let single_tps = run_single(light_dags, task_ms);
    let tps_ratio = multi.aggregate_tps / single_tps;

    let mut table = Table::new(&["tenant", "dags", "tasks done", "tasks/s (contended)"]);
    for &(t, done, tps) in &multi.per_tenant {
        table.row(vec![
            if t == 0 {
                format!("tenant-{t} (heavy)")
            } else {
                format!("tenant-{t}")
            },
            format!("{}", done / CHAIN),
            format!("{done}"),
            fmt_f(tps),
        ]);
    }
    table.print();
    println!(
        "aggregate: {} tasks/s over {} ms | single-tenant baseline: {} tasks/s \
         (ratio {:.3}) | Jain index {:.3}",
        fmt_f(multi.aggregate_tps),
        fmt_f(multi.makespan.as_secs_f64() * 1e3),
        fmt_f(single_tps),
        tps_ratio,
        multi.jain
    );
    if multi.jain < 0.9 {
        println!("WARNING: Jain index below the 0.9 fairness bar");
    }
    if tps_ratio < 0.9 {
        println!("WARNING: multi-tenancy cost more than 10% aggregate throughput");
    }

    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, false) => "BENCH_fairness.json".to_string(),
        (None, true) => {
            println!("smoke mode: skipping BENCH_fairness.json (pass --out to write)");
            return;
        }
    };
    let per_tenant_json: Vec<String> = multi
        .per_tenant
        .iter()
        .map(|&(t, done, tps)| {
            format!("{{ \"tenant\": {t}, \"tasks\": {done}, \"tps\": {tps:.1} }}")
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"fig_fairness\",\n  \"workload\": \"{total_dags} chain DAGs x \
         {CHAIN} tasks, 4x-skewed heavy tenant, {WORKERS} workers, quota {QUOTA}\",\n  \
         \"per_tenant\": [\n    {}\n  ],\n  \"aggregate_tps\": {:.1},\n  \
         \"single_tenant_tps\": {:.1},\n  \"tps_ratio\": {:.3},\n  \"jain_index\": {:.3}\n}}\n",
        per_tenant_json.join(",\n    "),
        multi.aggregate_tps,
        single_tps,
        tps_ratio,
        multi.jain
    );
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
