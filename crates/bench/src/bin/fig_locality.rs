//! Data-locality experiment: wide fan-out over one shared remote input.
//!
//! The canonical data-heavy Parsl pattern (§4.5, and the sequence-analysis
//! workflows of §5): one large reference file fetched over the WAN, then a
//! wide bag of per-sample tasks all reading it. Scheme-blind routing pays
//! the transfer once *per task* — every analysis call stages its own copy
//! — and spreads the tasks with no regard for where the bytes landed.
//! This binary pits that baseline (`least_outstanding`, no cache) against
//! the data plane introduced for it: a byte-budgeted single-flight
//! [`StagingCache`] collapses the N stage-ins into one WAN transfer, and
//! [`SchedulerPolicy::DataAware`] routing scores executors by
//! `transfer_cost + α · queue_depth`, converging the fan-out on the
//! executors that hold the staged bytes while queue pressure still spills
//! overflow to the others.
//!
//! Measured per run: makespan, and total bytes moved = WAN bytes pulled
//! by transfer tasks + cross-executor bytes charged in the kernel's
//! `DataMap`. The guarded headline metrics are ratios (baseline over
//! data-aware) that scale with the fan-out degree and the compute/
//! transfer balance, so smoke mode runs the *same* workload as the full
//! run (it is short) and differs only in not writing the default
//! baseline file.
//!
//! Usage: `fig_locality [--smoke] [--out FILE]`. The full run writes
//! `BENCH_locality.json`; `--out` redirects the JSON (used by CI to
//! compare a smoke run against the committed baseline).
//!
//! [`StagingCache`]: parsl_data::StagingCache
//! [`SchedulerPolicy::DataAware`]: parsl_core::SchedulerPolicy::DataAware

use bench::{fmt_f, Table};
use parsl_core::app::Dep;
use parsl_core::datamap::{DataHints, TransferModel};
use parsl_core::prelude::*;
use parsl_core::SchedulerPolicy;
use parsl_data::{DataManager, DataManagerConfig, File, StagedFile};
use parsl_executors::ThreadPoolExecutor;
use std::time::{Duration, Instant};

/// Worker slots of the fast and slow executors: the 4x skew.
const FAST_WORKERS: usize = 8;
const SLOW_WORKERS: usize = 2;

/// Fan-out degree: per-sample tasks all reading the shared reference.
const FAN_OUT: usize = 120;

/// The shared WAN input every task reads.
const REF_URL: &str = "http://repo.example.org/reference/grch38.fa";

/// Simulated WAN setup latency — the dominant per-transfer cost, raised
/// well above the default so re-transfers actually hurt the baseline the
/// way a real WAN does.
const WAN_LATENCY_MS: u64 = 20;

struct RunResult {
    makespan: Duration,
    wan_bytes: u64,
    plane_bytes: u64,
    transfers: u64,
}

impl RunResult {
    fn total_bytes(&self) -> u64 {
        self.wan_bytes + self.plane_bytes
    }
}

/// Drive the fan-out through a fresh skewed two-executor kernel. The
/// baseline (`data_aware = false`) routes with plain JSQ and stages the
/// reference once per task; the data-aware run adds the staging cache and
/// locality-weighted routing. Both declare the same input hints, so the
/// data-plane byte accounting is identical in kind.
fn run_locality(data_aware: bool, n: usize, task_ms: u64) -> RunResult {
    let policy = if data_aware {
        SchedulerPolicy::data_aware()
    } else {
        SchedulerPolicy::LeastOutstanding
    };
    let dfk = DataFlowKernel::builder()
        .executor(ThreadPoolExecutor::with_label("fast", FAST_WORKERS))
        .executor(ThreadPoolExecutor::with_label("slow", SLOW_WORKERS))
        .scheduler(policy)
        .seed(7)
        .transfer_model(TransferModel {
            latency: Duration::from_millis(WAN_LATENCY_MS),
            bandwidth: 8_000_000_000,
        })
        .build()
        .unwrap();
    let staging_dir = std::env::temp_dir().join(format!(
        "parsl-fig-locality-{}-{}",
        std::process::id(),
        data_aware
    ));
    let dm = DataManager::new(
        &dfk,
        DataManagerConfig {
            staging_dir: staging_dir.clone(),
            wan_latency: Duration::from_millis(WAN_LATENCY_MS),
            cache_budget_bytes: if data_aware { Some(1_000_000) } else { None },
            ..Default::default()
        },
    );
    let reference = File::parse(REF_URL);
    let ref_hint = DataManager::data_ref(&reference);

    let analyze = dfk.python_app("analyze", move |sf: StagedFile, i: u64| {
        std::thread::sleep(Duration::from_millis(task_ms));
        sf.bytes.wrapping_add(i)
    });

    let t0 = Instant::now();
    let futs: Vec<_> = (0..n as u64)
        .map(|i| {
            let staged = dm.stage_in(reference.clone());
            analyze
                .invoke()
                .hints(DataHints::reading(vec![ref_hint]))
                .call((Dep::future(staged), Dep::value(i)))
        })
        .collect();
    for f in &futs {
        f.result().unwrap();
    }
    dfk.wait_for_all();
    let makespan = t0.elapsed();
    let wan_bytes = dm.wan_bytes();
    let plane_bytes = dfk.data_bytes_moved();
    let transfers = dm
        .cache_stats()
        .map(|s| s.misses)
        .unwrap_or(wan_bytes / DataManager::expected_bytes(&reference).max(1));
    dfk.shutdown();
    std::fs::remove_dir_all(&staging_dir).ok();
    RunResult {
        makespan,
        wan_bytes,
        plane_bytes,
        transfers,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    // Same workload in both modes: the guarded metrics are ratios scaled
    // by the fan-out degree and the compute/transfer balance, so a
    // trimmed smoke run would drift from the committed baseline. The full
    // run is already short (~1.5 s); smoke only skips writing the
    // default baseline file.
    let (n, task_ms) = (FAN_OUT, 4);

    println!(
        "fig_locality: {n}-way fan-out over one shared WAN input ({WAN_LATENCY_MS} ms latency), \
         fast={FAST_WORKERS}w vs slow={SLOW_WORKERS}w{}",
        if smoke { " (smoke)" } else { "" }
    );

    let jsq = run_locality(false, n, task_ms);
    let da = run_locality(true, n, task_ms);

    let mut table = Table::new(&[
        "config",
        "makespan ms",
        "WAN transfers",
        "WAN bytes",
        "plane bytes",
    ]);
    for (name, r) in [("jsq_no_cache", &jsq), ("data_aware_cache", &da)] {
        table.row(vec![
            name.into(),
            fmt_f(r.makespan.as_secs_f64() * 1e3),
            r.transfers.to_string(),
            r.wan_bytes.to_string(),
            r.plane_bytes.to_string(),
        ]);
    }
    table.print();

    let bytes_ratio = jsq.total_bytes() as f64 / da.total_bytes().max(1) as f64;
    let speedup = jsq.makespan.as_secs_f64() / da.makespan.as_secs_f64();
    println!(
        "data_aware+cache vs jsq: {bytes_ratio:.1}x fewer bytes moved, \
         {speedup:.2}x makespan ({} ms -> {} ms)",
        fmt_f(jsq.makespan.as_secs_f64() * 1e3),
        fmt_f(da.makespan.as_secs_f64() * 1e3),
    );
    if bytes_ratio < 5.0 {
        println!("WARNING: bytes-moved ratio below the 5x target");
    }
    if speedup < 1.0 {
        println!("WARNING: data-aware makespan worse than JSQ");
    }

    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, false) => "BENCH_locality.json".to_string(),
        (None, true) => {
            println!("smoke mode: skipping BENCH_locality.json (pass --out to write)");
            return;
        }
    };
    let row = |r: &RunResult| {
        format!(
            "{{ \"makespan_ms\": {:.1}, \"wan_transfers\": {}, \"wan_bytes\": {}, \
             \"plane_bytes\": {}, \"total_bytes\": {} }}",
            r.makespan.as_secs_f64() * 1e3,
            r.transfers,
            r.wan_bytes,
            r.plane_bytes,
            r.total_bytes(),
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"fig_locality\",\n  \"workload\": \"{n}-way fan-out over one \
         shared WAN input, {WAN_LATENCY_MS} ms WAN latency, fast {FAST_WORKERS}w vs slow \
         {SLOW_WORKERS}w\",\n  \"jsq_no_cache\": {},\n  \"data_aware_cache\": {},\n  \
         \"locality_bytes_moved_ratio\": {bytes_ratio:.2},\n  \
         \"locality_makespan_speedup\": {speedup:.3}\n}}\n",
        row(&jsq),
        row(&da),
    );
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}
