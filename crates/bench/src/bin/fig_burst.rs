//! Burst elasticity: square-wave load against the two controllers.
//!
//! The workload is a square wave — bursts of uniform short tasks
//! separated by idle gaps — the shape that punishes a reactive
//! controller twice: it pays the provider queue delay at the front of
//! every burst (it released everything during the gap), and its abrupt
//! scale-in at the burst tail kills running tasks, whose retries requeue
//! work and re-trigger scale-out (the fig6 thrash). The predictive
//! controller sizes on the arrival rate, rides its hysteresis band
//! through gaps, and drains instead of killing.
//!
//! Three guarded metrics, each a **simple / predictive** ratio so higher
//! is better and `bench_guard` can gate them:
//!
//! - `time_to_scale`: cold-start ramp — time from the first burst's
//!   start until 75% of peak workers are connected;
//! - `wasted_core_seconds`: worker-seconds not spent on first-attempt
//!   useful work (idle capacity + killed/re-executed attempts);
//! - `p99_ratio`: p99 task sojourn (submit → settled, retries included).
//!
//! The committed `BENCH_elasticity.json` baseline is a `--smoke` run, so
//! CI compares like for like.
//!
//! Usage: `fig_burst [--smoke] [--out FILE]`.

use bench::{fmt_f, section, Table};
use parsl_core::prelude::*;
use parsl_core::strategy::PredictiveConfig;
use parsl_executors::{HtexConfig, HtexExecutor};
use parsl_providers::{BlockPool, ProvidedExecutor, SimProvider};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKERS_PER_BLOCK: usize = 4;
const MAX_BLOCKS: usize = 4;
const TASK_MS: u64 = 150;
const GAP_MS: u64 = 350;
/// Provider queue delay: what a reactive controller pays per re-request.
const QUEUE_DELAY_MS: u64 = 150;
/// "Scaled" means 75% of peak workers connected.
const SCALE_TARGET: usize = 3 * WORKERS_PER_BLOCK;
/// Resolution floor on timing metrics (sampler period + jitter).
const FLOOR_S: f64 = 0.025;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Reactive threshold controller, abrupt scale-in.
    Simple,
    /// Little's-law controller, graceful drain.
    Predictive,
}

struct RunResult {
    /// Cold-start seconds until `SCALE_TARGET` workers connected.
    time_to_scale: f64,
    /// Worker-seconds minus useful (single-attempt) task-seconds.
    wasted_core_seconds: f64,
    /// p99 task sojourn in seconds.
    p99: f64,
    retries: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    let (bursts, burst_tasks) = if smoke { (3, 32) } else { (4, 48) };

    section("Burst elasticity — square-wave load, reactive vs predictive");
    println!(
        "{bursts} bursts x {burst_tasks} tasks x {TASK_MS} ms, {GAP_MS} ms gaps, \
         {} workers max ({MAX_BLOCKS} blocks x {WORKERS_PER_BLOCK}), provider queue delay \
         {QUEUE_DELAY_MS} ms{}",
        MAX_BLOCKS * WORKERS_PER_BLOCK,
        if smoke { " (smoke)" } else { "" }
    );

    let simple = run(Mode::Simple, bursts, burst_tasks);
    let predictive = run(Mode::Predictive, bursts, burst_tasks);

    let mut t = Table::new(&[
        "controller",
        "time-to-scale s",
        "wasted core-s",
        "p99 s",
        "retries",
    ]);
    for (name, r) in [
        ("simple (abrupt)", &simple),
        ("predictive (drain)", &predictive),
    ] {
        t.row(vec![
            name.into(),
            fmt_f(r.time_to_scale),
            fmt_f(r.wasted_core_seconds),
            fmt_f(r.p99),
            r.retries.to_string(),
        ]);
    }
    t.print();

    let time_to_scale = floored_ratio(simple.time_to_scale, predictive.time_to_scale);
    let wasted_core_seconds =
        floored_ratio(simple.wasted_core_seconds, predictive.wasted_core_seconds);
    let p99_ratio = floored_ratio(simple.p99, predictive.p99);
    println!(
        "\nsimple/predictive ratios (higher = predictive wins): \
         time_to_scale {:.2}, wasted_core_seconds {:.2}, p99 {:.2}",
        time_to_scale, wasted_core_seconds, p99_ratio
    );
    assert_eq!(
        predictive.retries, 0,
        "drain-based scale-in must not race running tasks into retries"
    );

    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, false) => "BENCH_elasticity.json".to_string(),
        (None, true) => {
            println!("smoke mode: skipping BENCH_elasticity.json (pass --out to write)");
            return;
        }
    };
    let json = format!(
        "{{\n  \"experiment\": \"fig_burst\",\n  \"workload\": \"{bursts} bursts x \
         {burst_tasks} tasks x {TASK_MS} ms, {GAP_MS} ms gaps, {} workers max\",\n  \
         \"simple\": {{ \"time_to_scale_s\": {:.3}, \"wasted_core_s\": {:.2}, \"p99_s\": \
         {:.3}, \"retries\": {} }},\n  \"predictive\": {{ \"time_to_scale_s\": {:.3}, \
         \"wasted_core_s\": {:.2}, \"p99_s\": {:.3}, \"retries\": {} }},\n  \
         \"time_to_scale\": {:.3},\n  \"wasted_core_seconds\": {:.3},\n  \"p99_ratio\": \
         {:.3}\n}}\n",
        MAX_BLOCKS * WORKERS_PER_BLOCK,
        simple.time_to_scale,
        simple.wasted_core_seconds,
        simple.p99,
        simple.retries,
        predictive.time_to_scale,
        predictive.wasted_core_seconds,
        predictive.p99,
        predictive.retries,
        time_to_scale,
        wasted_core_seconds,
        p99_ratio,
    );
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Higher-is-better ratio with a resolution floor on both sides, so a
/// near-zero predictive measurement cannot blow the ratio up (or a
/// near-zero simple one collapse it) on sampler noise.
fn floored_ratio(simple: f64, predictive: f64) -> f64 {
    simple.max(FLOOR_S) / predictive.max(FLOOR_S)
}

fn run(mode: Mode, bursts: usize, burst_tasks: usize) -> RunResult {
    let store = Arc::new(parsl_monitor::MemoryStore::new());
    let htex = Arc::new(HtexExecutor::new(HtexConfig {
        label: "burst-htex".into(),
        workers_per_node: WORKERS_PER_BLOCK,
        nodes_per_block: 1,
        init_blocks: 0,
        prefetch: 0,
        batch_size: 4,
        ..Default::default()
    }));

    let provider = SimProvider::builder()
        .nodes(MAX_BLOCKS)
        .queue_delay(Duration::from_millis(QUEUE_DELAY_MS))
        .build();
    let mut pool = BlockPool::builder(provider)
        .nodes_per_block(1)
        .workers_per_node(WORKERS_PER_BLOCK)
        .min_blocks(1)
        .max_blocks(MAX_BLOCKS)
        .poll_interval(Duration::from_millis(20))
        .on_block_up({
            let htex = Arc::clone(&htex);
            move |nodes| {
                for _ in 0..nodes {
                    htex.add_node();
                }
            }
        })
        .on_block_down({
            // The abrupt path: releasing a provider job kills the
            // allocation out from under its manager (the paper's
            // scancel), so running tasks die and surface as retries
            // after heartbeat loss.
            let htex = Arc::clone(&htex);
            move |nodes| {
                for _ in 0..nodes {
                    if let Some(addr) = htex.nodes().last().cloned() {
                        htex.kill_node(&addr);
                    }
                }
            }
        });
    if mode == Mode::Predictive {
        pool = pool
            .on_block_drain({
                let htex = Arc::clone(&htex);
                move |nodes| {
                    for _ in 0..nodes {
                        htex.remove_node();
                    }
                }
            })
            .drained_probe({
                let htex = Arc::clone(&htex);
                move || htex.draining_nodes()
            });
    }
    let strategy = match mode {
        Mode::Simple => StrategyConfig::simple(1.0),
        Mode::Predictive => StrategyConfig::predictive(PredictiveConfig {
            // Headroom (ρ = 0.7) plus a wide hysteresis band: capacity
            // rides through the short gaps instead of flapping, so the
            // next burst starts against warm workers.
            target_utilization: 0.7,
            hysteresis: 0.5,
            default_service: Duration::from_millis(TASK_MS),
            drain: true,
        }),
    };
    let dfk = DataFlowKernel::builder()
        .executor(ProvidedExecutor::new(Arc::clone(&htex), pool.build()))
        .strategy(strategy.interval(Duration::from_millis(50)))
        .retries(3)
        .monitor(store.clone())
        .build()
        .unwrap();

    // Sample connected workers for the worker-seconds integral and the
    // time-to-scale detection.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let series: Arc<parking_lot::Mutex<Vec<(Instant, usize)>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let series = Arc::clone(&series);
        let htex = Arc::clone(&htex);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                series
                    .lock()
                    .push((Instant::now(), htex.connected_workers()));
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let task = dfk.python_app("burst_task", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        1u8
    });

    let t0 = Instant::now();
    let mut burst_starts = Vec::with_capacity(bursts);
    let mut latencies: Vec<f64> = Vec::with_capacity(bursts * burst_tasks);
    for b in 0..bursts {
        let start = Instant::now();
        burst_starts.push(start);
        let futs: Vec<_> = (0..burst_tasks)
            .map(|_| parsl_core::call!(task, TASK_MS))
            .collect();
        for f in &futs {
            f.result().expect("burst task completes");
            latencies.push(start.elapsed().as_secs_f64());
        }
        if b + 1 < bursts {
            std::thread::sleep(Duration::from_millis(GAP_MS));
        }
    }
    let end = Instant::now();

    stop.store(true, std::sync::atomic::Ordering::Release);
    let _ = sampler.join();

    // Worker-seconds over [t0, end], and per-burst time-to-scale.
    let series = series.lock();
    let mut worker_seconds = 0.0;
    for w in series.windows(2) {
        let (ta, v) = w[0];
        let (tb, _) = w[1];
        let b = tb.min(end);
        if b > ta && ta >= t0 {
            worker_seconds += v as f64 * (b - ta).as_secs_f64();
        }
    }
    // Cold-start ramp: first burst only. Later bursts depend on what each
    // controller happened to hold through the gap (noisy either way);
    // the cold ramp is the stable responsiveness property worth gating.
    let start = burst_starts[0];
    let time_to_scale = series
        .iter()
        .find(|&&(at, v)| at >= start && v >= SCALE_TARGET)
        .map(|&(at, _)| (at - start).as_secs_f64())
        .unwrap_or_else(|| (end - start).as_secs_f64());
    drop(series);

    dfk.shutdown();
    let retries = store
        .events()
        .iter()
        .filter(|e| matches!(e, parsl_core::MonitorEvent::Retry { .. }))
        .count();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let p99_idx = ((latencies.len() as f64) * 0.99).ceil() as usize - 1;
    let useful = (bursts * burst_tasks) as f64 * (TASK_MS as f64 / 1e3);
    RunResult {
        time_to_scale,
        wasted_core_seconds: (worker_seconds - useful).max(0.0),
        p99: latencies[p99_idx.min(latencies.len() - 1)],
        retries,
    }
}
