//! Figure-5-style throughput experiment: per-task vs batched submission.
//!
//! The paper's HTEX sustains >1k tasks/s by batching task traffic
//! (§4.3.1, §5.2). This binary measures the submission-path win on two
//! planes:
//!
//! - **real plane**: an `HtexExecutor` over the in-process fabric with a
//!   per-message cost modelling a real transport's syscall/framing floor
//!   (20 µs — conservative next to the 180 µs per-message share profiled
//!   into [`simcluster::calib::SUBMIT_PER_MSG`]). N noop tasks are driven
//!   end-to-end per-task ([`Executor::submit`]) and batched
//!   ([`Executor::submit_batch`]), plus the full DFK wide-fan-out path
//!   where the ready-queue drainer forms the batches itself;
//! - **model plane**: [`FrameworkModel::dispatch_rate`] at paper scale
//!   (512 workers), batch 1 / 8 / 64;
//! - **tcp plane**: the same HTEX over real loopback TCP, dispatching to
//!   spawned `parsl-worker` processes — the deployment shape, measured
//!   end-to-end per-task and batched.
//!
//! Usage: `fig5_throughput [--smoke] [--out FILE] [--transport T]` where
//! `T` is `inproc`, `tcp`, or `both` (default: `inproc` for smoke runs,
//! `both` for full runs — so the worker binary is only required when the
//! TCP plane is requested). The full run writes `BENCH_throughput.json`
//! to the working directory; `--smoke` is a small CI-sized run that
//! exercises the same paths and skips the file unless `--out` names one
//! (CI uses that to feed the bench-regression guard).

use bench::{fmt_f, Table};
use crossbeam::channel::unbounded;
use parsl_core::executor::{Executor, ExecutorContext, TaskSpec};
use parsl_core::registry::{AppOptions, AppRegistry, RegisteredApp};
use parsl_core::types::{ResourceSpec, TaskId};
use parsl_core::DataFlowKernel;
use parsl_executors::{FrameworkModel, HtexConfig, HtexExecutor, TcpHtexOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-message transport cost charged by the fabric (see module docs).
const PER_MESSAGE_COST: Duration = Duration::from_micros(20);

fn fabric() -> nexus::Fabric {
    nexus::Fabric::with_config(nexus::FabricConfig {
        per_message_cost: PER_MESSAGE_COST,
        ..Default::default()
    })
}

fn htex_config(label: &str) -> HtexConfig {
    HtexConfig {
        label: label.into(),
        workers_per_node: 4,
        nodes_per_block: 2,
        init_blocks: 1,
        prefetch: 64,
        batch_size: 64,
        ..Default::default()
    }
}

fn noop_app(registry: &Arc<AppRegistry>) -> Arc<RegisteredApp> {
    registry.register(
        "noop",
        parsl_core::types::AppKind::Native,
        "(u64)->u64",
        Arc::new(|args| {
            let (x,): (u64,) = wire::from_bytes(args)
                .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))?;
            wire::to_bytes(&x)
                .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))
        }),
        AppOptions::default(),
    )
}

fn specs(app: &Arc<RegisteredApp>, base: u64, n: usize) -> Vec<TaskSpec> {
    (0..n as u64)
        .map(|i| TaskSpec {
            id: TaskId(base + i),
            app: Arc::clone(app),
            args: bytes::Bytes::from(wire::to_bytes(&(i,)).unwrap()),
            resources: ResourceSpec::default(),
            attempt: 0,
            tenant: parsl_core::types::TenantId::DEFAULT,
            items: 1,
        })
        .collect()
}

/// Drive `n` noop tasks through a fresh HTEX, per-task or batched.
/// Returns end-to-end tasks/second.
fn run_htex(n: usize, batched: bool) -> f64 {
    let htex = HtexExecutor::on_fabric(htex_config("htex"), fabric());
    drive_htex(htex, n, batched)
}

/// The same workload over real loopback TCP: the interchange listens on a
/// [`nexus::TcpHub`] and `parsl-worker` processes connect back (resolve
/// the binary with `PARSL_WORKER_BIN` or as a sibling of this one).
///
/// Unlike the in-proc plane, loopback sockets carry no modelled
/// per-message cost, so toggling the submission call alone leaves both
/// modes bottlenecked on the same internally-batched dispatch/result
/// plane. The contrast measured here is the paper's batching knob end to
/// end: `batched` runs the full batching stack (submit_batch + dispatch
/// and result frames of 64), per-task turns it off (submit + every hop
/// one frame per task).
fn run_htex_tcp(n: usize, batched: bool) -> f64 {
    // One node keeps the thread count down: on small CI boxes the real
    // processes time-slice against the client, and scheduler noise
    // swamps the measurement. Median of three runs for the same reason.
    let mut rates: Vec<f64> = (0..3)
        .map(|_| {
            let mut cfg = htex_config("htex-tcp");
            cfg.nodes_per_block = 1;
            cfg.workers_per_node = 2;
            if !batched {
                cfg.batch_size = 1;
            }
            let htex =
                HtexExecutor::tcp(cfg, TcpHtexOptions::default()).expect("bind loopback hub");
            drive_htex(htex, n, batched)
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[1]
}

fn drive_htex(htex: HtexExecutor, n: usize, batched: bool) -> f64 {
    let registry = AppRegistry::new();
    let app = noop_app(&registry);
    let (tx, rx) = unbounded();
    htex.start(ExecutorContext {
        completions: tx,
        registry: Arc::clone(&registry),
    })
    .expect("start htex");

    // Completion frames carry batches; count outcomes, not messages.
    let drain = |count: usize, timeout: Duration| {
        let mut seen = 0;
        while seen < count {
            seen += rx.recv_timeout(timeout).expect("tasks complete").len();
        }
    };

    // Warm-up: managers registered, queues primed.
    let warm = 50.min(n);
    htex.submit_batch(specs(&app, 1_000_000, warm)).unwrap();
    drain(warm, Duration::from_secs(10));

    let tasks = specs(&app, 0, n);
    let t0 = Instant::now();
    if batched {
        htex.submit_batch(tasks).unwrap();
    } else {
        for t in tasks {
            htex.submit(t).unwrap();
        }
    }
    drain(n, Duration::from_secs(60));
    let elapsed = t0.elapsed();
    htex.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

/// The full DFK path: one root gating an `n`-wide fan-out on HTEX. The
/// completion cascade makes all children ready at once, so the DFK's
/// ready-queue drainer ships them as `submit_batch` frames.
fn run_dfk_fanout(n: usize) -> f64 {
    let htex = HtexExecutor::on_fabric(htex_config("htex"), fabric());
    let dfk = DataFlowKernel::builder()
        .executor_arc(Arc::new(htex))
        .build()
        .unwrap();
    let root = dfk.python_app("root", || 0u64);
    let child = dfk.python_app("child", |gate: u64, i: u64| gate + i);
    let t0 = Instant::now();
    let g = parsl_core::call!(root);
    let futs: Vec<_> = (0..n as u64)
        .map(|i| {
            child.call((
                parsl_core::Dep::future(g.clone()),
                parsl_core::Dep::value(i),
            ))
        })
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64, "fan-out child {i}");
    }
    let elapsed = t0.elapsed();
    dfk.shutdown();
    (n + 1) as f64 / elapsed.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    let transport = args
        .iter()
        .position(|a| a == "--transport")
        .map(|i| args.get(i + 1).expect("--transport needs a value").clone())
        .unwrap_or_else(|| {
            if smoke {
                "inproc".into()
            } else {
                "both".into()
            }
        });
    let (run_inproc, run_tcp) = match transport.as_str() {
        "inproc" => (true, false),
        "tcp" => (false, true),
        "both" => (true, true),
        other => panic!("--transport must be inproc|tcp|both, got {other}"),
    };
    let n = if smoke { 300 } else { 5000 };

    println!(
        "fig5_throughput: HTEX submission path, n={n}, transport {transport}, \
         per-message cost {:?}{}",
        PER_MESSAGE_COST,
        if smoke { " (smoke)" } else { "" }
    );

    let mut table = Table::new(&["path", "tasks/s"]);
    // JSON fields accumulate per plane so a single-plane run writes a
    // partial file the bench guard can still key into.
    let mut fields: Vec<String> = vec![
        "\"experiment\": \"fig5_throughput\"".into(),
        format!("\"workload\": \"wide fan-out, {n} noop tasks, HTEX {transport} path\""),
        format!("\"per_message_cost_us\": {}", PER_MESSAGE_COST.as_micros()),
    ];

    let mut inproc_speedup = None;
    if run_inproc {
        let per_task = run_htex(n, false);
        let batched = run_htex(n, true);
        let speedup = batched / per_task;
        inproc_speedup = Some(speedup);
        let dfk_fanout = run_dfk_fanout(n);
        table.row(vec!["htex per-task submit".into(), fmt_f(per_task)]);
        table.row(vec!["htex submit_batch".into(), fmt_f(batched)]);
        table.row(vec![
            "htex batched speedup".into(),
            format!("{speedup:.2}x"),
        ]);
        table.row(vec!["dfk fan-out (batched e2e)".into(), fmt_f(dfk_fanout)]);
        fields.push(format!("\"htex_per_task_tps\": {per_task:.1}"));
        fields.push(format!("\"htex_batched_tps\": {batched:.1}"));
        fields.push(format!("\"batched_speedup\": {speedup:.3}"));
        fields.push(format!("\"dfk_fanout_tps\": {dfk_fanout:.1}"));
    }

    let mut tcp_speedup = None;
    if run_tcp {
        // Loopback TCP completes 300 tasks in ~1.5 ms — pure noise. The
        // TCP plane needs a floor on n for the rates to mean anything,
        // smoke or not.
        let n = n.max(2000);
        let per_task = run_htex_tcp(n, false);
        let batched = run_htex_tcp(n, true);
        let speedup = batched / per_task;
        tcp_speedup = Some(speedup);
        table.row(vec!["tcp per-task submit".into(), fmt_f(per_task)]);
        table.row(vec!["tcp submit_batch".into(), fmt_f(batched)]);
        table.row(vec!["tcp batched speedup".into(), format!("{speedup:.2}x")]);
        fields.push(format!("\"htex_tcp_per_task_tps\": {per_task:.1}"));
        fields.push(format!("\"htex_tcp_batched_tps\": {batched:.1}"));
        fields.push(format!("\"tcp_batched_speedup\": {speedup:.3}"));
    }

    // Model plane: paper-scale dispatch rates.
    let model = FrameworkModel::htex();
    let m1 = model.dispatch_rate(512, 1).unwrap();
    let m8 = model.dispatch_rate(512, 8).unwrap();
    let m64 = model.dispatch_rate(512, 64).unwrap();
    table.row(vec!["model: 512 workers, batch 1".into(), fmt_f(m1)]);
    table.row(vec!["model: 512 workers, batch 8".into(), fmt_f(m8)]);
    table.row(vec!["model: 512 workers, batch 64".into(), fmt_f(m64)]);
    table.print();
    fields.push(format!(
        "\"model_512w_tps\": {{ \"batch_1\": {m1:.1}, \"batch_8\": {m8:.1}, \"batch_64\": {m64:.1} }}"
    ));

    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, false) => "BENCH_throughput.json".to_string(),
        (None, true) => {
            println!("smoke mode: skipping BENCH_throughput.json (pass --out to write)");
            return;
        }
    };

    let json = format!("{{\n  {}\n}}\n", fields.join(",\n  "));
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
    if let Some(s) = inproc_speedup {
        if s < 1.5 {
            println!("WARNING: batched speedup {s:.2}x below the 1.5x target");
        }
    }
    if let Some(s) = tcp_speedup {
        if s < 3.0 {
            println!("WARNING: tcp batched speedup {s:.2}x below the 3x target");
        }
    }
}
