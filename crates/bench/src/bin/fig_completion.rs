//! Completion-plane throughput: per-task vs batched result collection.
//!
//! PR 2 batched the *outbound* half of the DFK loop (submission); this
//! experiment measures the *inbound* half. Two workloads, both run with
//! memoization + write-through checkpointing (§3.7) and a CSV monitoring
//! sink (§4.6) attached, so every completion pays the full real-campaign
//! pipeline: shard lock, checkpoint append, monitor event, dispatch
//! cycle.
//!
//! - **fan-in storm** (headline): N independent tasks all execute up
//!   front on a holding executor, their futures joined into one fan-in.
//!   The timer starts when the held outcomes are *released* and stops
//!   when every future (including the join) has resolved — a pure
//!   measurement of the collection plane absorbing a completion storm.
//! - **diamond cascade** (end-to-end): a field of a→(b,c)→d joins runs
//!   live, so completions and the dispatches they trigger interleave.
//!
//! The two collection modes differ exactly as pre-/post-PR-5:
//!
//! - **per-task**: outcomes cross the completion channel as one-element
//!   frames (the old executor clients exploded every result frame) and
//!   `completion_batching(false)` makes the collector run the whole
//!   completion pipeline once per task;
//! - **batched** (default): outcomes ship as wide frames and the
//!   collector drains greedily into `handle_outcome_batch`, amortizing
//!   shard locks, the checkpoint writer lock, the monitor sink, and the
//!   dispatch-drain cycle.
//!
//! The run also asserts the §3.7 equivalence: checkpoint files from both
//! modes hold identical frame multisets (byte-equivalent modulo order).
//!
//! Usage: `fig_completion [--smoke] [--out FILE]`. The committed
//! `BENCH_completion.json` baseline is a `--smoke` run (CI compares its
//! own smoke numbers against it, like for like), so smoke mode writes it
//! by default and a full run only writes where `--out` points.

use bench::{fmt_f, Table};
use bytes::Bytes;
use parsl_core::error::TaskError;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::prelude::*;
use parsl_monitor::CsvSink;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Frame width modeling the new executor clients (interchange result
/// frames); per-task mode uses width 1 (the old exploded sends).
const BATCHED_FRAME: usize = 512;

// ---------------------------------------------------------------------------
// Storm executor: executes trivially off-thread. While `holding`, outcomes
// accumulate; `release()` ships them all, chunked at the configured frame
// width. After release it passes outcomes through live (same framing).
// ---------------------------------------------------------------------------

struct StormState {
    ctx: parking_lot::Mutex<Option<ExecutorContext>>,
    held: parking_lot::Mutex<Vec<TaskOutcome>>,
    holding: AtomicBool,
    executed: AtomicUsize,
    frame: usize,
}

struct StormExecutor {
    state: Arc<StormState>,
    tx: parking_lot::Mutex<Option<crossbeam::channel::Sender<Vec<TaskSpec>>>>,
    handle: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl StormExecutor {
    fn new(frame: usize, holding: bool) -> Self {
        StormExecutor {
            state: Arc::new(StormState {
                ctx: parking_lot::Mutex::new(None),
                held: parking_lot::Mutex::new(Vec::new()),
                holding: AtomicBool::new(holding),
                executed: AtomicUsize::new(0),
                frame,
            }),
            tx: parking_lot::Mutex::new(None),
            handle: parking_lot::Mutex::new(None),
        }
    }

    fn state(&self) -> Arc<StormState> {
        Arc::clone(&self.state)
    }
}

impl StormState {
    fn deliver(&self, outcomes: Vec<TaskOutcome>) -> bool {
        let Some(ctx) = self.ctx.lock().clone() else {
            return false;
        };
        let mut outcomes = outcomes;
        while !outcomes.is_empty() {
            let rest = outcomes.split_off(outcomes.len().min(self.frame));
            if ctx.completions.send(outcomes).is_err() {
                return false;
            }
            outcomes = rest;
        }
        true
    }

    /// Flush everything held and switch to live passthrough. The flip
    /// and the take happen under the `held` lock — the same lock the
    /// worker's hold-check takes — so no outcome can land in a buffer
    /// that has already been drained.
    fn release(&self) {
        let held = {
            let mut held = self.held.lock();
            self.holding.store(false, Ordering::Release);
            std::mem::take(&mut *held)
        };
        self.deliver(held);
    }

    fn executed(&self) -> usize {
        self.executed.load(Ordering::Acquire)
    }
}

impl Executor for StormExecutor {
    fn label(&self) -> &str {
        "storm"
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.state.ctx.lock() = Some(ctx);
        let state = Arc::clone(&self.state);
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<TaskSpec>>();
        let handle = std::thread::Builder::new()
            .name("storm-exec".into())
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    let outcomes: Vec<TaskOutcome> = batch
                        .iter()
                        .map(|t| {
                            let result = (t.app.func)(&t.args)
                                .map(Bytes::from)
                                .map_err(TaskError::App);
                            TaskOutcome::new(t.id, t.attempt, result)
                        })
                        .collect();
                    // Decide hold-vs-deliver under the held lock so a
                    // concurrent release() cannot drain the buffer
                    // between our holding check and our append (which
                    // would strand this batch forever).
                    let deliver_now = {
                        let mut held = state.held.lock();
                        if state.holding.load(Ordering::Acquire) {
                            held.extend(outcomes);
                            None
                        } else {
                            Some(outcomes)
                        }
                    };
                    state.executed.fetch_add(batch.len(), Ordering::AcqRel);
                    if let Some(outcomes) = deliver_now {
                        if !state.deliver(outcomes) {
                            return;
                        }
                    }
                }
            })
            .map_err(|e| ExecutorError::Comm(e.to_string()))?;
        *self.tx.lock() = Some(tx);
        *self.handle.lock() = Some(handle);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        self.submit_batch(vec![task])
    }

    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        self.tx
            .lock()
            .as_ref()
            .ok_or(ExecutorError::NotRunning)?
            .send(tasks)
            .map_err(|_| ExecutorError::NotRunning)
    }

    fn outstanding(&self) -> usize {
        0
    }

    fn connected_workers(&self) -> usize {
        1
    }

    fn shutdown(&self) {
        self.tx.lock().take();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
        self.state.ctx.lock().take();
    }
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

/// Build a DFK wired for the full completion pipeline (checkpoint + CSV
/// monitor) in the given collection mode.
fn build_dfk(
    executor: StormExecutor,
    ckpt: &std::path::Path,
    csv: &std::path::Path,
    batched: bool,
) -> Arc<DataFlowKernel> {
    let _ = std::fs::remove_file(ckpt);
    DataFlowKernel::builder()
        .executor(executor)
        .memoize(true)
        .checkpoint_file(ckpt)
        .monitor(Arc::new(CsvSink::create(csv).expect("create csv sink")))
        .completion_batching(batched)
        .build()
        .unwrap()
}

/// Read and sort a checkpoint file's frames (the order-insensitive
/// equivalence witness).
fn checkpoint_frames(path: &std::path::Path) -> Vec<Vec<u8>> {
    let file = std::fs::File::open(path).expect("checkpoint written");
    let mut reader = wire::FrameReader::new(std::io::BufReader::new(file));
    let mut frames = Vec::new();
    while let Some(frame) = reader.read().expect("checkpoint readable") {
        frames.push(frame);
    }
    frames.sort();
    frames
}

/// Fan-in storm: `n` independent tasks execute and are held; the timer
/// covers release → every future resolved (the join included). Returns
/// (collection tasks/s, checkpoint frames).
fn run_storm(dir: &std::path::Path, n: usize, batched: bool) -> (f64, Vec<Vec<u8>>) {
    let mode = if batched { "batched" } else { "per-task" };
    let ckpt = dir.join(format!("storm-{mode}.ckpt"));
    let csv = dir.join(format!("storm-{mode}.csv"));
    let executor = StormExecutor::new(if batched { BATCHED_FRAME } else { 1 }, true);
    let state = executor.state();
    let dfk = build_dfk(executor, &ckpt, &csv, batched);

    let work = dfk.python_app("work", |i: u64| i * 3 + 1);
    let sum = dfk.python_app("sum", |xs: Vec<u64>| xs.iter().sum::<u64>());
    let futs: Vec<_> = (0..n as u64).map(|i| parsl_core::call!(work, i)).collect();
    let joined = parsl_core::combinators::join_all(&dfk, futs.clone());
    let total = sum.call((Dep::future(joined),));

    // Wait until the whole field has executed and is held.
    while state.executed() < n {
        std::thread::yield_now();
    }

    let t0 = Instant::now();
    state.release();
    assert_eq!(
        total.result().unwrap(),
        (0..n as u64).map(|i| i * 3 + 1).sum::<u64>(),
        "fan-in sum"
    );
    dfk.wait_for_all();
    let elapsed = t0.elapsed();
    let tasks = dfk.task_count();
    dfk.shutdown();
    (
        tasks as f64 / elapsed.as_secs_f64(),
        checkpoint_frames(&ckpt),
    )
}

/// Diamond cascade, end to end: `d` independent a→(b,c)→d joins run live
/// (no holding), so completions interleave with the dispatches they
/// unlock. Returns (tasks/s, checkpoint frames).
fn run_diamonds(dir: &std::path::Path, d: usize, batched: bool) -> (f64, Vec<Vec<u8>>) {
    let mode = if batched { "batched" } else { "per-task" };
    let ckpt = dir.join(format!("dia-{mode}.ckpt"));
    let csv = dir.join(format!("dia-{mode}.csv"));
    let executor = StormExecutor::new(if batched { BATCHED_FRAME } else { 1 }, false);
    let dfk = build_dfk(executor, &ckpt, &csv, batched);

    let top = dfk.python_app("dia_top", |d: u64| d * 3);
    let left = dfk.python_app("dia_left", |x: u64| x + 1);
    let right = dfk.python_app("dia_right", |x: u64| x + 2);
    let join = dfk.python_app("dia_join", |l: u64, r: u64| l * r);

    let t0 = Instant::now();
    let futs: Vec<_> = (0..d as u64)
        .map(|i| {
            let t = parsl_core::call!(top, i);
            let l = left.call((Dep::future(t.clone()),));
            let r = right.call((Dep::future(t),));
            join.call((Dep::future(l), Dep::future(r)))
        })
        .collect();
    for (i, f) in futs.iter().enumerate() {
        let i = i as u64;
        assert_eq!(
            f.result().unwrap(),
            (i * 3 + 1) * (i * 3 + 2),
            "diamond {i}"
        );
    }
    dfk.wait_for_all();
    let elapsed = t0.elapsed();
    let tasks = dfk.task_count();
    dfk.shutdown();
    (
        tasks as f64 / elapsed.as_secs_f64(),
        checkpoint_frames(&ckpt),
    )
}

fn best_of<T>(reps: usize, mut run: impl FnMut() -> (f64, T)) -> (f64, T) {
    let mut best = run();
    for _ in 1..reps {
        let next = run();
        if next.0 > best.0 {
            best = next;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    // Smoke keeps the per-task phases CI-sized but the storm wide enough
    // that the batched phase measures milliseconds, not scheduler jitter.
    let (storm_n, diamonds, reps) = if smoke {
        (8000, 300, 5)
    } else {
        (20000, 2000, 5)
    };

    let dir = std::env::temp_dir().join(format!("parsl-fig-completion-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    println!(
        "fig_completion: storm {storm_n} + {diamonds} diamonds, best of {reps}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let (storm_pt, storm_pt_ckpt) = best_of(reps, || run_storm(&dir, storm_n, false));
    let (storm_b, storm_b_ckpt) = best_of(reps, || run_storm(&dir, storm_n, true));
    let storm_speedup = storm_b / storm_pt;

    let (dia_pt, dia_pt_ckpt) = best_of(reps, || run_diamonds(&dir, diamonds, false));
    let (dia_b, dia_b_ckpt) = best_of(reps, || run_diamonds(&dir, diamonds, true));
    let dia_speedup = dia_b / dia_pt;

    // §3.7 equivalence: both modes checkpoint the same frames.
    let equivalent = storm_pt_ckpt == storm_b_ckpt && dia_pt_ckpt == dia_b_ckpt;
    assert!(
        equivalent,
        "checkpoint files diverged between collection modes \
         (storm {} vs {}, diamonds {} vs {} frames)",
        storm_pt_ckpt.len(),
        storm_b_ckpt.len(),
        dia_pt_ckpt.len(),
        dia_b_ckpt.len()
    );

    let mut table = Table::new(&["workload", "per-task t/s", "batched t/s", "speedup"]);
    table.row(vec![
        format!("fan-in storm ({storm_n})"),
        fmt_f(storm_pt),
        fmt_f(storm_b),
        format!("{storm_speedup:.2}x"),
    ]);
    table.row(vec![
        format!("diamond cascade ({diamonds})"),
        fmt_f(dia_pt),
        fmt_f(dia_b),
        format!("{dia_speedup:.2}x"),
    ]);
    table.print();
    println!(
        "checkpoint equivalence: ok ({} + {} frames, byte-equal modulo order)",
        storm_b_ckpt.len(),
        dia_b_ckpt.len()
    );

    let _ = std::fs::remove_dir_all(&dir);

    // Unlike the other figure binaries, the committed baseline here is a
    // *smoke* run (CI compares smoke against it, like for like), so only
    // smoke mode writes BENCH_completion.json by default — a full run
    // must name its output explicitly, lest it silently replace the
    // baseline with incomparable full-scale numbers.
    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, true) => "BENCH_completion.json".to_string(),
        (None, false) => {
            println!(
                "full mode: skipping BENCH_completion.json (the committed baseline \
                 is a --smoke run; pass --out to write elsewhere)"
            );
            return;
        }
    };

    let json = format!(
        "{{\n  \"experiment\": \"fig_completion\",\n  \"workload\": \"fan-in storm {storm_n} (collection plane only) + {diamonds} diamonds e2e, checkpoint + csv monitor, best of {reps}\",\n  \"storm_per_task_tps\": {storm_pt:.1},\n  \"storm_batched_tps\": {storm_b:.1},\n  \"storm_speedup\": {storm_speedup:.3},\n  \"diamond_per_task_tps\": {dia_pt:.1},\n  \"diamond_batched_tps\": {dia_b:.1},\n  \"diamond_speedup\": {dia_speedup:.3},\n  \"checkpoint_equivalent\": {},\n  \"checkpoint_frames\": {}\n}}\n",
        if equivalent { 1 } else { 0 },
        storm_b_ckpt.len() + dia_b_ckpt.len(),
    );
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
    if storm_speedup < 2.0 {
        println!("WARNING: storm speedup {storm_speedup:.2}x below the 2x target");
    }
}
