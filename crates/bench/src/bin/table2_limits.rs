//! Table 2: capabilities and capacities of Parsl executors and other
//! parallel Python tools.
//!
//! Three columns, reproduced the way the paper measured them:
//! - **max workers / max nodes**: add workers until connections fail
//!   (Blue Waters, one worker per integer scheduling unit, 32/node).
//!   HTEX and EXEX were allocation-limited at 2048 / 8192 nodes — we
//!   report the paper's allocation-limited points with `*`, like the
//!   paper's footnote;
//! - **max tasks/s**: 50 000 no-op tasks on the Midway model at a worker
//!   count in the framework's sweet spot.

use baselines::model as baseline_models;
use bench::{fmt_f, section, Table};
use parsl_executors::model::FrameworkModel;
use simcluster::machines;
use simnet::SimTime;

struct Row {
    model: FrameworkModel,
    paper_workers: usize,
    paper_nodes: usize,
    paper_tput: f64,
    allocation_limited: bool,
}

fn main() {
    let bw = machines::blue_waters();
    let midway = machines::midway();
    let rows = vec![
        Row {
            model: baseline_models::ipp(),
            paper_workers: 2048,
            paper_nodes: 64,
            paper_tput: 330.0,
            allocation_limited: false,
        },
        Row {
            model: FrameworkModel::htex(),
            paper_workers: 65_536,
            paper_nodes: 2048,
            paper_tput: 1181.0,
            allocation_limited: true,
        },
        Row {
            model: FrameworkModel::exex(),
            paper_workers: 262_144,
            paper_nodes: 8192,
            paper_tput: 1176.0,
            allocation_limited: true,
        },
        Row {
            model: baseline_models::fireworks(),
            paper_workers: 1024,
            paper_nodes: 32,
            paper_tput: 4.0,
            allocation_limited: false,
        },
        Row {
            model: baseline_models::dask(),
            paper_workers: 8192,
            paper_nodes: 256,
            paper_tput: 2617.0,
            allocation_limited: false,
        },
    ];

    section("Table 2 — max workers / max nodes / max tasks per second");
    let mut t = Table::new(&[
        "framework",
        "max workers",
        "paper",
        "max nodes",
        "paper",
        "tasks/s",
        "paper",
    ]);
    for row in &rows {
        // Scale limit: grow until the model refuses, capped at the paper's
        // allocation-limited point for HTEX/EXEX.
        let framework_limit = row.model.max_workers(bw.total_workers());
        let (max_workers, star) = if row.allocation_limited {
            (framework_limit.min(row.paper_workers), "*")
        } else {
            (framework_limit, "")
        };
        let max_nodes = max_workers / bw.workers_per_node;

        // Throughput: measured at a modest worker count where the central
        // component, not worker capacity or upkeep, is the bottleneck.
        let tput_workers = 64.min(max_workers);
        let tput = row
            .model
            .run_campaign(
                50_000,
                tput_workers,
                SimTime::ZERO,
                midway.one_way_latency(),
            )
            .map(|r| r.throughput)
            .unwrap_or(0.0);

        t.row(vec![
            row.model.name.to_string(),
            format!("{max_workers}{star}"),
            row.paper_workers.to_string(),
            format!("{max_nodes}{star}"),
            row.paper_nodes.to_string(),
            fmt_f(tput),
            fmt_f(row.paper_tput),
        ]);
    }
    t.print();
    println!("* allocation-limited in the paper (not a framework limit); the model's");
    println!("  own connection ceiling is higher and the reported value is clamped to");
    println!("  the paper's tested allocation.");
}
