//! Figure 4 (top row): strong scaling on Blue Waters.
//!
//! 50 000 tasks (5000 for FireWorks, matching the paper's reduced run)
//! of duration {0, 10, 100, 1000 ms}, executed over 32 … 262 144 workers.
//! Reports completion time; `-` marks scales a framework cannot reach
//! (connection failures), mirroring the truncated curves in the figure.
//!
//! Shapes to check against the paper:
//! - HTEX best overall, EXEX close behind, both near-flat for no-ops;
//! - Dask slightly ahead of HTEX below ~1024 workers, then degrading and
//!   ending at 8192;
//! - IPP degrading beyond ~512 workers, ending at 2048;
//! - FireWorks an order of magnitude slower throughout, ending at 1024.

use baselines::model as baseline_models;
use bench::{fmt_opt, pow2_range, section, Table};
use simcluster::machines;
use simnet::SimTime;

fn main() {
    let bw = machines::blue_waters();
    let one_way = bw.one_way_latency();
    let workers = pow2_range(32, 262_144);
    let frameworks = baseline_models::figure4_lineup();

    for duration_ms in [0u64, 10, 100, 1000] {
        section(&format!(
            "Figure 4 strong scaling — {duration_ms} ms tasks, completion time (s)"
        ));
        let mut headers: Vec<String> = vec!["workers".into()];
        headers.extend(frameworks.iter().map(|f| f.name.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&headers_ref);
        for &w in &workers {
            let mut row = vec![w.to_string()];
            for fw in &frameworks {
                let n_tasks = if fw.name == "FireWorks" {
                    5_000
                } else {
                    50_000
                };
                let cell = fw
                    .run_campaign(n_tasks, w, SimTime::from_millis(duration_ms), one_way)
                    .ok()
                    .map(|r| r.makespan.as_secs_f64());
                row.push(fmt_opt(cell));
            }
            t.row(row);
        }
        t.print();
    }
    println!("\nnote: FireWorks column uses 5000 tasks (paper: limited allocation).");
}
