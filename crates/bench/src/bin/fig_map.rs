//! Chunked-task-fusion experiment: `app.map` vs per-item submission.
//!
//! The paper's scaling story (§5.2) is millions of micro-tasks; the
//! fusion plane turns them into ~1k fused chunk tasks so the DFK,
//! scheduler, hub, and monitor pay per-chunk costs instead of per-item
//! costs. This binary measures that amortization end to end on the full
//! DFK path:
//!
//! - **unfused**: N individual `noop` invocations through
//!   `invoke().call()` — one DFK record, one wire frame, one monitor
//!   lifecycle per item (measured on a subsample at full scale; the rate
//!   is steady-state);
//! - **fused**: `noop.map(0..N)` with auto-sized chunks (~1k fused tasks
//!   at 1M items) — whole argument slices per frame, chunk loops on the
//!   worker;
//! - **fused map_reduce**: the same chunks feeding a fan-in-32 reduce
//!   tree, checked against the closed-form sum;
//! - **tcp plane**: the fused 1M-item map over real loopback TCP to
//!   spawned `parsl-worker` processes, which rebuild the chunk body from
//!   the advertised `fmap[noop; ...]` signature.
//!
//! Usage: `fig_map [--smoke] [--out FILE] [--transport T]` with `T` one
//! of `inproc`, `tcp`, `both` (default: `inproc` for smoke, `both` for
//! full). The full run writes `BENCH_map.json`; `--smoke` skips the file
//! unless `--out` names one (CI feeds that to the bench guard).

use bench::{fmt_f, Table};
use parsl_core::fusion::MapOptions;
use parsl_core::prelude::*;
use parsl_executors::{HtexConfig, HtexExecutor, TcpHtexOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-message transport cost charged by the in-proc fabric — the same
/// syscall/framing floor fig5 charges, so the two experiments compare.
const PER_MESSAGE_COST: Duration = Duration::from_micros(20);

fn fabric() -> nexus::Fabric {
    nexus::Fabric::with_config(nexus::FabricConfig {
        per_message_cost: PER_MESSAGE_COST,
        ..Default::default()
    })
}

fn htex_config(label: &str) -> HtexConfig {
    HtexConfig {
        label: label.into(),
        workers_per_node: 4,
        nodes_per_block: 2,
        init_blocks: 1,
        prefetch: 64,
        batch_size: 64,
        ..Default::default()
    }
}

fn dfk_inproc() -> Arc<DataFlowKernel> {
    let htex = HtexExecutor::on_fabric(htex_config("htex"), fabric());
    DataFlowKernel::builder()
        .executor_arc(Arc::new(htex))
        .build()
        .unwrap()
}

/// N individual noop invocations: the per-item baseline every fused
/// number is judged against. Items/second.
fn run_unfused(n: usize) -> f64 {
    let dfk = dfk_inproc();
    let noop = dfk.python_app("noop", |x: u64| x);
    let t0 = Instant::now();
    let futs: Vec<AppFuture<u64>> = (0..n as u64).map(|i| parsl_core::call!(noop, i)).collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64, "unfused item {i}");
    }
    let elapsed = t0.elapsed();
    dfk.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

fn drive_map(dfk: &Arc<DataFlowKernel>, n: usize) -> (f64, usize) {
    let noop = dfk.python_app("noop", |x: u64| x);
    let t0 = Instant::now();
    let handle = noop.map_with(0..n as u64, MapOptions::default());
    let results = handle.results();
    let elapsed = t0.elapsed();
    assert_eq!(results.len(), n);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(*r.as_ref().unwrap(), i as u64, "fused item {i}");
    }
    (n as f64 / elapsed.as_secs_f64(), handle.chunk_count())
}

/// `noop.map(0..n)` with auto-sized chunks on the in-proc HTEX.
/// Items/second plus the fused chunk count.
fn run_fused(n: usize) -> (f64, usize) {
    let dfk = dfk_inproc();
    let out = drive_map(&dfk, n);
    dfk.shutdown();
    out
}

/// The same fused map over real loopback TCP with spawned
/// `parsl-worker` processes (resolve the binary with `PARSL_WORKER_BIN`
/// or as a sibling of this one). Median of three runs — real processes
/// time-slice against the client on small CI boxes.
fn run_fused_tcp(n: usize) -> f64 {
    let mut rates: Vec<f64> = (0..3)
        .map(|_| {
            let mut cfg = htex_config("htex-tcp");
            cfg.nodes_per_block = 1;
            cfg.workers_per_node = 2;
            let htex =
                HtexExecutor::tcp(cfg, TcpHtexOptions::default()).expect("bind loopback hub");
            let dfk = DataFlowKernel::builder()
                .executor_arc(Arc::new(htex))
                .build()
                .unwrap();
            let (tps, _) = drive_map(&dfk, n);
            dfk.shutdown();
            tps
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[1]
}

/// Fused map_reduce: the chunk partials collapse through the fan-in-32
/// reduce tree; the closed-form sum is the correctness witness.
fn run_map_reduce(n: usize) -> f64 {
    let dfk = dfk_inproc();
    let noop = dfk.python_app("noop", |x: u64| x);
    let t0 = Instant::now();
    let total = noop.map_reduce(0..n as u64, 0u64, |a, b| a + b);
    let got = total.result().unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(got, (n as u64 - 1) * n as u64 / 2, "tree sum");
    dfk.shutdown();
    n as f64 / elapsed.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());
    let transport = args
        .iter()
        .position(|a| a == "--transport")
        .map(|i| args.get(i + 1).expect("--transport needs a value").clone())
        .unwrap_or_else(|| {
            if smoke {
                "inproc".into()
            } else {
                "both".into()
            }
        });
    let (run_inproc, run_tcp) = match transport.as_str() {
        "inproc" => (true, false),
        "tcp" => (false, true),
        "both" => (true, true),
        other => panic!("--transport must be inproc|tcp|both, got {other}"),
    };
    // Full scale is the paper's 1M micro-tasks. The unfused baseline
    // pays the per-item path in full, so it runs on a subsample and
    // reports the steady-state rate.
    let (n_fused, n_unfused) = if smoke {
        (20_000, 2_000)
    } else {
        (1_000_000, 50_000)
    };

    println!(
        "fig_map: chunked task fusion, {n_fused} logical items \
         (unfused baseline on {n_unfused}), transport {transport}, \
         per-message cost {:?}{}",
        PER_MESSAGE_COST,
        if smoke { " (smoke)" } else { "" }
    );

    let mut table = Table::new(&["path", "items/s"]);
    let mut fields: Vec<String> = vec![
        "\"experiment\": \"fig_map\"".into(),
        format!(
            "\"workload\": \"noop map, {n_fused} logical items fused vs {n_unfused} unfused, \
             HTEX {transport} path\""
        ),
        format!("\"per_message_cost_us\": {}", PER_MESSAGE_COST.as_micros()),
    ];

    let mut speedup = None;
    if run_inproc {
        let unfused = run_unfused(n_unfused);
        let (fused, chunks) = run_fused(n_fused);
        let s = fused / unfused;
        speedup = Some(s);
        let reduce = run_map_reduce(n_fused);
        table.row(vec!["per-item invoke().call()".into(), fmt_f(unfused)]);
        table.row(vec![
            format!("app.map ({chunks} fused chunks)"),
            fmt_f(fused),
        ]);
        table.row(vec!["fusion speedup".into(), format!("{s:.2}x")]);
        table.row(vec!["app.map_reduce (tree sum)".into(), fmt_f(reduce)]);
        fields.push(format!("\"map_unfused_tps\": {unfused:.1}"));
        fields.push(format!("\"map_fused_tps\": {fused:.1}"));
        fields.push(format!("\"map_fused_chunks\": {chunks}"));
        fields.push(format!("\"fusion_speedup\": {s:.3}"));
        fields.push(format!("\"map_reduce_tps\": {reduce:.1}"));
    }

    if run_tcp {
        let fused = run_fused_tcp(n_fused);
        table.row(vec!["tcp app.map".into(), fmt_f(fused)]);
        fields.push(format!("\"map_fused_tcp_tps\": {fused:.1}"));
    }
    table.print();

    let path = match (&out, smoke) {
        (Some(p), _) => p.clone(),
        (None, false) => "BENCH_map.json".to_string(),
        (None, true) => {
            println!("smoke mode: skipping BENCH_map.json (pass --out to write)");
            return;
        }
    };

    let json = format!("{{\n  {}\n}}\n", fields.join(",\n  "));
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
    if let Some(s) = speedup {
        if s < 10.0 {
            println!("WARNING: fusion speedup {s:.2}x below the 10x target");
        }
    }
}
