//! Figures 5–6: the elasticity study, on the real thread plane.
//!
//! The workflow (Figure 5): stage 1 = 20 wide tasks, stage 2 = 1 reduce
//! task, stage 3 = 20 wide tasks, stage 4 = 1 reduce task. In the paper
//! wide tasks sleep 100 s and reduce tasks 50 s on 20 Midway workers; the
//! reproduction scales every duration by 1/50 (wide 2 s, reduce 1 s,
//! strategy interval 5 s → 100 ms, block queue delay 8 s → 160 ms) so the
//! experiment runs in seconds. Utilization and the makespan *ratio* are
//! scale-free, so they compare directly with the paper's:
//!
//! - without elasticity: utilization 68.15 %, makespan 301 s;
//! - with elasticity: utilization 84.28 %, makespan 331 s (+9.9 %).
//!
//! Beyond the paper's reactive controller this bench also runs the
//! predictive controller, whose scale-in is a graceful *drain*: victim
//! managers stop receiving work, finish what they hold, and only then is
//! the provider job released — so the drain row must show zero
//! scale-in-race retries.

use bench::{fmt_f, section, Table};
use parsl_core::combinators::join_all;
use parsl_core::prelude::*;
use parsl_core::strategy::PredictiveConfig;
use parsl_core::Executor;
use parsl_executors::{HtexConfig, HtexExecutor};
use parsl_providers::{BlockPool, ProvidedExecutor, SimProvider};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// 1/50 of the paper's durations.
const WIDE_MS: u64 = 2_000;
const REDUCE_MS: u64 = 1_000;
const WIDTH: usize = 20;
const WORKERS_PER_BLOCK: usize = 5;
const MAX_BLOCKS: usize = 4;
/// Total useful task-seconds in the workflow (scaled).
const TASK_SECONDS: f64 = (WIDTH as f64) * 2.0 + 1.0 + (WIDTH as f64) * 2.0 + 1.0;

/// Which elasticity controller a run uses.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// All blocks up front, no strategy (the paper's baseline).
    Fixed,
    /// The paper's reactive controller; scale-in is abrupt.
    Simple,
    /// Little's-law controller; scale-in drains gracefully.
    Predictive,
}

struct RunResult {
    makespan: f64,
    utilization: f64,
    retries: usize,
}

fn main() {
    section("Figure 5 workflow — 20 wide / 1 reduce / 20 wide / 1 reduce (scaled 1/50)");
    println!(
        "wide {WIDE_MS} ms, reduce {REDUCE_MS} ms, {} workers max ({MAX_BLOCKS} blocks x {WORKERS_PER_BLOCK})",
        MAX_BLOCKS * WORKERS_PER_BLOCK
    );

    let fixed = run(Mode::Fixed);
    let elastic = run(Mode::Simple);
    let drained = run(Mode::Predictive);
    println!(
        "(task retries due to scale-in races: fixed {}, simple {}, predictive/drain {})",
        fixed.retries, elastic.retries, drained.retries
    );

    section("Figure 6 — utilization and makespan");
    let mut t = Table::new(&[
        "configuration",
        "utilization %",
        "paper %",
        "makespan s",
        "paper s (scaled)",
        "retries",
    ]);
    t.row(vec![
        "no elasticity".into(),
        fmt_f(fixed.utilization * 100.0),
        "68.15".into(),
        fmt_f(fixed.makespan),
        fmt_f(301.0 / 50.0),
        fixed.retries.to_string(),
    ]);
    t.row(vec![
        "simple (abrupt)".into(),
        fmt_f(elastic.utilization * 100.0),
        "84.28".into(),
        fmt_f(elastic.makespan),
        fmt_f(331.0 / 50.0),
        elastic.retries.to_string(),
    ]);
    t.row(vec![
        "predictive (drain)".into(),
        fmt_f(drained.utilization * 100.0),
        "-".into(),
        fmt_f(drained.makespan),
        "-".into(),
        drained.retries.to_string(),
    ]);
    t.print();
    println!(
        "\nutilization change: {:+.1} % (paper: +23.6 % relative), makespan change: {:+.1} % (paper: +9.9 %)",
        (elastic.utilization / fixed.utilization - 1.0) * 100.0,
        (elastic.makespan / fixed.makespan - 1.0) * 100.0,
    );
    assert_eq!(
        drained.retries, 0,
        "drain-based scale-in must not race running tasks into retries"
    );
}

fn run(mode: Mode) -> RunResult {
    let store = Arc::new(parsl_monitor::MemoryStore::new());
    let htex = Arc::new(HtexExecutor::new(HtexConfig {
        label: "midway-htex".into(),
        workers_per_node: WORKERS_PER_BLOCK,
        nodes_per_block: 1,
        init_blocks: if mode == Mode::Fixed { MAX_BLOCKS } else { 0 },
        prefetch: 0,
        batch_size: 4,
        ..Default::default()
    }));

    let dfk = if mode == Mode::Fixed {
        DataFlowKernel::builder()
            .executor_arc(htex.clone() as Arc<dyn Executor>)
            .monitor(store.clone())
            .build()
            .unwrap()
    } else {
        let provider = SimProvider::builder()
            .nodes(MAX_BLOCKS)
            .queue_delay(Duration::from_millis(160))
            .build();
        let mut pool = BlockPool::builder(provider)
            .nodes_per_block(1)
            .workers_per_node(WORKERS_PER_BLOCK)
            .min_blocks(1)
            .max_blocks(MAX_BLOCKS)
            .poll_interval(Duration::from_millis(20))
            .on_block_up({
                let htex = Arc::clone(&htex);
                move |nodes| {
                    for _ in 0..nodes {
                        htex.add_node();
                    }
                }
            })
            .on_block_down({
                // The abrupt path: a released provider job kills the
                // allocation out from under its manager (the paper's
                // scancel), so running tasks die and surface as retries
                // after heartbeat loss — the Figure 6 scale-in race.
                let htex = Arc::clone(&htex);
                move |nodes| {
                    for _ in 0..nodes {
                        if let Some(addr) = htex.nodes().last().cloned() {
                            htex.kill_node(&addr);
                        }
                    }
                }
            });
        if mode == Mode::Predictive {
            // Drain plane: retiring managers surrender their nodes right
            // away (graceful Retire through the interchange), and the
            // provider job is held until the executor reports the drain
            // finished.
            pool = pool
                .on_block_drain({
                    let htex = Arc::clone(&htex);
                    move |nodes| {
                        for _ in 0..nodes {
                            htex.remove_node();
                        }
                    }
                })
                .drained_probe({
                    let htex = Arc::clone(&htex);
                    move || htex.draining_nodes()
                });
        }
        let strategy = match mode {
            Mode::Simple => StrategyConfig::simple(1.0),
            _ => StrategyConfig::predictive(PredictiveConfig {
                target_utilization: 1.0,
                hysteresis: 0.0,
                default_service: Duration::from_millis(WIDE_MS),
                drain: true,
            }),
        };
        DataFlowKernel::builder()
            .executor(ProvidedExecutor::new(Arc::clone(&htex), pool.build()))
            .strategy(strategy.interval(Duration::from_millis(100)))
            // Manager loss during scale-in is handled by DFK retries, the
            // mechanism §4.3.1 describes for exactly this situation.
            .retries(3)
            .monitor(store.clone())
            .build()
            .unwrap()
    };

    // Worker sampler: connected workers every 20 ms, for worker-seconds.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let series: Arc<parking_lot::Mutex<Vec<(Instant, usize)>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sampler = {
        let stop = Arc::clone(&stop);
        let series = Arc::clone(&series);
        let htex = Arc::clone(&htex);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                series
                    .lock()
                    .push((Instant::now(), htex.connected_workers()));
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    if mode == Mode::Fixed {
        // The paper deploys workers and waits for them before starting.
        let deadline = Instant::now() + Duration::from_secs(10);
        while htex.connected_workers() < MAX_BLOCKS * WORKERS_PER_BLOCK && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let sleep_task = dfk.python_app("stage_task", |ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        1u8
    });
    let reduce_task = dfk.python_app("reduce_task", |_tokens: Vec<u8>, ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        1u8
    });
    let wide_after = dfk.python_app("wide_after", |_token: u8, ms: u64| {
        std::thread::sleep(Duration::from_millis(ms));
        1u8
    });

    let t0 = Instant::now();
    // Stage 1: 20 wide tasks.
    let s1: Vec<_> = (0..WIDTH)
        .map(|_| parsl_core::call!(sleep_task, WIDE_MS))
        .collect();
    // Stage 2: reduce over all of stage 1.
    let j1 = join_all(&dfk, s1);
    let s2 = parsl_core::call!(reduce_task, j1, REDUCE_MS);
    // Stage 3: 20 wide tasks, each dependent on the reduce.
    let s3: Vec<_> = (0..WIDTH)
        .map(|_| parsl_core::call!(wide_after, &s2, WIDE_MS))
        .collect();
    // Stage 4: final reduce.
    let j3 = join_all(&dfk, s3);
    let s4 = parsl_core::call!(reduce_task, j3, REDUCE_MS);
    s4.result().expect("workflow completes");
    let makespan = t0.elapsed().as_secs_f64();

    stop.store(true, std::sync::atomic::Ordering::Release);
    let _ = sampler.join();

    // Integrate worker-seconds over [t0, t0+makespan].
    let series = series.lock();
    let mut worker_seconds = 0.0;
    for w in series.windows(2) {
        let (ta, v) = w[0];
        let (tb, _) = w[1];
        let a = ta.max(t0);
        let b = tb;
        if b > a && a >= t0 {
            worker_seconds += v as f64 * (b - a).as_secs_f64();
        }
    }

    dfk.shutdown();
    let mut retries = 0;
    for e in store.events() {
        if let parsl_core::MonitorEvent::Retry {
            task, reason, at, ..
        } = e
        {
            retries += 1;
            eprintln!("  retry {task} at {:.2}s: {reason}", at.as_secs_f64());
        }
    }
    RunResult {
        makespan,
        utilization: TASK_SECONDS / worker_seconds.max(1e-9),
        retries,
    }
}
