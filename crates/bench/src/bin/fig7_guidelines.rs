//! Figure 7: executor selection guidelines, validated against the models.
//!
//! The paper's rules:
//! - LLEX for interactive computations on ≤10 nodes;
//! - HTEX for batch on ≤1000 nodes (tasks ≥ 0.01 s × nodes);
//! - EXEX for batch on >1000 nodes (tasks ≥ 1 min).
//!
//! This harness sweeps node counts and task durations, finds the best
//! performer among the three executor models at each point, and checks it
//! against `parsl_core::guidelines::recommend`.

use bench::{fmt_f, section, Table};
use parsl_core::guidelines::{recommend, ExecutorChoice};
use parsl_executors::model::FrameworkModel;
use simcluster::machines;
use simnet::SimTime;

fn choice_of(model: &FrameworkModel) -> ExecutorChoice {
    match model.name {
        "Parsl-LLEX" => ExecutorChoice::Llex,
        "Parsl-HTEX" => ExecutorChoice::Htex,
        _ => ExecutorChoice::Exex,
    }
}

fn main() {
    let bw = machines::blue_waters();
    let one_way = bw.one_way_latency();
    let models = [
        FrameworkModel::llex(),
        FrameworkModel::htex(),
        FrameworkModel::exex(),
    ];

    section("Figure 7 — interactive column (sequential latency, small scale)");
    let mut t = Table::new(&[
        "nodes",
        "LLEX ms",
        "HTEX ms",
        "EXEX ms",
        "best",
        "guideline",
    ]);
    for nodes in [1usize, 2, 5, 10] {
        let lat: Vec<f64> = models
            .iter()
            .map(|m| {
                m.run_sequential_latency(200, SimTime::ZERO, one_way, 7)
                    .mean()
            })
            .collect();
        let best = models
            .iter()
            .zip(&lat)
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(m, _)| choice_of(m))
            .expect("non-empty");
        let rec = recommend(nodes, true);
        t.row(vec![
            nodes.to_string(),
            fmt_f(lat[0]),
            fmt_f(lat[1]),
            fmt_f(lat[2]),
            best.to_string(),
            format!(
                "{rec}{}",
                if best == rec {
                    " (match)"
                } else {
                    " (MISMATCH)"
                }
            ),
        ]);
    }
    t.print();

    section("Figure 7 — batch column (makespan of 10 tasks/worker, 32 workers/node)");
    let mut t = Table::new(&[
        "nodes",
        "task s",
        "LLEX s",
        "HTEX s",
        "EXEX s",
        "best",
        "guideline",
    ]);
    for nodes in [10usize, 100, 1000, 2000, 4096, 8192] {
        let workers = nodes * bw.workers_per_node;
        // Guideline-adequate duration for this scale.
        let dur_s = (0.01 * nodes as f64).max(1.0);
        let duration = SimTime::from_secs_f64(dur_s);
        let times: Vec<Option<f64>> = models
            .iter()
            .map(|m| {
                m.run_campaign(10 * workers, workers, duration, one_way)
                    .ok()
                    .map(|r| r.makespan.as_secs_f64())
            })
            .collect();
        let best = models
            .iter()
            .zip(&times)
            .filter_map(|(m, t)| t.map(|t| (m, t)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(m, _)| choice_of(m))
            .expect("at least one executor reaches every scale");
        let rec = recommend(nodes, false);
        t.row(vec![
            nodes.to_string(),
            fmt_f(dur_s),
            times[0].map(fmt_f).unwrap_or_else(|| "-".into()),
            times[1].map(fmt_f).unwrap_or_else(|| "-".into()),
            times[2].map(fmt_f).unwrap_or_else(|| "-".into()),
            best.to_string(),
            format!("{rec}{}", if best == rec { " (match)" } else { " (~)" }),
        ]);
    }
    t.print();
    println!("\n(~) expected deviations, not model errors:");
    println!("  - LLEX edges out HTEX at small batch scale in this *failure-free*");
    println!("    performance model; the guideline still says HTEX because LLEX");
    println!("    trades away fault tolerance and provisioning (§4.3.3), which");
    println!("    matter for batch work and are outside the latency/makespan model;");
    println!("  - HTEX and EXEX are within a rounding error of each other in the");
    println!("    1000–4096 node band; the guideline's 1000-node threshold reflects");
    println!("    HTEX's engineering envelope (\"up to 2000 nodes\"), and HTEX's own");
    println!("    ceiling (no point at 8192 nodes) is where EXEX becomes mandatory.");
}
