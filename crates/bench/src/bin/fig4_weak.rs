//! Figure 4 (bottom row): weak scaling on Blue Waters.
//!
//! 10 tasks per worker (1M tasks at the 262 144-worker point, half the
//! paper's quoted 3125-node × 32 × 10 bound), duration {0, 10, 100,
//! 1000 ms}. An ideal system holds completion time constant; the paper
//! observes sublinear scaling setting in at ~32 workers for FireWorks,
//! ~256 for IPP, and ~1024 for Dask, HTEX, and EXEX.

use baselines::model as baseline_models;
use bench::{fmt_opt, pow2_range, section, Table};
use simcluster::machines;
use simnet::SimTime;

fn main() {
    let bw = machines::blue_waters();
    let one_way = bw.one_way_latency();
    let workers = pow2_range(32, 262_144);
    let frameworks = baseline_models::figure4_lineup();

    for duration_ms in [0u64, 10, 100, 1000] {
        section(&format!(
            "Figure 4 weak scaling — {duration_ms} ms tasks, 10 tasks/worker, completion time (s)"
        ));
        let mut headers: Vec<String> = vec!["workers".into()];
        headers.extend(frameworks.iter().map(|f| f.name.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&headers_ref);
        for &w in &workers {
            let mut row = vec![w.to_string()];
            for fw in &frameworks {
                let cell = fw
                    .run_campaign(10 * w, w, SimTime::from_millis(duration_ms), one_way)
                    .ok()
                    .map(|r| r.makespan.as_secs_f64());
                row.push(fmt_opt(cell));
            }
            t.row(row);
        }
        t.print();

        // Report the sublinear onset: first worker count where completion
        // time exceeds 2x the minimum for this duration.
        let mut onsets = Vec::new();
        for fw in &frameworks {
            let times: Vec<(usize, f64)> = workers
                .iter()
                .filter_map(|&w| {
                    fw.run_campaign(10 * w, w, SimTime::from_millis(duration_ms), one_way)
                        .ok()
                        .map(|r| (w, r.makespan.as_secs_f64()))
                })
                .collect();
            if let Some(base) = times.iter().map(|(_, t)| *t).reduce(f64::min) {
                let onset = times.iter().find(|(_, t)| *t > 2.0 * base).map(|(w, _)| *w);
                onsets.push(format!(
                    "{}: {}",
                    fw.name,
                    onset
                        .map(|w| w.to_string())
                        .unwrap_or_else(|| "none".into())
                ));
            }
        }
        println!("sublinear onset (2x of best): {}", onsets.join(", "));
    }
}
