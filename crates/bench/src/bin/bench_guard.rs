//! CI bench-regression guard.
//!
//! Compares a freshly measured `BENCH_*.json` (a `--smoke --out` run on
//! the CI machine) against the committed baseline and fails when any
//! guarded higher-is-better metric regressed by more than the tolerance
//! (default 30%, the noise floor of a shared CI runner).
//!
//! Usage:
//!
//! ```text
//! bench_guard <baseline.json> <current.json> <key> [<key>...] \
//!     [--tolerance 0.30] [--strict-metrics]
//! ```
//!
//! Keys name numeric fields present in both files (e.g. `batched_speedup`,
//! `least_outstanding_tps`). A key missing from either file is never
//! silently skipped — a quietly dropped metric is how regressions sneak
//! past a guard. By default the guard prints a loud stderr note and keeps
//! comparing the metrics that *are* present; with `--strict-metrics` a
//! missing key fails the run outright (exit 2). CI passes the flag; the
//! lenient default keeps a locally edited bench run usable while iterating.

use bench::json_number;

struct Check {
    key: String,
    baseline: f64,
    current: f64,
    ratio: f64,
}

const USAGE: &str = "usage: bench_guard <baseline.json> <current.json> <key> [<key>...] \
     [--tolerance 0.30] [--strict-metrics]";

/// Print a diagnostic plus the usage line and exit 2 — a CI failure must
/// read as a one-line diagnosis, never a panic backtrace.
fn usage_error(msg: &str) -> ! {
    eprintln!("bench_guard: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.30;
    let mut strict_metrics = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--strict-metrics" {
            strict_metrics = true;
        } else if a == "--tolerance" {
            let Some(v) = it.next() else {
                usage_error("--tolerance needs a value");
            };
            tolerance = match v.parse() {
                Ok(t) => t,
                Err(_) => usage_error(&format!("--tolerance must be a float, got {v:?}")),
            };
        } else {
            positional.push(a);
        }
    }
    if positional.len() < 3 {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let baseline_path = &positional[0];
    let current_path = &positional[1];
    let keys = &positional[2..];

    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench_guard: cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let current = read(current_path);

    let mut checks: Vec<Check> = Vec::new();
    let mut failed = false;
    let mut missing: Vec<String> = Vec::new();
    for key in keys {
        let b = json_number(&baseline, key);
        let c = json_number(&current, key);
        let (Some(b), Some(c)) = (b, c) else {
            eprintln!(
                "bench_guard: WARNING: key {key:?} missing or non-numeric \
                 (baseline: {b:?}, current: {c:?}) — this metric is NOT guarded"
            );
            missing.push(key.clone());
            continue;
        };
        if b <= 0.0 {
            // A non-positive baseline can never flag a regression; treat
            // it like a missing key instead of silently passing forever.
            eprintln!(
                "bench_guard: WARNING: key {key:?} has non-positive baseline {b} \
                 — this metric is NOT guarded; fix the baseline"
            );
            missing.push(key.clone());
            continue;
        }
        let ratio = c / b;
        if ratio < 1.0 - tolerance {
            failed = true;
        }
        checks.push(Check {
            key: key.clone(),
            baseline: b,
            current: c,
            ratio,
        });
    }

    // The ratio table prints on success too: CI logs are the trend
    // record, and a metric drifting toward the tolerance edge should be
    // visible before it trips the guard.
    println!(
        "bench_guard: {} vs {} (tolerance {:.0}%)",
        baseline_path,
        current_path,
        tolerance * 100.0
    );
    for ck in &checks {
        let verdict = if ck.ratio < 1.0 - tolerance {
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<28} baseline {:>12.1}  current {:>12.1}  ratio {:>5.2}  ({:>+6.1}%)  {verdict}",
            ck.key,
            ck.baseline,
            ck.current,
            ck.ratio,
            (ck.ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!(
            "bench_guard: throughput regression beyond {:.0}% detected",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!(
            "bench_guard: {} metric(s) could not be compared: {}",
            missing.len(),
            missing.join(", ")
        );
        if strict_metrics {
            eprintln!("bench_guard: failing because --strict-metrics is set");
            std::process::exit(2);
        }
    }
    println!("bench_guard: all guarded metrics within tolerance");
}
