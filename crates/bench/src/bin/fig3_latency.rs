//! Figure 3: distributions of task latencies when running 1000 tasks on
//! Midway with different executors.
//!
//! Two planes:
//! - the **DES plane** reproduces the paper's setup exactly (1000
//!   sequential no-op tasks over the Midway RTT) at calibrated costs;
//! - the **real plane** runs the same experiment through the actual
//!   thread-based executors on a latency-injected fabric, confirming the
//!   ordering emerges from the architectures and not just the constants.
//!
//! Paper means (ms): ThreadPool ≈1.04*, LLEX 3.47, HTEX 6.87, EXEX 9.83,
//! IPP 11.72, Dask 16.19. (*derived: LLEX is "approximately 2.43 ms slower
//! than the local ThreadPool executor".)

use baselines::model as baseline_models;
use bench::{fmt_f, section, Table};
use parsl_executors::model::FrameworkModel;
use simcluster::machines;
use simnet::SimTime;
use std::time::{Duration, Instant};

fn main() {
    let midway = machines::midway();
    let one_way = midway.one_way_latency();

    section("Figure 3 — task latency, 1000 sequential no-op tasks (DES plane)");
    let lineup: Vec<(FrameworkModel, Option<f64>)> = vec![
        (FrameworkModel::threadpool(), Some(1.04)),
        (FrameworkModel::llex(), Some(3.47)),
        (FrameworkModel::htex(), Some(6.87)),
        (FrameworkModel::exex(), Some(9.83)),
        (baseline_models::ipp(), Some(11.72)),
        (baseline_models::dask(), Some(16.19)),
    ];
    let mut t = Table::new(&[
        "executor", "mean ms", "p5 ms", "p50 ms", "p95 ms", "stddev", "paper ms",
    ]);
    for (model, paper) in &lineup {
        let mut s = model.run_sequential_latency(1000, SimTime::ZERO, one_way, 42);
        t.row(vec![
            model.name.to_string(),
            fmt_f(s.mean()),
            fmt_f(s.quantile(0.05)),
            fmt_f(s.quantile(0.50)),
            fmt_f(s.quantile(0.95)),
            fmt_f(s.stddev()),
            paper.map(fmt_f).unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print();

    section("Figure 3 — real thread plane (in-process, latency-injected fabric)");
    println!("absolute numbers differ from the paper's Python stack; the ordering");
    println!("LLEX < HTEX <= EXEX must emerge from hop counts and broker work alone\n");
    let mut t = Table::new(&["executor", "mean us", "p50 us", "p95 us"]);
    for (name, stats) in [
        ("ThreadPool", real_plane_threadpool()),
        ("Parsl-LLEX", real_plane_llex(one_way)),
        ("Parsl-HTEX", real_plane_htex(one_way)),
        ("Parsl-EXEX", real_plane_exex(one_way)),
    ] {
        let mut s = stats;
        t.row(vec![
            name.to_string(),
            fmt_f(s.mean()),
            fmt_f(s.quantile(0.5)),
            fmt_f(s.quantile(0.95)),
        ]);
    }
    t.print();
}

const REAL_TASKS: usize = 300;

fn measure(dfk: &std::sync::Arc<parsl_core::DataFlowKernel>) -> simnet::Samples {
    let noop = dfk.python_app("noop", |x: u8| x);
    // Warm-up.
    for _ in 0..20 {
        let _ = parsl_core::call!(noop, 0u8).result().unwrap();
    }
    let mut samples = simnet::Samples::new();
    for _ in 0..REAL_TASKS {
        let t0 = Instant::now();
        let _ = parsl_core::call!(noop, 1u8).result().unwrap();
        samples.record(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples
}

fn fabric(one_way: SimTime) -> nexus::Fabric {
    nexus::Fabric::with_config(nexus::FabricConfig {
        latency: Duration::from_nanos(one_way.as_nanos()),
        ..Default::default()
    })
}

fn real_plane_threadpool() -> simnet::Samples {
    let dfk = parsl_core::DataFlowKernel::builder()
        .executor(parsl_executors::ThreadPoolExecutor::new(1))
        .build()
        .unwrap();
    let s = measure(&dfk);
    dfk.shutdown();
    s
}

fn real_plane_llex(one_way: SimTime) -> simnet::Samples {
    let dfk = parsl_core::DataFlowKernel::builder()
        .executor(parsl_executors::LlexExecutor::on_fabric(
            parsl_executors::LlexConfig {
                workers: 1,
                ..Default::default()
            },
            fabric(one_way),
        ))
        .build()
        .unwrap();
    let s = measure(&dfk);
    dfk.shutdown();
    s
}

fn real_plane_htex(one_way: SimTime) -> simnet::Samples {
    let dfk = parsl_core::DataFlowKernel::builder()
        .executor(parsl_executors::HtexExecutor::on_fabric(
            parsl_executors::HtexConfig {
                workers_per_node: 1,
                nodes_per_block: 1,
                init_blocks: 1,
                ..Default::default()
            },
            fabric(one_way),
        ))
        .build()
        .unwrap();
    let s = measure(&dfk);
    dfk.shutdown();
    s
}

fn real_plane_exex(one_way: SimTime) -> simnet::Samples {
    let dfk = parsl_core::DataFlowKernel::builder()
        .executor(parsl_executors::ExexExecutor::on_fabric(
            parsl_executors::ExexConfig {
                ranks_per_pool: 2,
                init_pools: 1,
                ..Default::default()
            },
            fabric(one_way),
        ))
        .build()
        .unwrap();
    let s = measure(&dfk);
    dfk.shutdown();
    s
}
