//! Criterion bench: no-op task throughput per executor (real-plane
//! counterpart of Table 2's tasks/second column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsl_core::prelude::*;
use std::sync::Arc;

const BATCH: usize = 500;

fn bench_throughput(c: &mut Criterion, name: &str, dfk: Arc<DataFlowKernel>) {
    let noop = dfk.python_app("noop", |x: u64| x);
    // Warm-up.
    for _ in 0..20 {
        let _ = parsl_core::call!(noop, 0u64).result().unwrap();
    }
    let mut group = c.benchmark_group("throughput");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter(name), |b| {
        b.iter(|| {
            let futs: Vec<_> = (0..BATCH as u64)
                .map(|i| parsl_core::call!(noop, i))
                .collect();
            for f in &futs {
                f.result().unwrap();
            }
        })
    });
    group.finish();
    dfk.shutdown();
}

fn throughput_benches(c: &mut Criterion) {
    bench_throughput(
        c,
        "threadpool-4",
        DataFlowKernel::builder()
            .executor(parsl_executors::ThreadPoolExecutor::new(4))
            .build()
            .unwrap(),
    );
    bench_throughput(
        c,
        "htex-2x2",
        DataFlowKernel::builder()
            .executor(parsl_executors::HtexExecutor::new(
                parsl_executors::HtexConfig {
                    workers_per_node: 2,
                    nodes_per_block: 2,
                    init_blocks: 1,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
    bench_throughput(
        c,
        "llex-4",
        DataFlowKernel::builder()
            .executor(parsl_executors::LlexExecutor::new(
                parsl_executors::LlexConfig {
                    workers: 4,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
    bench_throughput(
        c,
        "exex-1x5",
        DataFlowKernel::builder()
            .executor(parsl_executors::ExexExecutor::new(
                parsl_executors::ExexConfig {
                    ranks_per_pool: 5,
                    init_pools: 1,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
    bench_throughput(
        c,
        "ipp-4",
        DataFlowKernel::builder()
            .executor(baselines::IppExecutor::new(baselines::IppConfig {
                engines: 4,
                ..Default::default()
            }))
            .build()
            .unwrap(),
    );
    bench_throughput(
        c,
        "dask-4",
        DataFlowKernel::builder()
            .executor(baselines::DaskLikeExecutor::new(baselines::DaskConfig {
                workers: 4,
                ..Default::default()
            }))
            .build()
            .unwrap(),
    );
    bench_throughput(
        c,
        "fireworks-4",
        DataFlowKernel::builder()
            .executor(baselines::FireworksExecutor::new(
                baselines::FireworksConfig {
                    workers: 4,
                    poll_interval: std::time::Duration::from_millis(2),
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_secs(5))
}

criterion_group! {
    name = benches;
    config = config();
    targets = throughput_benches
}
criterion_main!(benches);
