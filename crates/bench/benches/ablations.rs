//! Ablation benches for the design choices DESIGN.md calls out:
//! HTEX batching/prefetch depth, memoization lookup cost, and the wire
//! codec on the submit path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parsl_core::prelude::*;

const BATCH: usize = 300;

/// HTEX ablation: how much do manager-side batching and prefetch buy?
fn htex_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/htex-batch-prefetch");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(10);
    for (batch, prefetch) in [(1usize, 0usize), (1, 4), (8, 0), (8, 4), (32, 16)] {
        let dfk = DataFlowKernel::builder()
            .executor(parsl_executors::HtexExecutor::new(
                parsl_executors::HtexConfig {
                    workers_per_node: 2,
                    nodes_per_block: 2,
                    init_blocks: 1,
                    batch_size: batch,
                    prefetch,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap();
        let noop = dfk.python_app("noop", |x: u64| x);
        for _ in 0..10 {
            let _ = parsl_core::call!(noop, 0u64).result().unwrap();
        }
        group.bench_function(
            BenchmarkId::from_parameter(format!("batch{batch}-prefetch{prefetch}")),
            |b| {
                b.iter(|| {
                    let futs: Vec<_> = (0..BATCH as u64)
                        .map(|i| parsl_core::call!(noop, i))
                        .collect();
                    for f in &futs {
                        f.result().unwrap();
                    }
                })
            },
        );
        dfk.shutdown();
    }
    group.finish();
}

/// Memoization ablation: repeated calls with caching on vs off.
fn memoization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/memoization");
    group.sample_size(20);
    for memo in [false, true] {
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .memoize(memo)
            .build()
            .unwrap();
        let work = dfk.python_app("work", |x: u64| {
            // A task expensive enough that a cache hit is clearly visible.
            (0..x * 1000).fold(0u64, |acc, i| acc.wrapping_add(i))
        });
        // Populate the cache.
        let _ = parsl_core::call!(work, 50u64).result().unwrap();
        group.bench_function(BenchmarkId::from_parameter(format!("memo-{memo}")), |b| {
            b.iter(|| parsl_core::call!(work, 50u64).result().unwrap())
        });
        dfk.shutdown();
    }
    group.finish();
}

/// Wire codec on the submit path: argument encode + decode round trip.
fn wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/wire-codec");
    let payload: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
    group.throughput(Throughput::Bytes((payload.len() * 8) as u64));
    group.bench_function("encode-1000-f64", |b| {
        b.iter(|| wire::to_bytes(&payload).unwrap())
    });
    let bytes = wire::to_bytes(&payload).unwrap();
    group.bench_function("decode-1000-f64", |b| {
        b.iter(|| wire::from_bytes::<Vec<f64>>(&bytes).unwrap())
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = htex_batching, memoization, wire_codec
}
criterion_main!(benches);
