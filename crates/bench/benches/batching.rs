//! Criterion bench: per-task `submit` vs `submit_batch` on the HTEX
//! simulated path and the in-process thread pool (§4.3.1 batching).
//!
//! The HTEX fabric charges a per-message cost modelling a real
//! transport's syscall/framing floor, so the messages-per-task ratio —
//! the thing batching changes — shows up in wall-clock numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crossbeam::channel::{unbounded, Receiver};
use parsl_core::executor::{Executor, ExecutorContext, TaskOutcome, TaskSpec};
use parsl_core::registry::{AppOptions, AppRegistry, RegisteredApp};
use parsl_core::types::{ResourceSpec, TaskId};
use parsl_executors::{HtexConfig, HtexExecutor, ThreadPoolExecutor};
use std::sync::Arc;
use std::time::Duration;

const BATCH: usize = 500;

fn noop_app(registry: &Arc<AppRegistry>) -> Arc<RegisteredApp> {
    registry.register(
        "noop",
        parsl_core::types::AppKind::Native,
        "(u64)->u64",
        Arc::new(|args| {
            let (x,): (u64,) = wire::from_bytes(args)
                .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))?;
            wire::to_bytes(&x)
                .map_err(|e| parsl_core::error::AppError::Serialization(e.to_string()))
        }),
        AppOptions::default(),
    )
}

fn specs(app: &Arc<RegisteredApp>, n: usize) -> Vec<TaskSpec> {
    (0..n as u64)
        .map(|i| TaskSpec {
            id: TaskId(i),
            app: Arc::clone(app),
            args: bytes::Bytes::from(wire::to_bytes(&(i,)).unwrap()),
            resources: ResourceSpec::default(),
            attempt: 0,
            tenant: parsl_core::types::TenantId::DEFAULT,
            items: 1,
        })
        .collect()
}

fn drain(rx: &Receiver<Vec<TaskOutcome>>, n: usize) {
    let mut seen = 0;
    while seen < n {
        seen += rx
            .recv_timeout(Duration::from_secs(30))
            .expect("task completes")
            .len();
    }
}

fn bench_executor(
    c: &mut Criterion,
    name: &str,
    executor: &dyn Executor,
    rx: &Receiver<Vec<TaskOutcome>>,
    app: &Arc<RegisteredApp>,
) {
    let mut group = c.benchmark_group("submission-batching");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(name, "per-task"), |b| {
        b.iter(|| {
            for t in specs(app, BATCH) {
                executor.submit(t).unwrap();
            }
            drain(rx, BATCH);
        })
    });
    group.bench_function(BenchmarkId::new(name, "batched"), |b| {
        b.iter(|| {
            executor.submit_batch(specs(app, BATCH)).unwrap();
            drain(rx, BATCH);
        })
    });
    group.finish();
}

fn batching_benches(c: &mut Criterion) {
    // HTEX over a fabric with a 20 µs per-message transport cost.
    {
        let registry = AppRegistry::new();
        let app = noop_app(&registry);
        let (tx, rx) = unbounded();
        let fabric = nexus::Fabric::with_config(nexus::FabricConfig {
            per_message_cost: Duration::from_micros(20),
            ..Default::default()
        });
        let htex = HtexExecutor::on_fabric(
            HtexConfig {
                workers_per_node: 4,
                nodes_per_block: 2,
                prefetch: 64,
                batch_size: 64,
                ..Default::default()
            },
            fabric,
        );
        htex.start(ExecutorContext {
            completions: tx,
            registry: Arc::clone(&registry),
        })
        .unwrap();
        bench_executor(c, "htex-sim", &htex, &rx, &app);
        htex.shutdown();
    }

    // Thread pool: batching saves lock round-trips only; the small win is
    // the honest in-process baseline next to the wire-protocol one.
    {
        let registry = AppRegistry::new();
        let app = noop_app(&registry);
        let (tx, rx) = unbounded();
        let pool = ThreadPoolExecutor::new(4);
        pool.start(ExecutorContext {
            completions: tx,
            registry: Arc::clone(&registry),
        })
        .unwrap();
        bench_executor(c, "threadpool-4", &pool, &rx, &app);
        pool.shutdown();
    }
}

fn config() -> Criterion {
    Criterion::default().measurement_time(std::time::Duration::from_secs(5))
}

criterion_group! {
    name = benches;
    config = config();
    targets = batching_benches
}
criterion_main!(benches);
