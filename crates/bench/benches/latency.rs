//! Criterion bench: single-task round-trip latency per executor
//! (the real-plane counterpart of Figure 3).

use criterion::{criterion_group, criterion_main, Criterion};
use parsl_core::prelude::*;
use std::sync::Arc;

fn bench_executor(c: &mut Criterion, name: &str, dfk: Arc<DataFlowKernel>) {
    let noop = dfk.python_app("noop", |x: u8| x);
    // Warm up the path so registration and worker spin-up are excluded.
    for _ in 0..10 {
        let _ = parsl_core::call!(noop, 0u8).result().unwrap();
    }
    c.bench_function(format!("latency/{name}"), |b| {
        b.iter(|| {
            let f = parsl_core::call!(noop, 1u8);
            f.result().unwrap()
        })
    });
    dfk.shutdown();
}

fn latency_benches(c: &mut Criterion) {
    bench_executor(
        c,
        "immediate",
        DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap(),
    );
    bench_executor(
        c,
        "threadpool",
        DataFlowKernel::builder()
            .executor(parsl_executors::ThreadPoolExecutor::new(1))
            .build()
            .unwrap(),
    );
    bench_executor(
        c,
        "llex",
        DataFlowKernel::builder()
            .executor(parsl_executors::LlexExecutor::new(
                parsl_executors::LlexConfig {
                    workers: 1,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
    bench_executor(
        c,
        "htex",
        DataFlowKernel::builder()
            .executor(parsl_executors::HtexExecutor::new(
                parsl_executors::HtexConfig {
                    workers_per_node: 1,
                    init_blocks: 1,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
    bench_executor(
        c,
        "exex",
        DataFlowKernel::builder()
            .executor(parsl_executors::ExexExecutor::new(
                parsl_executors::ExexConfig {
                    ranks_per_pool: 2,
                    init_pools: 1,
                    ..Default::default()
                },
            ))
            .build()
            .unwrap(),
    );
    bench_executor(
        c,
        "ipp",
        DataFlowKernel::builder()
            .executor(baselines::IppExecutor::new(baselines::IppConfig {
                engines: 1,
                ..Default::default()
            }))
            .build()
            .unwrap(),
    );
    bench_executor(
        c,
        "dask",
        DataFlowKernel::builder()
            .executor(baselines::DaskLikeExecutor::new(baselines::DaskConfig {
                workers: 1,
                ..Default::default()
            }))
            .build()
            .unwrap(),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = latency_benches
}
criterion_main!(benches);
