//! Chunked task fusion: pool-style `map` / `map_reduce` (§5.2, Figure 5).
//!
//! The paper's scaling experiments submit millions of *micro*-tasks whose
//! bodies run for microseconds; at that scale the per-task overhead — a
//! DFK record, a scheduler decision, a wire frame, a monitor event — costs
//! orders of magnitude more than the work itself. The fusion plane
//! amortizes it: [`App::map`] slices the input into chunks and submits
//! **one fused task per chunk**. The whole argument slice travels in a
//! single frame, the worker runs the chunk as a loop inside one task
//! slot, and the per-item results come back in one result frame. DFK,
//! scheduler, hub, memoizer, and monitor all pay ~1k task costs instead
//! of 1M.
//!
//! Everything downstream still accounts in *logical items*: a fused spec
//! carries `items = chunk length`, so arrival rates, per-item service
//! samples, hedge thresholds, walltime budgets, and monitor rollups stay
//! calibrated (see `TaskSpec::items`).
//!
//! Failure attribution survives fusion. The fused body stops at the first
//! failing element and reports how far it got ([`FusedOutput`]); the
//! client fails **only that logical item**, then resubmits a fused chunk
//! for the unprocessed remainder (split-retry). A panic in one element
//! never takes down its chunk-mates.
//!
//! ```
//! use parsl_core::prelude::*;
//!
//! let dfk = DataFlowKernel::builder()
//!     .executor(ImmediateExecutor::new())
//!     .build()
//!     .unwrap();
//! let double = dfk.python_app("double", |x: i64| x * 2);
//! let handle = double.map(0..100i64);
//! let out: Vec<i64> = handle.results().into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(out, (0..100i64).map(|x| x * 2).collect::<Vec<_>>());
//!
//! // Tree-aggregated reduction over the same fused chunks:
//! let sum = double.map_reduce(0..100i64, 0, |a, b| a + b);
//! assert_eq!(sum.result().unwrap(), (0..100i64).map(|x| x * 2).sum::<i64>());
//! dfk.shutdown();
//! ```

use crate::app::{App, ArgSlot, TaskValue};
use crate::datamap::DataHints;
use crate::dfk::{DataFlowKernel, SubmitOptions};
use crate::error::{AppError, ParslError, TaskError};
use crate::future::{AppFuture, FutureState};
use crate::registry::{AppId, AppOptions, ErasedAppFn, RegisteredApp};
use crate::types::{AppKind, TenantId};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

/// Widest chunk the auto-sizer will pick. Keeps a fused frame comfortably
/// under the transport's frame budget and bounds how much work one failed
/// chunk can strand.
pub const MAX_CHUNK: usize = 4096;

/// Per-chunk service time the auto-sizer aims for when it has observed
/// per-item service samples: long enough to amortize per-task overhead,
/// short enough that elasticity and hedging still see progress.
const TARGET_CHUNK_TIME: Duration = Duration::from_millis(100);

/// Samples required before the auto-sizer trusts the service-time ring.
const MIN_SAMPLES: usize = 20;

/// Without service samples, split the input into about this many chunks
/// (1M items → ~1k fused tasks, the headline amortization).
const FALLBACK_CHUNKS: usize = 1024;

/// Tree-reduce fan-in for [`App::map_reduce`]: each reduce task combines
/// up to this many partials, so 1k chunk partials collapse in two levels
/// instead of a 1k-wide DFK join.
pub const REDUCE_FAN_IN: usize = 32;

/// Wire result of one fused map chunk: per-item encoded results up to the
/// first failure, plus that failure if any.
///
/// The fused task itself *succeeds* at the DFK level even when an element
/// fails — item-level failure is data, not task failure, so the kernel's
/// chunk-level retry/hedge machinery stays reserved for real task loss.
/// The element that failed is the one at index `ok.len()`; elements after
/// it were never attempted (the client resubmits them as a smaller fused
/// chunk).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FusedOutput {
    /// Wire-encoded per-item results, in input order, up to (excluding)
    /// the first failing element.
    pub ok: Vec<Vec<u8>>,
    /// The failure of element `ok.len()`, if any element failed.
    pub err: Option<AppError>,
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Wrap an erased app body into its fused-chunk form: decode a
/// `Vec<Vec<u8>>` of per-item argument encodings, apply the inner body to
/// each in order, stop at the first failure, and encode a [`FusedOutput`].
///
/// Exposed so spawned worker processes can rebuild the body for an
/// advertised `_parsl_fmap_*` app from its `fmap[{name}; {sig}]`
/// signature, exactly like the join/barrier combinators.
pub fn fused_map_body(inner: ErasedAppFn) -> ErasedAppFn {
    Arc::new(move |bytes: &[u8]| {
        let items: Vec<Vec<u8>> = wire::from_bytes(bytes)
            .map_err(|e| AppError::Serialization(format!("fused chunk args: {e}")))?;
        let mut ok = Vec::with_capacity(items.len());
        let mut err = None;
        for item in &items {
            // Catch per element, not per chunk: a panicking element must
            // fail only its own logical item.
            match std::panic::catch_unwind(AssertUnwindSafe(|| (inner)(item))) {
                Ok(Ok(bytes)) => ok.push(bytes),
                Ok(Err(e)) => {
                    err = Some(e);
                    break;
                }
                Err(p) => {
                    err = Some(AppError::Panic(panic_message(p)));
                    break;
                }
            }
        }
        wire::to_bytes(&FusedOutput { ok, err }).map_err(|e| AppError::Serialization(e.to_string()))
    })
}

/// Per-call options for [`App::map`] / [`App::map_reduce`].
#[derive(Debug, Clone, Default)]
pub struct MapOptions {
    /// Items per fused chunk. When unset, auto-sized from the inner app's
    /// observed per-item service time (targeting ~100 ms of work per
    /// chunk, clamped to `[1, 4096]`); without enough samples, the input
    /// is split into ~1k chunks.
    pub chunk_size: Option<usize>,
    /// Tenant every fused chunk is charged to (one chunk = one quota
    /// slot, however many items it fuses).
    pub tenant: TenantId,
    /// Data hints inherited by every fused chunk.
    pub hints: DataHints,
}

struct MapInner {
    results: Vec<Option<Result<Bytes, TaskError>>>,
    remaining: usize,
}

struct MapState {
    cell: Mutex<MapInner>,
    cond: Condvar,
}

impl MapState {
    /// Record results for logical items; the last fill wakes waiters.
    fn fill_many(&self, entries: Vec<(usize, Result<Bytes, TaskError>)>) {
        let mut inner = self.cell.lock();
        for (i, v) in entries {
            if inner.results[i].is_none() {
                inner.results[i] = Some(v);
                inner.remaining -= 1;
            }
        }
        if inner.remaining == 0 {
            drop(inner);
            self.cond.notify_all();
        }
    }

    fn fill_all(&self, idxs: &[usize], v: &Result<Bytes, TaskError>) {
        self.fill_many(idxs.iter().map(|&i| (i, v.clone())).collect());
    }
}

/// Handle to an in-flight [`App::map`]: per-item results land as fused
/// chunks complete; [`MapHandle::results`] blocks for all of them.
pub struct MapHandle<R> {
    state: Arc<MapState>,
    chunks: usize,
    chunk_size: usize,
    _marker: PhantomData<fn() -> R>,
}

impl<R: TaskValue> MapHandle<R> {
    /// Number of logical items in the map.
    pub fn len(&self) -> usize {
        self.state.cell.lock().results.len()
    }

    /// True for a map over an empty iterator.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fused chunks submitted up front (split-retries not included).
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// Items per fused chunk actually used (auto-sized or overridden).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Non-blocking: has every logical item resolved?
    pub fn done(&self) -> bool {
        self.state.cell.lock().remaining == 0
    }

    /// Block until every item resolves or the deadline passes; true when
    /// complete.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.state.cell.lock();
        while inner.remaining > 0 {
            if self.state.cond.wait_until(&mut inner, deadline).timed_out() {
                return inner.remaining == 0;
            }
        }
        true
    }

    /// Block until every fused chunk (and split-retry) completes, then
    /// decode the per-item results in input order.
    pub fn results(&self) -> Vec<Result<R, ParslError>> {
        let mut inner = self.state.cell.lock();
        while inner.remaining > 0 {
            self.state.cond.wait(&mut inner);
        }
        inner
            .results
            .iter()
            .map(|slot| match slot.as_ref().expect("remaining == 0") {
                Ok(bytes) => wire::from_bytes(bytes).map_err(ParslError::Decode),
                Err(e) => Err(ParslError::Task(e.clone())),
            })
            .collect()
    }
}

impl<R> std::fmt::Debug for MapHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.state.cell.lock();
        f.debug_struct("MapHandle")
            .field("items", &inner.results.len())
            .field("remaining", &inner.remaining)
            .field("chunks", &self.chunks)
            .field("chunk_size", &self.chunk_size)
            .finish()
    }
}

/// Encode a chunk's argument frame: the selected per-item encodings as
/// one `Vec<Vec<u8>>` in a single ready slot.
fn encode_chunk(data: &[Vec<u8>], idxs: &[usize]) -> Result<Vec<u8>, AppError> {
    let slice: Vec<&Vec<u8>> = idxs.iter().map(|&i| &data[i]).collect();
    wire::to_bytes(&slice).map_err(|e| AppError::Serialization(e.to_string()))
}

/// Submit one fused chunk for the logical items `idxs` and arrange for
/// its completion to fill their result slots — splitting and resubmitting
/// the unprocessed remainder when an element fails mid-chunk. The
/// remainder is strictly smaller than the chunk, so the recursion
/// terminates even if every element fails.
fn submit_chunk(
    dfk: &Arc<DataFlowKernel>,
    fused: &Arc<RegisteredApp>,
    data: &Arc<Vec<Vec<u8>>>,
    idxs: Vec<usize>,
    tenant: TenantId,
    hints: &DataHints,
    state: &Arc<MapState>,
) {
    let args = match encode_chunk(data, &idxs) {
        Ok(b) => b,
        Err(e) => {
            state.fill_all(&idxs, &Err(TaskError::App(e)));
            return;
        }
    };
    let fut = dfk.submit(
        Arc::clone(fused),
        vec![ArgSlot::Ready(args)],
        SubmitOptions {
            tenant,
            hints: hints.clone(),
            items: idxs.len() as u32,
        },
    );
    let dfk = Arc::clone(dfk);
    let fused = Arc::clone(fused);
    let data = Arc::clone(data);
    let hints = hints.clone();
    let state2 = Arc::clone(state);
    fut.on_done(move |r| {
        let bytes = match r {
            Ok(b) => b,
            // Chunk-level failure (executor lost, walltime, shutdown,
            // undecodable chunk args): every unprocessed item inherits it.
            Err(e) => {
                state2.fill_all(&idxs, &Err(e.clone()));
                return;
            }
        };
        let out: FusedOutput = match wire::from_bytes(bytes) {
            Ok(out) => out,
            Err(e) => {
                state2.fill_all(
                    &idxs,
                    &Err(TaskError::App(AppError::Serialization(format!(
                        "fused chunk result: {e}"
                    )))),
                );
                return;
            }
        };
        let k = out.ok.len().min(idxs.len());
        let mut filled: Vec<(usize, Result<Bytes, TaskError>)> = Vec::with_capacity(k + 1);
        for (j, b) in out.ok.into_iter().take(k).enumerate() {
            filled.push((idxs[j], Ok(Bytes::from(b))));
        }
        match out.err {
            Some(e) if k < idxs.len() => {
                // Element k failed; everything past it was never run.
                filled.push((idxs[k], Err(TaskError::App(e))));
                state2.fill_many(filled);
                let rest = idxs[k + 1..].to_vec();
                if !rest.is_empty() {
                    submit_chunk(&dfk, &fused, &data, rest, tenant, &hints, &state2);
                }
            }
            _ => {
                // A well-formed chunk reports one result per item; a short
                // report without an error is a protocol violation.
                if k < idxs.len() {
                    let short = Err(TaskError::App(AppError::Serialization(
                        "fused chunk under-reported results".into(),
                    )));
                    for &i in &idxs[k..] {
                        filled.push((i, short.clone()));
                    }
                }
                state2.fill_many(filled);
            }
        }
    });
}

/// Pick items-per-chunk from the inner app's observed per-item service
/// time (see module docs).
fn auto_chunk_size(dfk: &DataFlowKernel, inner: AppId, n: usize) -> usize {
    if let Some(p50) = dfk.service_quantile_for(inner, 0.5, MIN_SAMPLES) {
        if p50 > Duration::ZERO {
            let per_chunk = (TARGET_CHUNK_TIME.as_secs_f64() / p50.as_secs_f64()) as usize;
            return per_chunk.clamp(1, MAX_CHUNK);
        }
    }
    n.div_ceil(FALLBACK_CHUNKS).clamp(1, MAX_CHUNK)
}

/// Register the fused-chunk twin of `inner` on this kernel. The
/// signature encodes the inner app's identity so spawned workers can
/// rebuild the body (`builtin::resolve` parses `fmap[{name}; {sig}]`);
/// app options — memoization, retries, executor pin, per-item walltime —
/// are inherited (the kernel scales walltime by `items`).
fn register_fused_map(dfk: &Arc<DataFlowKernel>, inner: &Arc<RegisteredApp>) -> Arc<RegisteredApp> {
    dfk.register_erased(
        &format!("_parsl_fmap_{}", inner.name),
        AppKind::Native,
        &format!("fmap[{}; {}]", inner.name, inner.signature),
        fused_map_body(Arc::clone(&inner.func)),
        inner.options.clone(),
    )
}

impl<T: TaskValue, R: TaskValue> App<(T,), R> {
    /// Apply this app to every element through fused chunks: the
    /// PoolExecutor-style bulk interface. Returns immediately with a
    /// [`MapHandle`]; results arrive per chunk.
    ///
    /// Equivalent to calling the app once per element — same values, same
    /// per-item failure attribution — at ~1/chunk_size of the per-task
    /// overhead.
    pub fn map<I>(&self, inputs: I) -> MapHandle<R>
    where
        I: IntoIterator<Item = T>,
    {
        self.map_with(inputs, MapOptions::default())
    }

    /// [`App::map`] with explicit options (chunk size, tenant, hints).
    pub fn map_with<I>(&self, inputs: I, opts: MapOptions) -> MapHandle<R>
    where
        I: IntoIterator<Item = T>,
    {
        let dfk = Arc::clone(self.dfk());
        let inner = Arc::clone(self.registered());
        // Encode every element up front; an element that will not encode
        // fails only itself, before any chunk is cut.
        let mut data: Vec<Vec<u8>> = Vec::new();
        let mut results: Vec<Option<Result<Bytes, TaskError>>> = Vec::new();
        let mut good: Vec<usize> = Vec::new();
        for v in inputs {
            // (T,) encodes as the concatenation of its fields, i.e. as T.
            match wire::to_bytes(&v) {
                Ok(b) => {
                    good.push(results.len());
                    data.push(b);
                    results.push(None);
                }
                Err(e) => {
                    data.push(Vec::new());
                    results.push(Some(Err(TaskError::App(AppError::Serialization(
                        e.to_string(),
                    )))));
                }
            }
        }
        let chunk_size = opts
            .chunk_size
            .unwrap_or_else(|| auto_chunk_size(&dfk, inner.id, good.len()))
            .max(1);
        let remaining = good.len();
        let chunks = good.len().div_ceil(chunk_size);
        let state = Arc::new(MapState {
            cell: Mutex::new(MapInner { results, remaining }),
            cond: Condvar::new(),
        });
        if !good.is_empty() {
            let fused = register_fused_map(&dfk, &inner);
            let data = Arc::new(data);
            for chunk in good.chunks(chunk_size) {
                submit_chunk(
                    &dfk,
                    &fused,
                    &data,
                    chunk.to_vec(),
                    opts.tenant,
                    &opts.hints,
                    &state,
                );
            }
        }
        MapHandle {
            state,
            chunks,
            chunk_size,
            _marker: PhantomData,
        }
    }

    /// Map every element and reduce the outputs to one value through a
    /// tree of fused reduce tasks (fan-in [`REDUCE_FAN_IN`]) instead of a
    /// flat 1k-way join.
    ///
    /// Semantics: `inputs.map(app).reduce(reduce).unwrap_or(init)` — the
    /// reducer left-folds outputs in input order, chunk partials first,
    /// then up the tree. For an **associative** reducer the result is
    /// byte-identical to the flat fold; non-associative reducers see an
    /// unspecified grouping.
    ///
    /// Unlike [`App::map`], an element failure fails the whole reduction
    /// (its chunk fails, and dependency failure propagates up the tree) —
    /// there is no per-item result to salvage. The fold and reduce bodies
    /// capture the client closure, so this path requires in-process
    /// workers (threadpool / in-proc htex); spawned worker processes
    /// cannot rebuild an arbitrary reducer from its name.
    pub fn map_reduce<I, F>(&self, inputs: I, init: R, reduce: F) -> AppFuture<R>
    where
        I: IntoIterator<Item = T>,
        F: Fn(R, R) -> R + Send + Sync + 'static,
    {
        self.map_reduce_with(inputs, init, reduce, MapOptions::default())
    }

    /// [`App::map_reduce`] with explicit options.
    pub fn map_reduce_with<I, F>(
        &self,
        inputs: I,
        init: R,
        reduce: F,
        opts: MapOptions,
    ) -> AppFuture<R>
    where
        I: IntoIterator<Item = T>,
        F: Fn(R, R) -> R + Send + Sync + 'static,
    {
        let dfk = Arc::clone(self.dfk());
        let inner = Arc::clone(self.registered());
        let reduce: Arc<dyn Fn(R, R) -> R + Send + Sync> = Arc::new(reduce);
        let mut data: Vec<Vec<u8>> = Vec::new();
        for v in inputs {
            match wire::to_bytes(&v) {
                Ok(b) => data.push(b),
                Err(e) => {
                    return AppFuture::from_shared_state(
                        dfk.failed_submission(AppError::Serialization(e.to_string())),
                    );
                }
            }
        }
        if data.is_empty() {
            return AppFuture::ready(&init);
        }
        let chunk_size = opts
            .chunk_size
            .unwrap_or_else(|| auto_chunk_size(&dfk, inner.id, data.len()))
            .max(1);
        let fold = dfk.register_erased(
            &format!("_parsl_fmapfold_{}", inner.name),
            AppKind::Native,
            &format!("fmapfold[{}; {}]", inner.name, inner.signature),
            fused_map_fold_body::<R>(Arc::clone(&inner.func), Arc::clone(&reduce)),
            inner.options.clone(),
        );
        let all: Vec<usize> = (0..data.len()).collect();
        let data = Arc::new(data);
        let mut partials: Vec<Arc<FutureState>> = Vec::with_capacity(all.len() / chunk_size + 1);
        for chunk in all.chunks(chunk_size) {
            let args = match encode_chunk(&data, chunk) {
                Ok(b) => b,
                Err(e) => return AppFuture::from_shared_state(dfk.failed_submission(e)),
            };
            partials.push(dfk.submit(
                Arc::clone(&fold),
                vec![ArgSlot::Ready(args)],
                SubmitOptions {
                    tenant: opts.tenant,
                    hints: opts.hints.clone(),
                    items: chunk.len() as u32,
                },
            ));
        }
        // Collapse the chunk partials through fused reduce levels. Each
        // level preserves input order, so the overall fold order matches
        // the flat left-fold.
        let mut reducers: std::collections::HashMap<usize, Arc<RegisteredApp>> =
            std::collections::HashMap::new();
        while partials.len() > 1 {
            let mut next = Vec::with_capacity(partials.len().div_ceil(REDUCE_FAN_IN));
            for group in partials.chunks(REDUCE_FAN_IN) {
                if group.len() == 1 {
                    next.push(Arc::clone(&group[0]));
                    continue;
                }
                let k = group.len();
                let app = reducers
                    .entry(k)
                    .or_insert_with(|| {
                        dfk.register_erased(
                            &format!("_parsl_freduce_{k}"),
                            AppKind::Native,
                            &format!("freduce[{}; {k}]", std::any::type_name::<R>()),
                            fused_reduce_body::<R>(Arc::clone(&reduce), k),
                            AppOptions::default(),
                        )
                    })
                    .clone();
                let slots = group
                    .iter()
                    .map(|st| ArgSlot::Pending(Arc::clone(st)))
                    .collect();
                next.push(dfk.submit(
                    app,
                    slots,
                    SubmitOptions {
                        tenant: opts.tenant,
                        ..SubmitOptions::default()
                    },
                ));
            }
            partials = next;
        }
        AppFuture::from_shared_state(partials.pop().expect("nonempty input has a root"))
    }
}

/// Fused map+fold chunk body: apply `inner` to each element and left-fold
/// the decoded outputs; the chunk's value is its partial. Any element
/// failure fails the chunk (map_reduce has no per-item results to save).
fn fused_map_fold_body<R: TaskValue>(
    inner: ErasedAppFn,
    reduce: Arc<dyn Fn(R, R) -> R + Send + Sync>,
) -> ErasedAppFn {
    Arc::new(move |bytes: &[u8]| {
        let items: Vec<Vec<u8>> = wire::from_bytes(bytes)
            .map_err(|e| AppError::Serialization(format!("fused fold args: {e}")))?;
        let mut acc: Option<R> = None;
        for item in &items {
            let out = std::panic::catch_unwind(AssertUnwindSafe(|| (inner)(item)))
                .map_err(|p| AppError::Panic(panic_message(p)))??;
            let v: R = wire::from_bytes(&out)
                .map_err(|e| AppError::Serialization(format!("fused fold item: {e}")))?;
            acc = Some(match acc.take() {
                None => v,
                Some(a) => reduce(a, v),
            });
        }
        let acc = acc.ok_or_else(|| AppError::Serialization("empty fused fold chunk".into()))?;
        wire::to_bytes(&acc).map_err(|e| AppError::Serialization(e.to_string()))
    })
}

/// Reduce-tree node body: left-fold `k` concatenated `R` partials.
fn fused_reduce_body<R: TaskValue>(
    reduce: Arc<dyn Fn(R, R) -> R + Send + Sync>,
    k: usize,
) -> ErasedAppFn {
    Arc::new(move |bytes: &[u8]| {
        let mut de = wire::Deserializer::new(bytes);
        let mut acc: Option<R> = None;
        for _ in 0..k {
            let v: R = serde::Deserialize::deserialize(&mut de)
                .map_err(|e: wire::Error| AppError::Serialization(e.to_string()))?;
            acc = Some(match acc.take() {
                None => v,
                Some(a) => reduce(a, v),
            });
        }
        if de.remaining() != 0 {
            return Err(AppError::Serialization("trailing bytes in reduce".into()));
        }
        let acc = acc.ok_or_else(|| AppError::Serialization("empty reduce group".into()))?;
        wire::to_bytes(&acc).map_err(|e| AppError::Serialization(e.to_string()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn dfk() -> Arc<DataFlowKernel> {
        DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap()
    }

    #[test]
    fn fused_body_matches_per_item_execution() {
        let inner: ErasedAppFn = Arc::new(|bytes: &[u8]| {
            let (x,): (u64,) = wire::from_bytes(bytes).unwrap();
            wire::to_bytes(&(x * 3)).map_err(|e| AppError::Serialization(e.to_string()))
        });
        let fused = fused_map_body(Arc::clone(&inner));
        let items: Vec<Vec<u8>> = (0..5u64).map(|x| wire::to_bytes(&(x,)).unwrap()).collect();
        let out = fused(&wire::to_bytes(&items).unwrap()).unwrap();
        let out: FusedOutput = wire::from_bytes(&out).unwrap();
        assert!(out.err.is_none());
        assert_eq!(out.ok.len(), 5);
        for (i, b) in out.ok.iter().enumerate() {
            assert_eq!(wire::from_bytes::<u64>(b).unwrap(), i as u64 * 3);
        }
    }

    #[test]
    fn fused_body_stops_at_first_failure() {
        let inner: ErasedAppFn = Arc::new(|bytes: &[u8]| {
            let (x,): (u64,) = wire::from_bytes(bytes).unwrap();
            if x == 2 {
                panic!("boom at {x}");
            }
            wire::to_bytes(&x).map_err(|e| AppError::Serialization(e.to_string()))
        });
        let fused = fused_map_body(inner);
        let items: Vec<Vec<u8>> = (0..5u64).map(|x| wire::to_bytes(&(x,)).unwrap()).collect();
        let out = fused(&wire::to_bytes(&items).unwrap()).unwrap();
        let out: FusedOutput = wire::from_bytes(&out).unwrap();
        assert_eq!(out.ok.len(), 2);
        match out.err {
            Some(AppError::Panic(m)) => assert!(m.contains("boom at 2")),
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn map_basic_values_and_order() {
        let dfk = dfk();
        let sq = dfk.python_app("sq", |x: u64| x * x);
        let handle = sq.map(0..100u64);
        assert_eq!(handle.len(), 100);
        let out: Vec<u64> = handle.results().into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
        dfk.shutdown();
    }

    #[test]
    fn map_respects_explicit_chunk_size() {
        let dfk = dfk();
        let id = dfk.python_app("id", |x: u32| x);
        let handle = id.map_with(
            0..10u32,
            MapOptions {
                chunk_size: Some(3),
                ..MapOptions::default()
            },
        );
        // 10 items at chunk 3 → chunks of 3,3,3,1.
        assert_eq!(handle.chunk_count(), 4);
        assert_eq!(handle.chunk_size(), 3);
        let out: Vec<u32> = handle.results().into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(out, (0..10u32).collect::<Vec<_>>());
        dfk.shutdown();
    }

    #[test]
    fn auto_chunk_size_targets_1k_chunks_without_samples() {
        let dfk = dfk();
        let id = dfk.python_app("cold", |x: u64| x);
        assert_eq!(auto_chunk_size(&dfk, id.registered().id, 1_000_000), 977);
        assert_eq!(auto_chunk_size(&dfk, id.registered().id, 10), 1);
        assert_eq!(auto_chunk_size(&dfk, id.registered().id, 0), 1);
        // Enormous inputs still respect the frame-budget clamp.
        assert_eq!(auto_chunk_size(&dfk, id.registered().id, 100_000_000), 4096);
        dfk.shutdown();
    }

    #[test]
    fn auto_chunk_size_uses_observed_service_time() {
        let dfk = dfk();
        let slow = dfk.python_app("slowish", |x: u64| {
            std::thread::sleep(Duration::from_millis(2));
            x
        });
        for i in 0..25u64 {
            crate::call!(slow, i).result().unwrap();
        }
        dfk.wait_for_all();
        let sized = auto_chunk_size(&dfk, slow.registered().id, 1_000_000);
        // ~2 ms per item against a 100 ms chunk target → tens of items,
        // not the ~1k-item cold fallback.
        assert!(
            (10..=100).contains(&sized),
            "expected service-informed chunk, got {sized}"
        );
        dfk.shutdown();
    }

    #[test]
    fn map_reduce_matches_flat_fold() {
        let dfk = dfk();
        let double = dfk.python_app("double", |x: u64| x * 2);
        let sum = double.map_reduce_with(
            0..1000u64,
            0,
            |a, b| a + b,
            MapOptions {
                chunk_size: Some(7),
                ..MapOptions::default()
            },
        );
        assert_eq!(sum.result().unwrap(), (0..1000u64).map(|x| x * 2).sum());
        dfk.shutdown();
    }

    #[test]
    fn map_reduce_tree_is_byte_identical_to_flat_reduce_for_strings() {
        let dfk = dfk();
        let show = dfk.python_app("show", |x: u32| format!("{x},"));
        // Concatenation is associative but *not* commutative: any
        // misordering in the tree would scramble the bytes.
        let joined = show.map_reduce_with(
            0..200u32,
            String::new(),
            |a, b| a + &b,
            MapOptions {
                chunk_size: Some(3),
                ..MapOptions::default()
            },
        );
        let flat: String = (0..200u32).map(|x| format!("{x},")).collect();
        assert_eq!(joined.result().unwrap(), flat);
        dfk.shutdown();
    }

    #[test]
    fn map_reduce_of_nothing_is_init() {
        let dfk = dfk();
        let id = dfk.python_app("idr", |x: u64| x);
        let out = id.map_reduce(std::iter::empty(), 42u64, |a, b| a + b);
        assert_eq!(out.result().unwrap(), 42);
        dfk.shutdown();
    }

    #[test]
    fn map_reduce_propagates_element_failure() {
        let dfk = dfk();
        let picky = dfk.python_app_fallible("picky", |x: u64| {
            if x == 13 {
                Err(AppError::msg("unlucky"))
            } else {
                Ok(x)
            }
        });
        let sum = picky.map_reduce_with(
            0..100u64,
            0,
            |a, b| a + b,
            MapOptions {
                chunk_size: Some(10),
                ..MapOptions::default()
            },
        );
        assert!(sum.result().is_err());
        dfk.shutdown();
    }
}
