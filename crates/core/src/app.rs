//! Apps: the decorator layer (§3.1.1).
//!
//! Parsl turns ordinary functions into *Apps* with `@python_app` and
//! `@bash_app`; invoking an app registers an asynchronous task and
//! immediately returns a future. The Rust rendering:
//!
//! ```
//! use parsl_core::prelude::*;
//!
//! let dfk = DataFlowKernel::builder().executor(ImmediateExecutor::new()).build().unwrap();
//! // @python_app
//! let hello = dfk.python_app("hello", |name: String| format!("Hello {name}"));
//! let f = hello.call((Dep::value("World".to_string()),));
//! assert_eq!(f.result().unwrap(), "Hello World");
//! // or with the call! macro sugar:
//! let f2 = parsl_core::call!(hello, "World".to_string());
//! assert_eq!(f2.result().unwrap(), "Hello World");
//! dfk.shutdown();
//! ```
//!
//! Passing an [`crate::AppFuture`] where a value is expected creates a
//! dependency edge; the DataFlowKernel launches the task only when every
//! future argument has resolved (§3.3).

use crate::dfk::{DataFlowKernel, SubmitOptions};
use crate::error::AppError;
use crate::future::AppFuture;
use crate::registry::RegisteredApp;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::marker::PhantomData;
use std::sync::Arc;

/// Values that can cross the task boundary: serializable, deserializable,
/// sendable, owned. The Rust analogue of "any Python object that can be
/// pickled" (§3.2); immutability is automatic because arguments are passed
/// by value through serialization.
pub trait TaskValue: Serialize + DeserializeOwned + Send + 'static {}
impl<T: Serialize + DeserializeOwned + Send + 'static> TaskValue for T {}

/// One argument position: a concrete value or a future from another app.
pub enum Dep<T> {
    /// A literal value, serialized at submission time.
    Value(T),
    /// The output of another app; creates a dependency edge.
    Future(AppFuture<T>),
}

impl<T> Dep<T> {
    /// Wrap a concrete value.
    pub fn value(v: T) -> Self {
        Dep::Value(v)
    }

    /// Wrap a future (equivalent to `Dep::from(fut)`).
    pub fn future(f: AppFuture<T>) -> Self {
        Dep::Future(f)
    }
}

impl<T> From<T> for Dep<T> {
    fn from(v: T) -> Self {
        Dep::Value(v)
    }
}

impl<T> From<AppFuture<T>> for Dep<T> {
    fn from(f: AppFuture<T>) -> Self {
        Dep::Future(f)
    }
}

impl<T> From<&AppFuture<T>> for Dep<T> {
    fn from(f: &AppFuture<T>) -> Self {
        Dep::Future(f.clone())
    }
}

/// An argument slot as the DataFlowKernel stores it: already-encoded bytes,
/// or a reference to the future that will supply them.
pub enum ArgSlot {
    /// Wire-encoded value, ready to splice into the argument buffer.
    Ready(Vec<u8>),
    /// Waiting on the future of this task.
    Pending(Arc<crate::future::FutureState>),
}

impl std::fmt::Debug for ArgSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgSlot::Ready(b) => write!(f, "Ready({} bytes)", b.len()),
            ArgSlot::Pending(st) => write!(f, "Pending({})", st.task_id()),
        }
    }
}

fn encode_arg<T: Serialize>(v: &T) -> Result<Vec<u8>, AppError> {
    wire::to_bytes(v).map_err(|e| AppError::Serialization(e.to_string()))
}

/// Argument tuples accepted by apps: conversion from `Dep` tuples to arg
/// slots, and worker-side decoding. Implemented for tuples of arity 0–8.
pub trait AppArgs: Sized + Send + 'static {
    /// The `(Dep<T1>, ..., Dep<Tn>)` tuple callers pass to `App::call`.
    type Deps;

    /// Encode ready values and collect future references, in position
    /// order.
    fn into_slots(deps: Self::Deps) -> Result<Vec<ArgSlot>, AppError>;

    /// Decode the concatenated argument buffer back into the typed tuple
    /// (runs in the worker's execution kernel).
    fn decode(bytes: &[u8]) -> Result<Self, AppError>;

    /// Signature string used in the app's identity hash.
    fn signature() -> String;
}

impl AppArgs for () {
    type Deps = ();

    fn into_slots(_deps: ()) -> Result<Vec<ArgSlot>, AppError> {
        Ok(Vec::new())
    }

    fn decode(bytes: &[u8]) -> Result<Self, AppError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(AppError::Serialization(
                "expected empty argument buffer".into(),
            ))
        }
    }

    fn signature() -> String {
        "()".to_string()
    }
}

macro_rules! impl_app_args {
    ($($T:ident . $idx:tt),+) => {
        impl<$($T: TaskValue),+> AppArgs for ($($T,)+) {
            type Deps = ($(Dep<$T>,)+);

            fn into_slots(deps: Self::Deps) -> Result<Vec<ArgSlot>, AppError> {
                Ok(vec![$(
                    match deps.$idx {
                        Dep::Value(v) => ArgSlot::Ready(encode_arg(&v)?),
                        Dep::Future(f) => ArgSlot::Pending(Arc::clone(f.state())),
                    }
                ),+])
            }

            fn decode(bytes: &[u8]) -> Result<Self, AppError> {
                wire::from_bytes::<($($T,)+)>(bytes)
                    .map_err(|e| AppError::Serialization(e.to_string()))
            }

            fn signature() -> String {
                let mut s = String::from("(");
                $(
                    s.push_str(std::any::type_name::<$T>());
                    s.push(',');
                )+
                s.push(')');
                s
            }
        }
    };
}

impl_app_args!(T0.0);
impl_app_args!(T0.0, T1.1);
impl_app_args!(T0.0, T1.1, T2.2);
impl_app_args!(T0.0, T1.1, T2.2, T3.3);
impl_app_args!(T0.0, T1.1, T2.2, T3.3, T4.4);
impl_app_args!(T0.0, T1.1, T2.2, T3.3, T4.4, T5.5);
impl_app_args!(T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6);
impl_app_args!(T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6, T7.7);

/// Adapter from ordinary closures to the tuple-argument world: a
/// `Fn(T1, T2) -> R` closure is an `AppFn<(T1, T2), R>`. This is what lets
/// app registration look like decorating a plain function, as in Parsl:
/// `dfk.python_app("add", |a: i64, b: i64| a + b)`.
pub trait AppFn<A: AppArgs, R>: Send + Sync + 'static {
    /// Apply the function to the decoded argument tuple.
    fn invoke(&self, args: A) -> R;
}

impl<F, R> AppFn<(), R> for F
where
    F: Fn() -> R + Send + Sync + 'static,
{
    fn invoke(&self, _args: ()) -> R {
        self()
    }
}

macro_rules! impl_app_fn {
    ($($T:ident . $idx:tt),+) => {
        impl<F, R, $($T: TaskValue),+> AppFn<($($T,)+), R> for F
        where
            F: Fn($($T),+) -> R + Send + Sync + 'static,
        {
            fn invoke(&self, args: ($($T,)+)) -> R {
                (self)($(args.$idx),+)
            }
        }
    };
}

impl_app_fn!(T0.0);
impl_app_fn!(T0.0, T1.1);
impl_app_fn!(T0.0, T1.1, T2.2);
impl_app_fn!(T0.0, T1.1, T2.2, T3.3);
impl_app_fn!(T0.0, T1.1, T2.2, T3.3, T4.4);
impl_app_fn!(T0.0, T1.1, T2.2, T3.3, T4.4, T5.5);
impl_app_fn!(T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6);
impl_app_fn!(T0.0, T1.1, T2.2, T3.3, T4.4, T5.5, T6.6, T7.7);

/// A typed handle to a registered app, bound to its DataFlowKernel.
///
/// Cloning is cheap; clones call the same registered function.
pub struct App<A: AppArgs, R: TaskValue> {
    dfk: Arc<DataFlowKernel>,
    registered: Arc<RegisteredApp>,
    _marker: PhantomData<fn(A) -> R>,
}

impl<A: AppArgs, R: TaskValue> Clone for App<A, R> {
    fn clone(&self) -> Self {
        App {
            dfk: Arc::clone(&self.dfk),
            registered: Arc::clone(&self.registered),
            _marker: PhantomData,
        }
    }
}

impl<A: AppArgs, R: TaskValue> App<A, R> {
    pub(crate) fn new(dfk: Arc<DataFlowKernel>, registered: Arc<RegisteredApp>) -> Self {
        App {
            dfk,
            registered,
            _marker: PhantomData,
        }
    }

    /// The app's registered name.
    pub fn name(&self) -> &str {
        &self.registered.name
    }

    /// Invoke the app asynchronously. Always returns a future immediately;
    /// submission problems (e.g. argument serialization failure or a shut
    /// down kernel) surface as the future's exception, mirroring how a
    /// Parsl app invocation never raises at the call site.
    ///
    /// Shorthand for `app.invoke().call(deps)`; per-call options (tenant,
    /// data hints) hang off the [`App::invoke`] builder.
    pub fn call(&self, deps: A::Deps) -> AppFuture<R> {
        self.invoke().call(deps)
    }

    /// Start building an invocation: chain per-call options, then
    /// [`Invocation::call`] with the arguments. This is *the* invocation
    /// API — `call` is sugar for the no-option build, and the old
    /// `call_as`/`call_hinted`/`call_hinted_as` spellings are thin shims
    /// over it.
    ///
    /// ```
    /// use parsl_core::prelude::*;
    ///
    /// let dfk = DataFlowKernel::builder()
    ///     .executor(ImmediateExecutor::new())
    ///     .build()
    ///     .unwrap();
    /// let double = dfk.python_app("double", |x: i64| x * 2);
    /// let f = double.invoke().tenant(TenantId(7)).call((Dep::value(21i64),));
    /// assert_eq!(f.result().unwrap(), 42);
    /// dfk.shutdown();
    /// ```
    pub fn invoke(&self) -> Invocation<'_, A, R> {
        Invocation {
            app: self,
            opts: SubmitOptions::default(),
        }
    }

    /// Invoke the app on behalf of a specific tenant.
    ///
    /// Deprecated spelling of `app.invoke().tenant(t).call(deps)`; kept
    /// as a delegating shim. Prefer [`DataFlowKernel::tenant`] when
    /// submitting many calls as one tenant.
    ///
    /// [`DataFlowKernel::tenant`]: crate::dfk::DataFlowKernel::tenant
    pub fn call_as(&self, tenant: crate::types::TenantId, deps: A::Deps) -> AppFuture<R> {
        self.invoke().tenant(tenant).call(deps)
    }

    /// Invoke the app with declared data inputs/outputs.
    ///
    /// Deprecated spelling of `app.invoke().hints(h).call(deps)`; kept as
    /// a delegating shim. The hints feed the kernel's
    /// `DataMap`/`DataAware` routing (see [`crate::datamap`]).
    pub fn call_hinted(&self, deps: A::Deps, hints: crate::datamap::DataHints) -> AppFuture<R> {
        self.invoke().hints(hints).call(deps)
    }

    /// Invoke the app with a tenant and data hints.
    ///
    /// Deprecated spelling of
    /// `app.invoke().tenant(t).hints(h).call(deps)`; kept as a delegating
    /// shim.
    pub fn call_hinted_as(
        &self,
        tenant: crate::types::TenantId,
        deps: A::Deps,
        hints: crate::datamap::DataHints,
    ) -> AppFuture<R> {
        self.invoke().tenant(tenant).hints(hints).call(deps)
    }

    /// The underlying registration (id, options, hash).
    pub fn registered(&self) -> &Arc<RegisteredApp> {
        &self.registered
    }

    /// The kernel this app is bound to (used by the fusion plane to
    /// submit fused chunks on the app's behalf).
    pub(crate) fn dfk(&self) -> &Arc<DataFlowKernel> {
        &self.dfk
    }
}

/// A pending invocation of an [`App`]: per-call options accumulate on
/// the builder, [`Invocation::call`] submits with the arguments. Created
/// by [`App::invoke`].
///
/// ```
/// use parsl_core::prelude::*;
///
/// let dfk = DataFlowKernel::builder()
///     .executor(ImmediateExecutor::new())
///     .build()
///     .unwrap();
/// let add = dfk.python_app("add", |a: i64, b: i64| a + b);
/// let f = add
///     .invoke()
///     .tenant(TenantId(1))
///     .hints(DataHints::default())
///     .call((Dep::value(20i64), Dep::value(22i64)));
/// assert_eq!(f.result().unwrap(), 42);
/// dfk.shutdown();
/// ```
#[must_use = "an Invocation does nothing until .call(args)"]
#[derive(Debug)]
pub struct Invocation<'a, A: AppArgs, R: TaskValue> {
    app: &'a App<A, R>,
    opts: SubmitOptions,
}

impl<A: AppArgs, R: TaskValue> Invocation<'_, A, R> {
    /// Submit under a tenant id (quota and fairness accounting);
    /// [`crate::types::TenantId::DEFAULT`] when unset.
    pub fn tenant(mut self, id: crate::types::TenantId) -> Self {
        self.opts.tenant = id;
        self
    }

    /// Declare data inputs/outputs for `DataAware` routing.
    pub fn hints(mut self, hints: crate::datamap::DataHints) -> Self {
        self.opts.hints = hints;
        self
    }

    /// Submit with the given arguments. Always returns a future
    /// immediately; submission problems surface as the future's
    /// exception.
    pub fn call(self, deps: A::Deps) -> AppFuture<R> {
        let app = self.app;
        let state = match A::into_slots(deps) {
            Ok(slots) => app
                .dfk
                .submit(Arc::clone(&app.registered), slots, self.opts),
            Err(e) => app.dfk.failed_submission(e),
        };
        AppFuture::from_state(state)
    }
}

impl<A: AppArgs, R: TaskValue> std::fmt::Debug for App<A, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "App({})", self.registered.name)
    }
}

/// Sugar for calling apps: wraps each argument with `Dep::from`, so values
/// and futures mix naturally.
///
/// ```
/// use parsl_core::prelude::*;
///
/// let dfk = DataFlowKernel::builder().executor(ImmediateExecutor::new()).build().unwrap();
/// let add = dfk.python_app("add", |a: i64, b: i64| a + b);
/// let inc = dfk.python_app("inc", |x: i64| x + 1);
/// let s = parsl_core::call!(add, 1i64, 2i64);
/// let t = parsl_core::call!(inc, 41);
/// assert_eq!(s.result().unwrap(), 3);
/// assert_eq!(t.result().unwrap(), 42);
/// dfk.shutdown();
/// ```
#[macro_export]
macro_rules! call {
    ($app:expr) => {
        $app.call(())
    };
    ($app:expr, $($arg:expr),+ $(,)?) => {
        $app.call(($($crate::app::Dep::from($arg),)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_args_roundtrip() {
        let slots = <() as AppArgs>::into_slots(()).unwrap();
        assert!(slots.is_empty());
        <() as AppArgs>::decode(&[]).unwrap();
        assert!(<() as AppArgs>::decode(&[1]).is_err());
    }

    #[test]
    fn tuple_args_encode_in_order() {
        let slots =
            <(u8, String) as AppArgs>::into_slots((Dep::value(7), Dep::value("x".into()))).unwrap();
        assert_eq!(slots.len(), 2);
        let mut buf = Vec::new();
        for s in &slots {
            match s {
                ArgSlot::Ready(b) => buf.extend_from_slice(b),
                ArgSlot::Pending(_) => panic!("no futures here"),
            }
        }
        let (a, b) = <(u8, String) as AppArgs>::decode(&buf).unwrap();
        assert_eq!(a, 7);
        assert_eq!(b, "x");
    }

    #[test]
    fn signatures_distinguish_types() {
        assert_ne!(
            <(u8,) as AppArgs>::signature(),
            <(u16,) as AppArgs>::signature()
        );
        assert_eq!(
            <(u8,) as AppArgs>::signature(),
            <(u8,) as AppArgs>::signature()
        );
    }

    #[test]
    fn dep_from_value_and_future() {
        let d: Dep<u32> = 5.into();
        assert!(matches!(d, Dep::Value(5)));
        let st = crate::future::FutureState::new(crate::types::TaskId(1));
        let fut: AppFuture<u32> = AppFuture::from_state(st);
        let d: Dep<u32> = fut.clone().into();
        assert!(matches!(d, Dep::Future(_)));
        let d: Dep<u32> = (&fut).into();
        assert!(matches!(d, Dep::Future(_)));
    }
}
