//! The modular executor interface (§3.6, §4.3).
//!
//! Executors "control the process by which the task is transported to
//! configured resources, executed on that resource, and results are
//! communicated back". The DataFlowKernel treats them uniformly through
//! this trait; concrete implementations (thread pool, HTEX, EXEX, LLEX)
//! live in the `parsl-executors` crate, and comparison systems in
//! `baselines`.

use crate::error::TaskError;
use crate::registry::{AppRegistry, RegisteredApp};
use crate::types::{ResourceSpec, TaskId, TenantId};
use bytes::Bytes;
use crossbeam::channel::Sender;
use std::sync::Arc;
use std::time::Instant;

/// A launchable task: the app reference plus wire-encoded arguments.
#[derive(Clone)]
pub struct TaskSpec {
    /// DFK task id; echoed back in the outcome.
    pub id: TaskId,
    /// The app to run (resolved again by registry id on the worker side).
    pub app: Arc<RegisteredApp>,
    /// Wire-encoded argument tuple.
    pub args: Bytes,
    /// Resource request.
    pub resources: ResourceSpec,
    /// 0 for the first try; incremented by DFK retries.
    pub attempt: u32,
    /// Logical workflow this task belongs to (stamped at submission;
    /// travels through the executor wire protocol for per-tenant
    /// accounting beyond the kernel boundary).
    pub tenant: TenantId,
    /// Logical items fused into this task (1 for ordinary tasks, the
    /// chunk length for `app.map` fused chunks). Per-task budgets that
    /// scale with work — walltime, hedge thresholds, service-time
    /// samples — multiply or divide by this so a 1000-item chunk is not
    /// mistaken for one slow task.
    pub items: u32,
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("id", &self.id)
            .field("app", &self.app.name)
            .field("args_len", &self.args.len())
            .field("attempt", &self.attempt)
            .field("tenant", &self.tenant)
            .field("items", &self.items)
            .finish()
    }
}

/// What an executor reports back for a finished (or lost) task.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// The task this outcome belongs to.
    pub id: TaskId,
    /// Attempt number echoed from the [`TaskSpec`]; lets the DFK discard
    /// stale outcomes that race with retries or walltime expiry.
    pub attempt: u32,
    /// Wire-encoded result bytes, or the failure.
    pub result: Result<Bytes, TaskError>,
    /// Identity of the worker that ran the task, when known.
    pub worker: Option<String>,
    /// When the worker started executing, when known.
    pub started: Option<Instant>,
    /// When execution finished, when known.
    pub finished: Option<Instant>,
}

impl TaskOutcome {
    /// Minimal outcome with no execution metadata.
    pub fn new(id: TaskId, attempt: u32, result: Result<Bytes, TaskError>) -> Self {
        TaskOutcome {
            id,
            attempt,
            result,
            worker: None,
            started: None,
            finished: None,
        }
    }
}

/// Everything an executor needs from the DFK at start time.
#[derive(Clone)]
pub struct ExecutorContext {
    /// Where to deliver [`TaskOutcome`]s (shared by all executors).
    ///
    /// The channel carries *batches*: an executor that receives a whole
    /// result frame (HTEX/EXEX/LLEX) forwards it as one `Vec` so the
    /// DFK's collector handles it in one completion-plane pass — one
    /// shard lock per shard, one checkpoint append, one monitor batch —
    /// instead of paying the full cycle per task. Single results ship as
    /// one-element vectors; the collector's greedy drain coalesces those
    /// too. Never *withhold* a finished outcome to grow a batch: the
    /// DFK's walltime clock keeps running until the outcome is accepted.
    pub completions: Sender<Vec<TaskOutcome>>,
    /// App lookup table for worker-side resolution.
    pub registry: Arc<AppRegistry>,
}

/// Executor failures surfaced to the DFK.
#[derive(Debug, Clone)]
pub enum ExecutorError {
    /// The executor has not been started or was shut down.
    NotRunning,
    /// The executor cannot accept the task (queue full, no capacity
    /// policy, unknown resource shape).
    Rejected(String),
    /// Internal communication failure.
    Comm(String),
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorError::NotRunning => write!(f, "executor not running"),
            ExecutorError::Rejected(m) => write!(f, "task rejected: {m}"),
            ExecutorError::Comm(m) => write!(f, "executor communication failure: {m}"),
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Block-based scaling interface, implemented by executors that can grow
/// and shrink through a provider (§4.2.3, §4.4). The strategy engine drives
/// this.
pub trait BlockScaling: Send + Sync {
    /// Blocks currently provisioned (requested or running).
    fn block_count(&self) -> usize;
    /// Worker slots one block contributes when fully up.
    fn workers_per_block(&self) -> usize;
    /// Request `n` more blocks; returns how many were actually requested
    /// (the provider may refuse some).
    fn scale_out(&self, n: usize) -> usize;
    /// Release up to `n` blocks (idle first); returns how many were
    /// released.
    fn scale_in(&self, n: usize) -> usize;
    /// Gracefully retire up to `n` blocks: stop feeding them work, let
    /// held tasks finish, then release the resources. Returns how many
    /// retirements began. The provided implementation falls back to the
    /// abrupt [`BlockScaling::scale_in`]; pools that can drain override
    /// it (see `parsl-providers`' `BlockPool`).
    fn drain(&self, n: usize) -> usize {
        self.scale_in(n)
    }
    /// Blocks currently draining (counted in [`BlockScaling::block_count`]
    /// until their release completes). Zero for pools without drain
    /// support.
    fn draining_blocks(&self) -> usize {
        0
    }
    /// Floor on provisioned blocks.
    fn min_blocks(&self) -> usize {
        0
    }
    /// Ceiling on provisioned blocks.
    fn max_blocks(&self) -> usize {
        usize::MAX
    }
}

/// The executor abstraction. See module docs.
pub trait Executor: Send + Sync {
    /// Label used in configs, execution hints, and monitoring.
    fn label(&self) -> &str;

    /// Bring the executor up (spawn interchange/manager/worker machinery).
    /// Called exactly once by the DFK before any submit.
    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError>;

    /// Hand a ready task to the executor. Completion arrives on the
    /// context's channel; this call must not block on task execution.
    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError>;

    /// Hand a batch of ready tasks to the executor in one call (§4.3.1:
    /// "configurable batching ... of tasks to minimize communication
    /// overheads"). The DataFlowKernel drains all tasks made ready by one
    /// event through this path, so a wide fan-out arrives as a handful of
    /// large batches rather than thousands of per-task calls.
    ///
    /// The provided implementation loops over [`Executor::submit`];
    /// executors with a wire protocol override it to ship one frame per
    /// batch. On error the whole batch is considered failed — the DFK
    /// synthesizes a lost-task outcome for every task in it, so an
    /// implementation that partially submitted must tolerate late
    /// duplicate outcomes (the DFK discards stale attempts).
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        for task in tasks {
            self.submit(task)?;
        }
        Ok(())
    }

    /// Best-effort cancellation of one in-flight attempt, used by the
    /// straggler-hedging plane to stop the losing attempt of a hedged
    /// pair. Semantics are advisory: an executor may ignore the request,
    /// and a cancelled attempt may still deliver an outcome (the DFK's
    /// attempt stamping filters it). The provided implementation does
    /// nothing.
    fn cancel(&self, id: TaskId, attempt: u32) {
        let _ = (id, attempt);
    }

    /// Tasks submitted whose outcomes have not yet been delivered.
    fn outstanding(&self) -> usize;

    /// Worker slots currently provisioned — the denominator for
    /// capacity-aware scheduling (`SchedulerPolicy::CapacityWeighted`).
    /// For scalable executors this tracks the block pool, so elastic
    /// scale-out immediately shifts new traffic toward the grown
    /// executor. Must be cheap: the dispatcher reads it once per batch.
    fn capacity(&self) -> usize {
        match self.scaling() {
            Some(s) => s.block_count() * s.workers_per_block(),
            None => self.connected_workers(),
        }
    }

    /// Workers currently connected/ready (0 before start).
    fn connected_workers(&self) -> usize;

    /// Stop all machinery. Outstanding tasks may be dropped; the DFK fails
    /// them as [`TaskError::Shutdown`].
    fn shutdown(&self);

    /// The scaling interface, for executors wired to a provider.
    fn scaling(&self) -> Option<&dyn BlockScaling> {
        None
    }
}

/// Test/inline executor: runs each task synchronously on the submitting
/// thread (through the full serialize → execute → serialize path) and
/// reports through the completion channel like any other executor.
///
/// Useful in unit tests and as the degenerate executor for pure dataflow
/// programs; the paper's ThreadPoolExecutor equivalent with real worker
/// threads lives in `parsl-executors`.
pub struct ImmediateExecutor {
    label: String,
    ctx: parking_lot::Mutex<Option<ExecutorContext>>,
    outstanding: Arc<std::sync::atomic::AtomicUsize>,
}

impl ImmediateExecutor {
    /// Create with the conventional label `"immediate"`.
    pub fn new() -> Self {
        Self::with_label("immediate")
    }

    /// Create with a custom label.
    pub fn with_label(label: &str) -> Self {
        ImmediateExecutor {
            label: label.to_string(),
            ctx: parking_lot::Mutex::new(None),
            outstanding: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
        }
    }
}

impl Default for ImmediateExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor for ImmediateExecutor {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        self.outstanding
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let started = Instant::now();
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        let outcome = TaskOutcome {
            id: task.id,
            attempt: task.attempt,
            result,
            worker: Some(format!("{}-inline", self.label)),
            started: Some(started),
            finished: Some(Instant::now()),
        };
        self.outstanding
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        ctx.completions
            .send(vec![outcome])
            .map_err(|_| ExecutorError::Comm("completion channel closed".into()))
    }

    fn outstanding(&self) -> usize {
        self.outstanding.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn connected_workers(&self) -> usize {
        1
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{AppOptions, AppRegistry};
    use crate::types::AppKind;

    fn spec(app: Arc<RegisteredApp>, args: Bytes) -> TaskSpec {
        TaskSpec {
            id: TaskId(1),
            app,
            args,
            resources: ResourceSpec::default(),
            attempt: 0,
            tenant: TenantId::DEFAULT,
            items: 1,
        }
    }

    #[test]
    fn immediate_executor_roundtrip() {
        let registry = AppRegistry::new();
        let app = registry.register(
            "double",
            AppKind::Native,
            "(u32)->u32",
            Arc::new(|args| {
                let (x,): (u32,) = wire::from_bytes(args)
                    .map_err(|e| crate::error::AppError::Serialization(e.to_string()))?;
                wire::to_bytes(&(x * 2))
                    .map_err(|e| crate::error::AppError::Serialization(e.to_string()))
            }),
            AppOptions::default(),
        );
        let (tx, rx) = crossbeam::channel::unbounded();
        let ex = ImmediateExecutor::new();
        ex.start(ExecutorContext {
            completions: tx,
            registry,
        })
        .unwrap();
        ex.submit(spec(app, Bytes::from(wire::to_bytes(&(21u32,)).unwrap())))
            .unwrap();
        let batch = rx.recv().unwrap();
        assert_eq!(batch.len(), 1);
        let outcome = batch.into_iter().next().unwrap();
        let v: u32 = wire::from_bytes(&outcome.result.unwrap()).unwrap();
        assert_eq!(v, 42);
        assert!(outcome.worker.unwrap().contains("inline"));
    }

    #[test]
    fn submit_before_start_fails() {
        let registry = AppRegistry::new();
        let app = registry.register(
            "noop",
            AppKind::Native,
            "()",
            Arc::new(|_| Ok(Vec::new())),
            AppOptions::default(),
        );
        let ex = ImmediateExecutor::new();
        assert!(matches!(
            ex.submit(spec(app, Bytes::new())),
            Err(ExecutorError::NotRunning)
        ));
    }
}
