//! Load-aware task routing across executors (§4.1, §4.3).
//!
//! The paper's DataFlowKernel "brings tasks and executors together": when a
//! task's dependencies resolve it must be placed on one of the configured
//! executors. The original text picks "at random"; that is fine when all
//! executors are interchangeable, but in a multi-site configuration (§4.3)
//! one slow or saturated executor silently absorbs the same share of work
//! as a fast one. This module makes the placement decision pluggable.
//!
//! A [`Scheduler`] sees a per-executor [`ExecutorSnapshot`] (in-flight
//! load and capacity) and picks a destination for each ready task. The
//! batch dispatcher consults it task by task while updating the snapshot
//! locally, so a single wide batch is *split* across executors by policy
//! rather than routed wholesale.
//!
//! Four built-in policies (select via [`SchedulerPolicy`] on the config
//! builder):
//!
//! - [`SchedulerPolicy::RandomHash`] — the paper's behavior and the
//!   default: a seeded counter-hash spreads tasks uniformly, lock-free.
//! - [`SchedulerPolicy::RoundRobin`] — strict rotation; uniform like
//!   `RandomHash` but with zero variance between executors.
//! - [`SchedulerPolicy::LeastOutstanding`] — join-shortest-queue on the
//!   dispatched-but-unfinished count; adapts to skewed executor speeds
//!   without any configuration.
//! - [`SchedulerPolicy::CapacityWeighted`] — a capacity-weighted hash:
//!   executors receive traffic in proportion to their worker slots
//!   (`Executor::capacity`, which tracks `BlockScaling` for elastic
//!   executors), so scale-out shifts traffic toward the grown executor.
//! - [`SchedulerPolicy::WeightedFair`] — tenant-aware placement for the
//!   multi-tenant kernel: spread the routing task's *own tenant* evenly
//!   (its per-executor in-flight count arrives via
//!   [`ExecutorSnapshot::tenant_outstanding`]), falling back to total
//!   queue depth on ties. Cross-tenant fairness — per-tenant
//!   `max_inflight` quotas and the weighted-deficit unparking order —
//!   lives in the kernel's admission plane (`dfk.rs`); this policy is
//!   the placement half of the pair.
//! - [`SchedulerPolicy::DataAware`] — locality-weighted placement for
//!   data-heavy workflows: score each candidate as estimated transfer
//!   seconds for the task's non-resident declared inputs (from the
//!   kernel's `DataMap` + `TransferModel`, see [`crate::datamap`]) plus
//!   `alpha` seconds per queued task; tasks with no declared inputs fall
//!   back to join-shortest-queue.
//!
//! Placement composes with **backpressure**: the kernel can cap in-flight
//! tasks per executor (`ConfigBuilder::max_inflight_per_executor`). The
//! dispatcher only offers under-cap executors to the scheduler; when none
//! qualifies the task parks and is re-queued as completions free capacity
//! (see `crates/core/src/dfk.rs`, `launch_batch`). Per-tenant quotas park
//! the same way, without blocking other tenants.

use std::sync::Arc;

/// One executor's state as seen by the scheduler at assignment time.
///
/// Snapshots are taken once per dispatch batch and updated locally as
/// tasks are assigned, so policies observe the load their own earlier
/// picks created.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorSnapshot {
    /// Position of this executor in the kernel's configuration order.
    /// The dispatcher may offer a *subset* of executors (backpressure
    /// filtering, pinning), so this need not equal the slice index.
    pub index: usize,
    /// Tasks dispatched to this executor and not yet completed.
    pub outstanding: usize,
    /// Worker slots currently provisioned (see `Executor::capacity`).
    /// Zero means unknown; policies treat it as one slot.
    pub capacity: usize,
    /// In-flight tasks of the *routing task's tenant* on this executor.
    /// Filled per task by the dispatcher; zero for single-tenant kernels
    /// and on paths that do not track tenancy (then tenant-aware policies
    /// degrade to their tie-breaker).
    pub tenant_outstanding: usize,
    /// Bytes of the *routing task's declared inputs* already resident on
    /// this executor (staged files, cached large outputs). Filled per
    /// task by the dispatcher from the kernel's `DataMap`; zero when the
    /// task declares no inputs.
    pub resident_bytes: u64,
    /// Estimated seconds to move the routing task's *non-resident* input
    /// bytes to this executor (the kernel's `TransferModel` applied to
    /// declared minus resident bytes). Zero when the task declares no
    /// inputs — which is how data-aware policies detect "nothing to
    /// weigh" and fall back to pure load balancing.
    pub transfer_cost: f64,
    /// True when the executor is being gracefully retired by the
    /// elasticity drain plane. The dispatcher withholds draining
    /// executors from the candidate set whenever any non-draining
    /// alternative exists, so policies normally never see this set; it is
    /// surfaced for custom schedulers that want to reason about it on the
    /// pinned/fallback paths where draining candidates do appear.
    pub draining: bool,
}

/// A placement policy: given candidate executors, choose one.
///
/// Implementations must be cheap — `assign` runs once per task on the
/// dispatch hot path — and stateless across calls: per-task entropy comes
/// in through `seq`, a kernel-wide counter that increments per assignment.
pub trait Scheduler: Send + Sync {
    /// Policy name, for monitoring and debug output.
    fn name(&self) -> &str;

    /// Choose among `candidates` (guaranteed non-empty): returns an index
    /// **into the slice**, not an executor index — the dispatcher maps it
    /// back through [`ExecutorSnapshot::index`].
    fn assign(&self, candidates: &[ExecutorSnapshot], seq: u64) -> usize;
}

/// Built-in policy selector, part of the kernel configuration.
#[derive(Clone, Default)]
pub enum SchedulerPolicy {
    /// Seeded uniform hash — the paper's random placement (default).
    #[default]
    RandomHash,
    /// Strict rotation over the configured executors.
    RoundRobin,
    /// Join-shortest-queue over in-flight counts.
    LeastOutstanding,
    /// Traffic proportional to provisioned worker slots.
    CapacityWeighted,
    /// Tenant-aware spread: each tenant's tasks join their own shortest
    /// queue (see [`WeightedFair`]).
    WeightedFair,
    /// Locality-weighted placement: minimize estimated transfer seconds
    /// plus `alpha` seconds per queued task (see [`DataAware`]).
    DataAware {
        /// Queue-depth weight in seconds per outstanding task. Use
        /// [`SchedulerPolicy::data_aware`] for the tuned default.
        alpha: f64,
    },
    /// A user-supplied policy.
    Custom(Arc<dyn Scheduler>),
}

impl SchedulerPolicy {
    /// [`SchedulerPolicy::DataAware`] with the tuned default weight:
    /// 5 ms of estimated transfer time per queued task, i.e. an executor
    /// may be one task deeper for every 5 ms of transfer it saves. Large
    /// inputs (tens of MB over a WAN) dominate and pin readers to their
    /// data; small or absent inputs leave the score to queue depth.
    pub fn data_aware() -> SchedulerPolicy {
        SchedulerPolicy::DataAware { alpha: 0.005 }
    }

    /// Materialize the policy. `seed` feeds the hashing policies so
    /// placement is reproducible for a given config seed.
    pub fn build(&self, seed: u64) -> Arc<dyn Scheduler> {
        match self {
            SchedulerPolicy::RandomHash => Arc::new(RandomHash { seed }),
            SchedulerPolicy::RoundRobin => Arc::new(RoundRobin),
            SchedulerPolicy::LeastOutstanding => Arc::new(LeastOutstanding),
            SchedulerPolicy::CapacityWeighted => Arc::new(CapacityWeighted { seed }),
            SchedulerPolicy::WeightedFair => Arc::new(WeightedFair),
            SchedulerPolicy::DataAware { alpha } => Arc::new(DataAware { alpha: *alpha }),
            SchedulerPolicy::Custom(s) => Arc::clone(s),
        }
    }
}

impl std::fmt::Debug for SchedulerPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchedulerPolicy::RandomHash => "RandomHash",
            SchedulerPolicy::RoundRobin => "RoundRobin",
            SchedulerPolicy::LeastOutstanding => "LeastOutstanding",
            SchedulerPolicy::CapacityWeighted => "CapacityWeighted",
            SchedulerPolicy::WeightedFair => "WeightedFair",
            SchedulerPolicy::DataAware { alpha } => {
                return write!(f, "DataAware {{ alpha: {alpha} }}")
            }
            SchedulerPolicy::Custom(s) => return write!(f, "Custom({})", s.name()),
        };
        f.write_str(name)
    }
}

/// SplitMix64: the statistically solid single-u64 mixer behind the
/// hashing policies (and the kernel's historical executor choice).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The paper's placement: "an executor is picked at random" (§4.1), here
/// as a seeded counter-hash so the choice is reproducible yet lock-free.
pub struct RandomHash {
    /// Config seed; two kernels with the same seed place identically.
    pub seed: u64,
}

impl Scheduler for RandomHash {
    fn name(&self) -> &str {
        "random_hash"
    }

    fn assign(&self, candidates: &[ExecutorSnapshot], seq: u64) -> usize {
        (splitmix64(self.seed.wrapping_add(seq)) % candidates.len() as u64) as usize
    }
}

/// Strict rotation by assignment sequence.
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round_robin"
    }

    fn assign(&self, candidates: &[ExecutorSnapshot], seq: u64) -> usize {
        (seq % candidates.len() as u64) as usize
    }
}

/// Join-shortest-queue: the executor with the fewest in-flight tasks.
/// Ties break toward the earlier candidate, which is stable and — because
/// the dispatcher bumps the local snapshot after every pick — still
/// spreads an idle-start batch evenly.
pub struct LeastOutstanding;

impl Scheduler for LeastOutstanding {
    fn name(&self) -> &str {
        "least_outstanding"
    }

    fn assign(&self, candidates: &[ExecutorSnapshot], _seq: u64) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.outstanding)
            .map(|(i, _)| i)
            .expect("candidates non-empty")
    }
}

/// Capacity-proportional hashing: a task lands on executor *i* with
/// probability `capacity_i / Σ capacity`, so an elastic executor that
/// scales out (growing `BlockScaling` worker slots) immediately attracts
/// a proportionally larger share of new traffic.
pub struct CapacityWeighted {
    /// Config seed, as in [`RandomHash`].
    pub seed: u64,
}

impl Scheduler for CapacityWeighted {
    fn name(&self) -> &str {
        "capacity_weighted"
    }

    fn assign(&self, candidates: &[ExecutorSnapshot], seq: u64) -> usize {
        // Zero-capacity executors (not yet started, scaled to nothing)
        // still get one virtual slot so they are reachable.
        let total: u64 = candidates.iter().map(|s| s.capacity.max(1) as u64).sum();
        let mut ticket = splitmix64(self.seed.wrapping_add(seq)) % total;
        for (i, s) in candidates.iter().enumerate() {
            let w = s.capacity.max(1) as u64;
            if ticket < w {
                return i;
            }
            ticket -= w;
        }
        candidates.len() - 1 // unreachable: tickets cover the full range
    }
}

/// Tenant-aware join-shortest-queue: place each task on the executor
/// where its *own tenant* has the fewest tasks in flight, breaking ties
/// by total queue depth, then by candidate order. A tenant's work
/// therefore spreads across the pool even while another tenant's backlog
/// piles onto one executor — per-executor hot spots created by one
/// workflow do not distort another workflow's placement.
///
/// This is the placement half of the multi-tenant fairness plane; the
/// admission half (per-tenant `max_inflight` quotas, weighted-deficit
/// unparking) is policy-independent and lives in the kernel. Placement
/// never changes *what* runs — only *where* — so results under
/// `WeightedFair` are observationally identical to `RandomHash`
/// (proven by `proptest_tenancy`).
pub struct WeightedFair;

impl Scheduler for WeightedFair {
    fn name(&self) -> &str {
        "weighted_fair"
    }

    fn assign(&self, candidates: &[ExecutorSnapshot], _seq: u64) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| (s.tenant_outstanding, s.outstanding))
            .map(|(i, _)| i)
            .expect("candidates non-empty")
    }
}

/// Locality-weighted join-shortest-queue: score each candidate as
/// `transfer_cost + alpha * outstanding` — estimated seconds to move the
/// task's non-resident input bytes there, plus `alpha` seconds of queue
/// penalty per in-flight task — and take the minimum. An executor
/// already holding a task's 100 MB reference input wins unless its queue
/// is `transfer_cost / alpha` tasks deeper than an empty peer, so
/// locality attracts readers to their data without ever starving load
/// balancing.
///
/// When the task declares no inputs every `transfer_cost` is zero and
/// the policy delegates to [`LeastOutstanding`] outright — not just
/// numerically equivalent but the same code path, so zero-input DAGs are
/// observationally identical under both policies (proven by
/// `proptest_locality`).
pub struct DataAware {
    /// Seconds of transfer cost one queued task is "worth".
    pub alpha: f64,
}

impl Scheduler for DataAware {
    fn name(&self) -> &str {
        "data_aware"
    }

    fn assign(&self, candidates: &[ExecutorSnapshot], seq: u64) -> usize {
        if candidates.iter().all(|s| s.transfer_cost == 0.0) {
            return LeastOutstanding.assign(candidates, seq);
        }
        candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let sa = a.transfer_cost + self.alpha * a.outstanding as f64;
                let sb = b.transfer_cost + self.alpha * b.outstanding as f64;
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.outstanding.cmp(&b.outstanding))
            })
            .map(|(i, _)| i)
            .expect("candidates non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps(loads: &[(usize, usize)]) -> Vec<ExecutorSnapshot> {
        loads
            .iter()
            .enumerate()
            .map(|(index, &(outstanding, capacity))| ExecutorSnapshot {
                index,
                outstanding,
                capacity,
                tenant_outstanding: 0,
                resident_bytes: 0,
                transfer_cost: 0.0,
                draining: false,
            })
            .collect()
    }

    #[test]
    fn random_hash_is_seed_deterministic_and_covers_all() {
        let a = RandomHash { seed: 7 };
        let b = RandomHash { seed: 7 };
        let c = snaps(&[(0, 1), (0, 1), (0, 1)]);
        let mut seen = [false; 3];
        for seq in 0..64 {
            let pick = a.assign(&c, seq);
            assert_eq!(pick, b.assign(&c, seq), "same seed, same placement");
            seen[pick] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 draws must hit all 3 executors");
    }

    #[test]
    fn round_robin_rotates() {
        let rr = RoundRobin;
        let c = snaps(&[(0, 1), (0, 1), (0, 1)]);
        let picks: Vec<usize> = (0..6).map(|seq| rr.assign(&c, seq)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_joins_shortest_queue() {
        let jsq = LeastOutstanding;
        assert_eq!(jsq.assign(&snaps(&[(5, 1), (2, 1), (9, 1)]), 0), 1);
        // Ties break to the earliest candidate.
        assert_eq!(jsq.assign(&snaps(&[(3, 1), (3, 1)]), 0), 0);
    }

    #[test]
    fn capacity_weighted_tracks_slots() {
        let cw = CapacityWeighted { seed: 42 };
        // 8-vs-2 slots: expect roughly an 80/20 split over many draws.
        let c = snaps(&[(0, 8), (0, 2)]);
        let n = 10_000;
        let big = (0..n).filter(|&seq| cw.assign(&c, seq) == 0).count();
        let share = big as f64 / n as f64;
        assert!((0.75..0.85).contains(&share), "fast share was {share}");
    }

    #[test]
    fn capacity_weighted_survives_zero_capacity() {
        let cw = CapacityWeighted { seed: 1 };
        let c = snaps(&[(0, 0), (0, 0)]);
        let mut seen = [false; 2];
        for seq in 0..32 {
            seen[cw.assign(&c, seq)] = true;
        }
        assert!(seen[0] && seen[1], "zero-capacity executors stay reachable");
    }

    #[test]
    fn policy_builder_maps_names() {
        for (policy, name) in [
            (SchedulerPolicy::RandomHash, "random_hash"),
            (SchedulerPolicy::RoundRobin, "round_robin"),
            (SchedulerPolicy::LeastOutstanding, "least_outstanding"),
            (SchedulerPolicy::CapacityWeighted, "capacity_weighted"),
            (SchedulerPolicy::WeightedFair, "weighted_fair"),
            (SchedulerPolicy::data_aware(), "data_aware"),
        ] {
            assert_eq!(policy.build(0).name(), name);
        }
    }

    #[test]
    fn data_aware_prefers_resident_data() {
        let da = DataAware { alpha: 0.005 };
        // Executor 0 holds the 80 MB input (cost 0); executor 1 would
        // have to fetch it (10 ms). Even 1 queued task on 0 is cheaper
        // than the move.
        let mut c = snaps(&[(1, 8), (0, 8)]);
        c[0].transfer_cost = 0.0;
        c[0].resident_bytes = 80_000_000;
        c[1].transfer_cost = 0.010;
        assert_eq!(da.assign(&c, 0), 0);
        // ... until the queue imbalance outweighs the transfer: at
        // alpha=5ms, 3 extra tasks (15 ms) > 10 ms of transfer.
        let mut c = snaps(&[(3, 8), (0, 8)]);
        c[0].transfer_cost = 0.0;
        c[1].transfer_cost = 0.010;
        assert_eq!(da.assign(&c, 0), 1);
    }

    #[test]
    fn data_aware_zero_inputs_matches_least_outstanding() {
        let da = DataAware { alpha: 0.005 };
        let jsq = LeastOutstanding;
        for loads in [
            vec![(5, 1), (2, 1), (9, 1)],
            vec![(3, 1), (3, 1)],
            vec![(0, 4), (0, 2), (0, 8), (0, 1)],
        ] {
            let c = snaps(&loads);
            for seq in 0..8 {
                assert_eq!(da.assign(&c, seq), jsq.assign(&c, seq));
            }
        }
    }

    #[test]
    fn data_aware_score_ties_break_on_queue_depth() {
        let da = DataAware { alpha: 0.005 };
        // Equal scores (0.010 vs 0.005 + 0.005*1): the shallower queue
        // wins so a locality tie never piles onto the busier executor.
        let mut c = snaps(&[(0, 1), (1, 1)]);
        c[0].transfer_cost = 0.010;
        c[1].transfer_cost = 0.005;
        assert_eq!(da.assign(&c, 0), 0);
    }

    #[test]
    fn weighted_fair_prefers_own_tenants_shortest_queue() {
        let wf = WeightedFair;
        // Executor 1 is globally busiest but has none of *this* tenant's
        // tasks; the tenant-aware policy still picks it.
        let mut c = snaps(&[(2, 1), (9, 1), (4, 1)]);
        c[0].tenant_outstanding = 3;
        c[1].tenant_outstanding = 0;
        c[2].tenant_outstanding = 1;
        assert_eq!(wf.assign(&c, 0), 1);
        // Tenant-count ties break on total outstanding.
        let mut c = snaps(&[(5, 1), (2, 1)]);
        c[0].tenant_outstanding = 1;
        c[1].tenant_outstanding = 1;
        assert_eq!(wf.assign(&c, 0), 1);
    }
}
