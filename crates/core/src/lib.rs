//! `parsl-core` — the paper's primary contribution, in Rust.
//!
//! A reproduction of *Parsl: Pervasive Parallel Programming in Python*
//! (HPDC'19): apps + futures on top of a dynamic task-dependency graph,
//! executed by pluggable executors with retries, memoization,
//! checkpointing, and block-based elasticity.
//!
//! # The model (§3)
//!
//! - **Apps** are functions registered on a [`DataFlowKernel`]; invoking
//!   one registers an asynchronous task and immediately returns an
//!   [`AppFuture`].
//! - **Futures** are single-assignment: `result()` blocks, `done()` polls.
//!   They are the only synchronization primitive.
//! - Passing a future as an argument to another app creates a dependency
//!   edge; the kernel launches a task when all its inputs have resolved,
//!   exploiting whatever parallelism the graph allows.
//!
//! # Quickstart
//!
//! ```
//! use parsl_core::prelude::*;
//!
//! let dfk = DataFlowKernel::builder()
//!     .executor(ImmediateExecutor::new())
//!     .build()
//!     .unwrap();
//!
//! // @python_app equivalents:
//! let square = dfk.python_app("square", |x: i64| x * x);
//! let add = dfk.python_app("add", |a: i64, b: i64| a + b);
//!
//! // Chain futures: add(square(3), square(4)).
//! let a = parsl_core::call!(square, 3);
//! let b = parsl_core::call!(square, 4);
//! let c = add.call((Dep::future(a), Dep::future(b)));
//! assert_eq!(c.result().unwrap(), 25);
//! dfk.shutdown();
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod bash;
pub mod combinators;
pub mod config;
pub mod datamap;
pub mod dfk;
pub mod error;
pub mod executor;
pub mod fusion;
pub mod future;
pub mod guidelines;
pub mod memo;
pub mod monitor;
pub mod registry;
pub mod scheduler;
pub mod strategy;
pub mod types;

pub use app::{App, AppArgs, AppFn, ArgSlot, Dep, Invocation, TaskValue};
pub use bash::BashOptions;
pub use combinators::{barrier, join_all, map_app};
pub use config::{Config, ConfigBuilder, TenantConfig};
pub use datamap::{DataHints, DataMap, DataRef, TransferModel};
pub use dfk::{DataFlowKernel, DfkBuilder, SubmitOptions, TenantHandle};
pub use error::{AppError, ParslError, TaskError};
pub use executor::{
    BlockScaling, Executor, ExecutorContext, ExecutorError, ImmediateExecutor, TaskOutcome,
    TaskSpec,
};
pub use fusion::{fused_map_body, FusedOutput, MapHandle, MapOptions};
pub use future::{AppFuture, FutureState};
pub use guidelines::{recommend, ExecutorChoice};
pub use memo::{memo_key, Memoizer};
pub use monitor::{MonitorEvent, MonitorSink, NullSink};
pub use registry::{AppId, AppOptions, AppRegistry, ErasedAppFn, RegisteredApp};
pub use scheduler::{ExecutorSnapshot, Scheduler, SchedulerPolicy};
pub use strategy::{
    HedgeConfig, LoadSignal, PredictiveConfig, PredictiveStrategy, ScalingDecision, SimpleStrategy,
    Strategy, StrategyConfig, StrategyMode,
};
pub use types::{AppKind, ResourceSpec, TaskId, TaskState, TenantId};

/// Everything a typical program needs.
pub mod prelude {
    pub use crate::app::{App, Dep, TaskValue};
    pub use crate::bash::BashOptions;
    pub use crate::call;
    pub use crate::config::{Config, TenantConfig};
    pub use crate::datamap::{DataHints, DataRef, TransferModel};
    pub use crate::dfk::{DataFlowKernel, TenantHandle};
    pub use crate::error::{AppError, ParslError, TaskError};
    pub use crate::executor::{Executor, ImmediateExecutor};
    pub use crate::fusion::{MapHandle, MapOptions};
    pub use crate::future::AppFuture;
    pub use crate::registry::AppOptions;
    pub use crate::scheduler::SchedulerPolicy;
    pub use crate::strategy::{HedgeConfig, PredictiveConfig, StrategyConfig, StrategyMode};
    pub use crate::types::{TaskId, TaskState, TenantId};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::Arc;

    fn dfk() -> Arc<DataFlowKernel> {
        DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap()
    }

    #[test]
    fn hello_world() {
        let dfk = dfk();
        let hello = dfk.python_app("hello", |name: String| format!("Hello {name}"));
        let f = crate::call!(hello, "World".to_string());
        assert_eq!(f.result().unwrap(), "Hello World");
        dfk.shutdown();
    }

    #[test]
    fn zero_arg_app() {
        let dfk = dfk();
        let now = dfk.python_app("fortytwo", || 42u8);
        let f = crate::call!(now);
        assert_eq!(f.result().unwrap(), 42);
        dfk.shutdown();
    }

    #[test]
    fn dependency_chain_executes_in_order() {
        let dfk = dfk();
        let inc = dfk.python_app("inc", |x: u64| x + 1);
        let mut f = crate::call!(inc, 0u64);
        for _ in 0..9 {
            f = crate::call!(inc, f);
        }
        assert_eq!(f.result().unwrap(), 10);
        assert_eq!(dfk.task_count(), 10);
        dfk.shutdown();
    }

    #[test]
    fn diamond_dependencies() {
        let dfk = dfk();
        let source = dfk.python_app("source", || 10i64);
        let left = dfk.python_app("left", |x: i64| x * 2);
        let right = dfk.python_app("right", |x: i64| x + 5);
        let join = dfk.python_app("join", |l: i64, r: i64| l - r);
        let s = crate::call!(source);
        let l = crate::call!(left, &s);
        let r = crate::call!(right, &s);
        let j = crate::call!(join, l, r);
        assert_eq!(j.result().unwrap(), 20 - 15);
        dfk.shutdown();
    }

    #[test]
    fn app_failure_propagates_as_dep_fail() {
        let dfk = dfk();
        let boom = dfk.python_app_fallible("boom", || -> Result<u32, AppError> {
            Err(AppError::msg("kaput"))
        });
        let consume = dfk.python_app("consume", |x: u32| x + 1);
        let b = crate::call!(boom);
        let c = crate::call!(consume, b);
        match c.result() {
            Err(ParslError::Task(TaskError::DependencyFailed { reason, .. })) => {
                assert!(reason.contains("kaput"));
            }
            other => panic!("expected DependencyFailed, got {other:?}"),
        }
        let counts = dfk.state_counts();
        assert_eq!(counts.get(&TaskState::Failed), Some(&1));
        assert_eq!(counts.get(&TaskState::DepFail), Some(&1));
        dfk.shutdown();
    }

    #[test]
    fn panics_are_caught_as_app_errors() {
        let dfk = dfk();
        let p = dfk.python_app("panics", || -> u32 { panic!("argh") });
        let f = crate::call!(p);
        match f.result() {
            Err(ParslError::Task(TaskError::App(AppError::Panic(msg)))) => {
                assert!(msg.contains("argh"));
            }
            other => panic!("expected Panic, got {other:?}"),
        }
        dfk.shutdown();
    }

    #[test]
    fn retries_eventually_succeed() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .retries(3)
            .build()
            .unwrap();
        let attempts = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&attempts);
        let flaky = dfk.python_app_fallible("flaky", move || -> Result<u32, AppError> {
            if a2.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(AppError::msg("transient"))
            } else {
                Ok(7)
            }
        });
        let f = crate::call!(flaky);
        assert_eq!(f.result().unwrap(), 7);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        dfk.shutdown();
    }

    #[test]
    fn retries_exhausted_reports_last_error() {
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .retries(2)
            .build()
            .unwrap();
        let always = dfk.python_app_fallible("always", || -> Result<u32, AppError> {
            Err(AppError::msg("permanent"))
        });
        let f = crate::call!(always);
        match f.result() {
            Err(ParslError::Task(TaskError::App(AppError::Failure(m)))) => {
                assert_eq!(m, "permanent")
            }
            other => panic!("unexpected {other:?}"),
        }
        dfk.shutdown();
    }

    #[test]
    fn memoization_skips_repeat_execution() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .memoize(true)
            .build()
            .unwrap();
        let runs = Arc::new(AtomicU32::new(0));
        let r2 = Arc::clone(&runs);
        let slow = dfk.python_app("slow", move |x: u32| {
            r2.fetch_add(1, Ordering::SeqCst);
            x * 10
        });
        assert_eq!(crate::call!(slow, 4u32).result().unwrap(), 40);
        assert_eq!(crate::call!(slow, 4u32).result().unwrap(), 40);
        assert_eq!(crate::call!(slow, 5u32).result().unwrap(), 50);
        assert_eq!(runs.load(Ordering::SeqCst), 2); // 4 memoized on repeat
        let counts = dfk.state_counts();
        assert_eq!(counts.get(&TaskState::Memoized), Some(&1));
        dfk.shutdown();
    }

    #[test]
    fn bash_app_runs_and_fails_properly() {
        let dfk = dfk();
        let ok = dfk.bash_app("ok", || "true".to_string());
        assert_eq!(crate::call!(ok).result().unwrap(), 0);
        let bad = dfk.bash_app("bad", || "exit 9".to_string());
        match crate::call!(bad).result() {
            Err(ParslError::Task(TaskError::App(AppError::BashExit { code: 9, .. }))) => {}
            other => panic!("unexpected {other:?}"),
        }
        dfk.shutdown();
    }

    #[test]
    fn wait_for_all_drains() {
        let dfk = dfk();
        let id = dfk.python_app("id", |x: u64| x);
        let futs: Vec<_> = (0..50).map(|i| crate::call!(id, i)).collect();
        dfk.wait_for_all();
        assert_eq!(dfk.live_tasks(), 0);
        for (i, f) in futs.iter().enumerate() {
            assert!(f.done());
            assert_eq!(f.result().unwrap(), i as u64);
        }
        dfk.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_fail_cleanly() {
        let dfk = dfk();
        let id = dfk.python_app("id", |x: u64| x);
        dfk.shutdown();
        let f = crate::call!(id, 1u64);
        assert!(matches!(
            f.result(),
            Err(ParslError::Task(TaskError::Shutdown))
        ));
    }

    #[test]
    fn walltime_kills_runaway_task() {
        let dfk = dfk();
        let sleepy = dfk.python_app_cfg(
            "sleepy",
            AppOptions {
                walltime: Some(std::time::Duration::from_millis(30)),
                ..Default::default()
            },
            || -> Result<u32, AppError> {
                std::thread::sleep(std::time::Duration::from_millis(200));
                Ok(1)
            },
        );
        let f = crate::call!(sleepy);
        // ImmediateExecutor runs synchronously, so the result may already be
        // decided; accept either WalltimeExceeded or success here and assert
        // the walltime machinery in the executor tests instead.
        let _ = f.result_timeout(std::time::Duration::from_secs(2));
        dfk.shutdown();
    }

    #[test]
    #[should_panic(expected = "does not match any configured executor")]
    fn bad_executor_hint_panics_at_registration() {
        let dfk = dfk();
        let _app = dfk.python_app_cfg::<(u32,), u32, _>(
            "pinned",
            AppOptions {
                executor: Some("nonexistent".into()),
                ..Default::default()
            },
            |x: u32| Ok(x),
        );
    }

    #[test]
    fn multi_executor_random_distribution() {
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::with_label("a"))
            .executor(ImmediateExecutor::with_label("b"))
            .seed(3)
            .build()
            .unwrap();
        let id = dfk.python_app("id", |x: u64| x);
        for i in 0..32 {
            let _ = crate::call!(id, i);
        }
        dfk.wait_for_all();
        // With 32 tasks and a fair coin, both executors should have seen
        // traffic (probability of miss ≈ 2^-31).
        assert_eq!(dfk.task_count(), 32);
        dfk.shutdown();
    }

    #[test]
    fn pinned_executor_hint_is_respected() {
        use crate::monitor::{MonitorEvent, MonitorSink};
        use parking_lot::Mutex;
        #[derive(Default)]
        struct Capture(Mutex<Vec<String>>);
        impl MonitorSink for Capture {
            fn on_event(&self, e: &MonitorEvent) {
                if let MonitorEvent::Task {
                    state: TaskState::Launched,
                    executor: Some(l),
                    ..
                } = e
                {
                    self.0.lock().push(l.clone());
                }
            }
        }
        let sink = Arc::new(Capture::default());
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::with_label("a"))
            .executor(ImmediateExecutor::with_label("b"))
            .monitor(sink.clone())
            .build()
            .unwrap();
        let pinned = dfk.python_app_cfg::<(u64,), u64, _>(
            "pinned",
            AppOptions {
                executor: Some("b".into()),
                ..Default::default()
            },
            |x: u64| Ok(x),
        );
        for i in 0..8 {
            let _ = crate::call!(pinned, i);
        }
        dfk.wait_for_all();
        let launched = sink.0.lock();
        assert_eq!(launched.len(), 8);
        assert!(launched.iter().all(|l| l == "b"));
        dfk.shutdown();
    }

    #[test]
    fn checkpoint_survives_restart() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let path = std::env::temp_dir().join(format!("parsl-dfk-ckpt-{}.dat", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let runs = Arc::new(AtomicU32::new(0));

        {
            let dfk = DataFlowKernel::builder()
                .executor(ImmediateExecutor::new())
                .memoize(true)
                .checkpoint_file(&path)
                .build()
                .unwrap();
            let r = Arc::clone(&runs);
            let work = dfk.python_app("work", move |x: u32| {
                r.fetch_add(1, Ordering::SeqCst);
                x + 100
            });
            assert_eq!(crate::call!(work, 1u32).result().unwrap(), 101);
            dfk.shutdown();
        }
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        {
            // "a user may re-execute a program and any Apps that are called
            // with the same arguments need not be re-executed" (§3.7).
            let dfk = DataFlowKernel::builder()
                .executor(ImmediateExecutor::new())
                .memoize(true)
                .load_checkpoint(&path)
                .build()
                .unwrap();
            let r = Arc::clone(&runs);
            let work = dfk.python_app("work", move |x: u32| {
                r.fetch_add(1, Ordering::SeqCst);
                x + 100
            });
            assert_eq!(crate::call!(work, 1u32).result().unwrap(), 101);
            dfk.shutdown();
        }
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "second run must be served from checkpoint"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wide_fan_out_fan_in() {
        let dfk = dfk();
        let leaf = dfk.python_app("leaf", |x: u64| x * x);
        let sum2 = dfk.python_app("sum2", |a: u64, b: u64| a + b);
        // 32 leaves reduced pairwise to one value.
        let mut layer: Vec<_> = (1..=32u64).map(|i| crate::call!(leaf, i)).collect();
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                next.push(sum2.call((Dep::future(pair[0].clone()), Dep::future(pair[1].clone()))));
            }
            layer = next;
        }
        let expected: u64 = (1..=32u64).map(|i| i * i).sum();
        assert_eq!(layer[0].result().unwrap(), expected);
        dfk.shutdown();
    }
}
