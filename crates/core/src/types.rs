//! Small shared types: task identifiers, states, and resource requests.

use std::fmt;
use std::time::Duration;

/// Unique identifier of a task within one DataFlowKernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Index of the task-table shard this id maps to, for `shards` a power
    /// of two. Ids are allocated sequentially, so consecutive tasks land on
    /// consecutive shards and a wide fan-out spreads across all locks.
    pub fn shard(self, shards: usize) -> usize {
        debug_assert!(shards.is_power_of_two());
        (self.0 as usize) & (shards - 1)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

/// Identity of the logical workflow (tenant) a task belongs to.
///
/// One DataFlowKernel can serve many concurrent workflows sharing one
/// executor pool; the tenant id is stamped on every task at submission
/// (via [`crate::dfk::DataFlowKernel::tenant`] or `App::call_as`) and
/// travels with it through routing, parking, retries, executor wire
/// frames, and monitor events. Plain `App::call` submissions run under
/// [`TenantId::DEFAULT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The ambient tenant used when no tenant is specified.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Lifecycle of a task in the dependency graph (§4.1).
///
/// ```text
/// Pending ──deps resolved──▶ Launched ──executor──▶ Running ──▶ Done
///    │                          │                      │
///    │                          └──────failure─────────┴──▶ Failed
///    │                                  (retries resubmit to Launched)
///    ├── memo/checkpoint hit ──▶ Memoized
///    └── upstream failure ─────▶ DepFail
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Waiting on dependencies.
    Pending,
    /// Dependencies met; handed to an executor.
    Launched,
    /// The executor reported the task started on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Finished unsuccessfully (after any retries).
    Failed,
    /// Result served from the memoization table or a checkpoint.
    Memoized,
    /// Never ran because a dependency failed.
    DepFail,
}

impl TaskState {
    /// True for states a task can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TaskState::Done | TaskState::Failed | TaskState::Memoized | TaskState::DepFail
        )
    }

    /// True if the task produced a usable result.
    pub fn is_success(self) -> bool {
        matches!(self, TaskState::Done | TaskState::Memoized)
    }
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Pending => "pending",
            TaskState::Launched => "launched",
            TaskState::Running => "running",
            TaskState::Done => "done",
            TaskState::Failed => "failed",
            TaskState::Memoized => "memoized",
            TaskState::DepFail => "dep_fail",
        };
        f.write_str(s)
    }
}

/// Per-task resource request, used for placement and accounting.
///
/// Mirrors §4.2.3: tasks may need "a fraction of a node through to multiple
/// nodes"; executors that bin-pack can consult this.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpec {
    /// Worker slots the task occupies (1 = one worker).
    pub cores: u32,
    /// Memory hint in MB (0 = unspecified).
    pub mem_mb: u64,
    /// Kill the task if it runs longer than this.
    pub walltime: Option<Duration>,
}

impl Default for ResourceSpec {
    fn default() -> Self {
        ResourceSpec {
            cores: 1,
            mem_mb: 0,
            walltime: None,
        }
    }
}

/// What kind of app a task runs; affects the execution kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// A pure in-language function (Parsl `@python_app`).
    Native,
    /// A shell command rendered by the app body (Parsl `@bash_app`).
    Bash,
    /// An internally generated data-staging task (§4.5).
    Staging,
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppKind::Native => "native",
            AppKind::Bash => "bash",
            AppKind::Staging => "staging",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(TaskState::Done.is_terminal());
        assert!(TaskState::Failed.is_terminal());
        assert!(TaskState::Memoized.is_terminal());
        assert!(TaskState::DepFail.is_terminal());
        assert!(!TaskState::Pending.is_terminal());
        assert!(!TaskState::Launched.is_terminal());
        assert!(!TaskState::Running.is_terminal());
    }

    #[test]
    fn success_states() {
        assert!(TaskState::Done.is_success());
        assert!(TaskState::Memoized.is_success());
        assert!(!TaskState::Failed.is_success());
        assert!(!TaskState::DepFail.is_success());
    }

    #[test]
    fn tenant_default_and_display() {
        assert_eq!(TenantId::default(), TenantId::DEFAULT);
        assert_eq!(TenantId(7).to_string(), "tenant-7");
    }

    #[test]
    fn default_resources_are_one_core() {
        let r = ResourceSpec::default();
        assert_eq!(r.cores, 1);
        assert_eq!(r.walltime, None);
    }
}
