//! Bash app execution (§3.1.1).
//!
//! A bash app's body returns "a fragment of Bash shell code. That shell
//! code will be executed in a sandbox environment"; stdout/stderr can be
//! redirected to files, and the return value is the UNIX exit code —
//! nonzero codes mark the task failed.

use crate::error::AppError;
use std::path::PathBuf;
use std::process::{Command, Stdio};

/// Redirection and sandbox options for a bash app (the `stdout=`/`stderr=`
/// keywords of Parsl's `@bash_app`).
#[derive(Debug, Clone, Default)]
pub struct BashOptions {
    /// Redirect the command's stdout to this file.
    pub stdout: Option<PathBuf>,
    /// Redirect the command's stderr to this file.
    pub stderr: Option<PathBuf>,
    /// Working directory; when `None` a fresh sandbox directory is created
    /// under the system temp dir and removed afterwards.
    pub cwd: Option<PathBuf>,
}

/// Execute a rendered shell command under the sandbox rules.
///
/// Returns the (always zero) exit code on success; nonzero exits and spawn
/// failures become [`AppError`]s.
pub fn run_bash(command: &str, opts: &BashOptions) -> Result<i32, AppError> {
    let (workdir, ephemeral) = match &opts.cwd {
        Some(d) => (d.clone(), false),
        None => {
            let d = std::env::temp_dir().join(format!(
                "parsl-sandbox-{}-{}",
                std::process::id(),
                fastrand_suffix()
            ));
            std::fs::create_dir_all(&d)
                .map_err(|e| AppError::BashSpawn(format!("sandbox dir: {e}")))?;
            (d, true)
        }
    };

    let mut cmd = Command::new("sh");
    cmd.arg("-c")
        .arg(command)
        .current_dir(&workdir)
        .stdin(Stdio::null());

    match &opts.stdout {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| AppError::BashSpawn(format!("stdout file {path:?}: {e}")))?;
            cmd.stdout(Stdio::from(f));
        }
        None => {
            cmd.stdout(Stdio::null());
        }
    }
    match &opts.stderr {
        Some(path) => {
            let f = std::fs::File::create(path)
                .map_err(|e| AppError::BashSpawn(format!("stderr file {path:?}: {e}")))?;
            cmd.stderr(Stdio::from(f));
        }
        None => {
            cmd.stderr(Stdio::null());
        }
    }

    let status = cmd
        .status()
        .map_err(|e| AppError::BashSpawn(format!("spawn `sh -c`: {e}")))?;

    if ephemeral {
        let _ = std::fs::remove_dir_all(&workdir);
    }

    match status.code() {
        Some(0) => Ok(0),
        Some(code) => Err(AppError::BashExit {
            code,
            command: command.to_string(),
        }),
        None => Err(AppError::BashExit {
            code: -1,
            command: command.to_string(),
        }),
    }
}

/// Cheap unique suffix without pulling a full RNG into the hot path.
fn fastrand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    wire::fnv1a(&t.subsec_nanos().to_le_bytes()) ^ (t.as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_command_returns_zero() {
        assert_eq!(run_bash("true", &BashOptions::default()).unwrap(), 0);
    }

    #[test]
    fn nonzero_exit_is_error_with_code() {
        let err = run_bash("exit 3", &BashOptions::default()).unwrap_err();
        assert!(matches!(err, AppError::BashExit { code: 3, .. }));
    }

    #[test]
    fn stdout_redirection_captures_output() {
        let path = std::env::temp_dir().join(format!("parsl-bash-out-{}", std::process::id()));
        let opts = BashOptions {
            stdout: Some(path.clone()),
            ..Default::default()
        };
        run_bash("echo hello-from-bash", &opts).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.trim(), "hello-from-bash");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stderr_redirection_captures_errors() {
        let path = std::env::temp_dir().join(format!("parsl-bash-err-{}", std::process::id()));
        let opts = BashOptions {
            stderr: Some(path.clone()),
            ..Default::default()
        };
        run_bash("echo oops 1>&2", &opts).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.trim(), "oops");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explicit_cwd_is_respected() {
        let dir = std::env::temp_dir().join(format!("parsl-bash-cwd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("marker.txt");
        let opts = BashOptions {
            cwd: Some(dir.clone()),
            ..Default::default()
        };
        run_bash("echo here > marker.txt", &opts).unwrap();
        assert!(out.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sandbox_dir_is_cleaned_up() {
        // Have the command report its own sandbox path, then verify that
        // directory is gone after the call returns.
        let report =
            std::env::temp_dir().join(format!("parsl-bash-sbx-report-{}", std::process::id()));
        let opts = BashOptions::default();
        run_bash(&format!("pwd > {}", report.display()), &opts).unwrap();
        let sandbox = std::fs::read_to_string(&report).unwrap();
        let sandbox = std::path::Path::new(sandbox.trim());
        assert!(
            sandbox
                .file_name()
                .unwrap()
                .to_string_lossy()
                .starts_with("parsl-sandbox-"),
            "command must have run inside an ephemeral sandbox, got {sandbox:?}"
        );
        assert!(!sandbox.exists(), "sandbox {sandbox:?} must be removed");
        std::fs::remove_file(&report).unwrap();
    }
}
