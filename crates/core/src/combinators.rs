//! Higher-level parallelism constructs: `join_all`, `barrier`, and `map`.
//!
//! The paper's future work (§7) names "constructs for delivering
//! parallelism such as maps and additional synchronization primitives such
//! as barriers"; reduce-style stages (Figure 5) also need joins wider than
//! an app's argument list. These combinators build those patterns on the
//! same dependency machinery as ordinary apps — each one is a real task in
//! the graph, so monitoring, memoization policy, and failure propagation
//! all apply.

use crate::app::{ArgSlot, TaskValue};
use crate::dfk::{DataFlowKernel, SubmitOptions};
use crate::error::AppError;
use crate::future::AppFuture;
use crate::registry::AppOptions;
use crate::types::AppKind;
use std::sync::Arc;

/// Wait for every future and collect the values in order:
/// `Vec<AppFuture<T>> → AppFuture<Vec<T>>`.
///
/// If any input fails, the join fails with a dependency error, like any
/// task whose parent failed.
///
/// ```
/// use parsl_core::prelude::*;
/// use parsl_core::combinators::join_all;
///
/// let dfk = DataFlowKernel::builder().executor(ImmediateExecutor::new()).build().unwrap();
/// let sq = dfk.python_app("sq", |x: u64| x * x);
/// let futs: Vec<_> = (1..=20u64).map(|i| parsl_core::call!(sq, i)).collect();
/// let all = join_all(&dfk, futs);
/// assert_eq!(all.result().unwrap().iter().sum::<u64>(), 2870);
/// dfk.shutdown();
/// ```
pub fn join_all<T: TaskValue>(
    dfk: &Arc<DataFlowKernel>,
    futures: Vec<AppFuture<T>>,
) -> AppFuture<Vec<T>> {
    let n = futures.len();
    // The join body decodes `n` concatenated T-encodings and re-encodes
    // them as a Vec<T>.
    let erased: crate::registry::ErasedAppFn = Arc::new(move |bytes: &[u8]| {
        let mut de = wire::Deserializer::new(bytes);
        let mut out: Vec<T> = Vec::with_capacity(n);
        for _ in 0..n {
            let v = serde::Deserialize::deserialize(&mut de)
                .map_err(|e: wire::Error| AppError::Serialization(e.to_string()))?;
            out.push(v);
        }
        if de.remaining() != 0 {
            return Err(AppError::Serialization("trailing bytes in join".into()));
        }
        wire::to_bytes(&out).map_err(|e| AppError::Serialization(e.to_string()))
    });
    let app = dfk.register_erased(
        &format!("_parsl_join_{n}"),
        AppKind::Native,
        &format!("join[{}; {n}]", std::any::type_name::<T>()),
        erased,
        AppOptions::default(),
    );
    let slots: Vec<ArgSlot> = futures
        .iter()
        .map(|f| ArgSlot::Pending(Arc::clone(f.state())))
        .collect();
    AppFuture::from_state(dfk.submit(app, slots, SubmitOptions::default()))
}

/// Synchronization barrier: resolves (to `()`) once every input future has
/// resolved successfully; fails if any input fails.
pub fn barrier<T: TaskValue>(
    dfk: &Arc<DataFlowKernel>,
    futures: Vec<AppFuture<T>>,
) -> AppFuture<()> {
    let n = futures.len();
    let erased: crate::registry::ErasedAppFn = Arc::new(move |_bytes: &[u8]| {
        // Inputs already resolved or we would not be running; values are
        // discarded.
        wire::to_bytes(&()).map_err(|e| AppError::Serialization(e.to_string()))
    });
    let app = dfk.register_erased(
        &format!("_parsl_barrier_{n}"),
        AppKind::Native,
        &format!("barrier[{n}]"),
        erased,
        AppOptions::default(),
    );
    let slots: Vec<ArgSlot> = futures
        .iter()
        .map(|f| ArgSlot::Pending(Arc::clone(f.state())))
        .collect();
    AppFuture::from_state(dfk.submit(app, slots, SubmitOptions::default()))
}

/// Apply a one-argument app to every element: the `map` construct.
///
/// ```
/// use parsl_core::prelude::*;
/// use parsl_core::combinators::map_app;
///
/// let dfk = DataFlowKernel::builder().executor(ImmediateExecutor::new()).build().unwrap();
/// let double = dfk.python_app("double", |x: i64| x * 2);
/// let futs = map_app(&double, vec![1, 2, 3]);
/// let vals: Vec<i64> = futs.iter().map(|f| f.result().unwrap()).collect();
/// assert_eq!(vals, vec![2, 4, 6]);
/// dfk.shutdown();
/// ```
pub fn map_app<T: TaskValue, R: TaskValue>(
    app: &crate::app::App<(T,), R>,
    inputs: Vec<T>,
) -> Vec<AppFuture<R>> {
    inputs
        .into_iter()
        .map(|v| app.call((crate::app::Dep::Value(v),)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn dfk() -> Arc<DataFlowKernel> {
        DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap()
    }

    #[test]
    fn join_preserves_order() {
        let dfk = dfk();
        let id = dfk.python_app("id", |x: u32| x);
        let futs: Vec<_> = (0..25u32).map(|i| crate::call!(id, i)).collect();
        let all = join_all(&dfk, futs);
        assert_eq!(all.result().unwrap(), (0..25).collect::<Vec<u32>>());
        dfk.shutdown();
    }

    #[test]
    fn join_of_nothing_is_empty() {
        let dfk = dfk();
        let all: AppFuture<Vec<u32>> = join_all(&dfk, Vec::new());
        assert_eq!(all.result().unwrap(), Vec::<u32>::new());
        dfk.shutdown();
    }

    #[test]
    fn join_fails_if_any_input_fails() {
        let dfk = dfk();
        let ok = dfk.python_app("ok", |x: u32| x);
        let bad = dfk.python_app_fallible("bad", || -> Result<u32, AppError> {
            Err(AppError::msg("x"))
        });
        let futs = vec![
            crate::call!(ok, 1u32),
            crate::call!(bad),
            crate::call!(ok, 3u32),
        ];
        let all = join_all(&dfk, futs);
        assert!(matches!(
            all.result(),
            Err(ParslError::Task(TaskError::DependencyFailed { .. }))
        ));
        dfk.shutdown();
    }

    #[test]
    fn barrier_waits_for_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dfk = DataFlowKernel::builder()
            .executor(crate::executor::ImmediateExecutor::new())
            .build()
            .unwrap();
        static DONE: AtomicUsize = AtomicUsize::new(0);
        DONE.store(0, Ordering::SeqCst);
        let work = dfk.python_app("work", |x: u32| {
            DONE.fetch_add(1, Ordering::SeqCst);
            x
        });
        let futs: Vec<_> = (0..10u32).map(|i| crate::call!(work, i)).collect();
        let b = barrier(&dfk, futs);
        b.result().unwrap();
        assert_eq!(DONE.load(Ordering::SeqCst), 10);
        dfk.shutdown();
    }

    #[test]
    fn map_then_join_round_trip() {
        let dfk = dfk();
        let inc = dfk.python_app("inc", |x: i64| x + 1);
        let futs = map_app(&inc, (0..50).collect());
        let all = join_all(&dfk, futs);
        let expect: Vec<i64> = (1..=50).collect();
        assert_eq!(all.result().unwrap(), expect);
        dfk.shutdown();
    }
}
