//! Data-placement registry and transfer-cost model (§4.5 data gravity).
//!
//! The paper's wide-area data management stages files with regular tasks
//! but routes by queue depth alone, so a 100-way fan-out over one 10 GB
//! input both stages it 100 times and scatters the readers away from the
//! copy that already landed. This module gives the kernel a memory of
//! *where bytes live*:
//!
//! - [`DataRef`] — a content key (FNV-1a of the file's URL) plus an
//!   expected size in bytes. Apps declare their inputs as `DataRef`s via
//!   [`DataHints`] (`app.invoke().hints(h)`), and staging apps declare the
//!   staged file as their output.
//! - [`DataMap`] — a sharded registry from content key to the set of
//!   executors holding a copy, populated when a staging task (or any
//!   task with a declared output) completes and charged by the router
//!   when it sends a reader somewhere the bytes are not yet resident.
//!   Entries for an executor are invalidated wholesale when its manager
//!   is lost or the executor scales in.
//! - [`TransferModel`] — the latency + bytes/bandwidth cost model (the
//!   same shape as simnet's `Link`/Fabric model and the data manager's
//!   simulated WAN) that converts missing bytes into seconds, comparable
//!   against queue depth by the `DataAware` scheduler policy.
//!
//! The registry deliberately tracks *placement*, not *contents*: values
//! stay in the staging cache / memo table; the `DataMap` only answers
//! "how many of this task's input bytes are already on executor i?".

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A reference to a (potentially large) data object a task reads or
/// writes: a content key plus the expected transfer size. The key is
/// FNV-1a of the canonical URL, matching the staging cache's keying, so
/// the hint an app declares and the copy the data manager admits meet in
/// the same [`DataMap`] entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataRef {
    /// Content key (FNV-1a of the canonical URL).
    pub key: u64,
    /// Expected size in bytes; drives the transfer-cost estimate.
    pub bytes: u64,
}

impl DataRef {
    /// Reference a data object by URL and expected size.
    pub fn from_url(url: &str, bytes: u64) -> DataRef {
        DataRef {
            key: wire::fnv1a_str(url),
            bytes,
        }
    }
}

/// Declared data inputs/output of one app invocation, attached at call
/// time (`app.invoke().hints(h)`). Tasks that declare nothing route exactly
/// as before — the `DataAware` policy falls back to join-shortest-queue.
#[derive(Debug, Clone, Default)]
pub struct DataHints {
    /// Data objects the task reads; routing weighs the cost of moving
    /// the non-resident ones to each candidate executor.
    pub inputs: Vec<DataRef>,
    /// A data object the task produces (e.g. a staged file); recorded as
    /// resident on the executor that ran the task when it completes.
    pub output: Option<DataRef>,
}

impl DataHints {
    /// Hints for a task that reads the given objects.
    pub fn reading(inputs: Vec<DataRef>) -> DataHints {
        DataHints {
            inputs,
            output: None,
        }
    }

    /// Hints for a task that produces the given object.
    pub fn producing(output: DataRef) -> DataHints {
        DataHints {
            inputs: Vec::new(),
            output: Some(output),
        }
    }
}

/// Latency + bandwidth transfer-cost model: moving `n` bytes costs
/// `latency + n / bandwidth` seconds, zero when nothing moves. The same
/// shape as simnet's per-link Fabric model and the data manager's
/// simulated WAN; defaults mirror the data manager's HTTP path (1 ms
/// WAN latency, 8 GB/s).
#[derive(Debug, Clone, Copy)]
pub struct TransferModel {
    /// Fixed per-transfer latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second.
    pub bandwidth: u64,
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel {
            latency: Duration::from_millis(1),
            bandwidth: 8_000_000_000,
        }
    }
}

impl TransferModel {
    /// Seconds to move `bytes` over this link; zero bytes cost nothing.
    pub fn cost_secs(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency.as_secs_f64() + bytes as f64 / self.bandwidth.max(1) as f64
    }
}

/// Number of lock shards, masked by the low bits of the (well-mixed
/// FNV-1a) content key — the same design as the memo table: lookups run
/// once per task on the routing hot path.
const DATA_SHARDS: usize = 16;

struct Entry {
    bytes: u64,
    holders: HashSet<usize>,
}

/// Sharded registry of which executor holds which data object.
///
/// Writers: the completion plane (declared outputs of finished tasks),
/// the router (charging a placement marks the inputs resident — the
/// staging cache will hold them after the first read). Readers: the
/// per-task locality fill that prices each candidate executor.
/// Invalidation: [`DataMap::forget_executor`] on manager loss/scale-in.
pub struct DataMap {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    bytes_moved: AtomicU64,
}

impl Default for DataMap {
    fn default() -> Self {
        Self::new()
    }
}

impl DataMap {
    /// Empty registry.
    pub fn new() -> DataMap {
        DataMap {
            shards: (0..DATA_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            bytes_moved: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(key as usize) & (DATA_SHARDS - 1)]
    }

    /// Record that `executor` holds a copy of `data`.
    pub fn record(&self, data: DataRef, executor: usize) {
        let mut shard = self.shard(data.key).lock();
        let entry = shard.entry(data.key).or_insert_with(|| Entry {
            bytes: data.bytes,
            holders: HashSet::new(),
        });
        entry.bytes = entry.bytes.max(data.bytes);
        entry.holders.insert(executor);
    }

    /// Bytes of `inputs` already resident on `executor`.
    pub fn resident_bytes(&self, inputs: &[DataRef], executor: usize) -> u64 {
        inputs
            .iter()
            .filter(|d| {
                self.shard(d.key)
                    .lock()
                    .get(&d.key)
                    .is_some_and(|e| e.holders.contains(&executor))
            })
            .map(|d| d.bytes)
            .sum()
    }

    /// Commit a placement: every non-resident input becomes resident on
    /// `executor` (after the first read the staging cache holds it), and
    /// the missing bytes are charged to the kernel-wide moved counter.
    /// Returns the bytes this placement had to move.
    pub fn charge(&self, inputs: &[DataRef], executor: usize) -> u64 {
        let mut moved = 0;
        for d in inputs {
            let mut shard = self.shard(d.key).lock();
            let entry = shard.entry(d.key).or_insert_with(|| Entry {
                bytes: d.bytes,
                holders: HashSet::new(),
            });
            entry.bytes = entry.bytes.max(d.bytes);
            if entry.holders.insert(executor) {
                moved += d.bytes;
            }
        }
        if moved > 0 {
            self.bytes_moved.fetch_add(moved, Ordering::Relaxed);
        }
        moved
    }

    /// Drop every residency claim for `executor` — its manager was lost
    /// or it scaled in, so its staged copies can no longer be assumed.
    pub fn forget_executor(&self, executor: usize) {
        for shard in &self.shards {
            let mut map = shard.lock();
            map.retain(|_, e| {
                e.holders.remove(&executor);
                !e.holders.is_empty()
            });
        }
    }

    /// Total bytes the router has had to move (charged placements).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved.load(Ordering::Relaxed)
    }

    /// Number of tracked data objects (for introspection/tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_resident() {
        let m = DataMap::new();
        let a = DataRef::from_url("ftp://h/ref.fa", 1000);
        let b = DataRef::from_url("ftp://h/reads.fq", 50);
        m.record(a, 2);
        assert_eq!(m.resident_bytes(&[a, b], 2), 1000);
        assert_eq!(m.resident_bytes(&[a, b], 0), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn charge_moves_only_missing_bytes_once() {
        let m = DataMap::new();
        let a = DataRef::from_url("u1", 700);
        let b = DataRef::from_url("u2", 30);
        m.record(a, 1);
        // First placement on executor 1 only moves the missing input.
        assert_eq!(m.charge(&[a, b], 1), 30);
        // Second identical placement moves nothing: both now resident.
        assert_eq!(m.charge(&[a, b], 1), 0);
        // A different executor pays for both.
        assert_eq!(m.charge(&[a, b], 0), 730);
        assert_eq!(m.bytes_moved(), 760);
    }

    #[test]
    fn forget_executor_invalidates_residency() {
        let m = DataMap::new();
        let a = DataRef::from_url("u", 10);
        m.record(a, 0);
        m.record(a, 1);
        m.forget_executor(0);
        assert_eq!(m.resident_bytes(&[a], 0), 0);
        assert_eq!(m.resident_bytes(&[a], 1), 10);
        // Last holder gone → entry disappears entirely.
        m.forget_executor(1);
        assert!(m.is_empty());
    }

    #[test]
    fn transfer_model_prices_bytes() {
        let tm = TransferModel {
            latency: Duration::from_millis(10),
            bandwidth: 1_000_000,
        };
        assert_eq!(tm.cost_secs(0), 0.0);
        let c = tm.cost_secs(1_000_000);
        assert!((c - 1.01).abs() < 1e-9, "10ms + 1s, got {c}");
        // Degenerate zero bandwidth must not divide by zero.
        let z = TransferModel {
            latency: Duration::ZERO,
            bandwidth: 0,
        };
        assert!(z.cost_secs(5).is_finite());
    }
}
