//! Configuration: the separation of code and configuration (§3.5).
//!
//! "Parsl separates program logic from execution configuration, with the
//! latter described by a Python object so that developers can easily
//! introspect permissible options, validate settings, and retrieve/edit
//! configurations." The Rust rendering is a builder that validates at
//! `build()`.

use crate::datamap::TransferModel;
use crate::executor::Executor;
use crate::monitor::MonitorSink;
use crate::scheduler::SchedulerPolicy;
use crate::strategy::StrategyConfig;
use crate::types::TenantId;
use std::path::PathBuf;
use std::sync::Arc;

/// Fairness settings for one tenant (logical workflow) sharing the
/// kernel. Tenants not configured here run with `TenantConfig::default()`
/// — weight 1, no quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Relative share of the pool when tenants contend; the
    /// weighted-deficit unparking order serves the tenant with the
    /// smallest in-flight/weight ratio first. Must be at least 1.
    pub weight: u32,
    /// Cap on this tenant's tasks in flight across *all* executors;
    /// ready tasks beyond it park until the tenant's completions free
    /// quota (`None` = unbounded).
    pub max_inflight: Option<usize>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            max_inflight: None,
        }
    }
}

/// Full DataFlowKernel configuration.
pub struct Config {
    /// One or more executors; with several and no per-app hint, tasks are
    /// distributed randomly (§4.1 "multi-site execution").
    pub executors: Vec<Arc<dyn Executor>>,
    /// Default retry budget per task (0 = no retries, Parsl's default).
    pub retries: u32,
    /// DFK-wide memoization default (per-app options override).
    pub memoize: bool,
    /// Write-through checkpoint file for successful results.
    pub checkpoint_file: Option<PathBuf>,
    /// Checkpoint files from previous runs to pre-load.
    pub load_checkpoints: Vec<PathBuf>,
    /// Elasticity strategy settings.
    pub strategy: StrategyConfig,
    /// Event sink for task state transitions and worker counts.
    pub monitor: Option<Arc<dyn MonitorSink>>,
    /// Seed for the hashing schedulers (reproducible placement).
    pub seed: u64,
    /// How unpinned tasks are routed across executors (§4.1; the default
    /// reproduces the paper's random placement).
    pub scheduler: SchedulerPolicy,
    /// Per-executor in-flight cap: tasks beyond it park on the ready
    /// queue instead of dispatching (`None` = unbounded).
    pub max_inflight_per_executor: Option<usize>,
    /// Per-tenant fairness settings (weight, quota); tenants absent here
    /// run with the defaults (weight 1, no quota).
    pub tenants: Vec<(TenantId, TenantConfig)>,
    /// Cost model converting non-resident input bytes into seconds for
    /// the `DataAware` scheduler (defaults mirror the data manager's
    /// simulated WAN: 1 ms latency, 8 GB/s).
    pub transfer_model: TransferModel,
    /// Batched result collection (default `true`): the collector drains
    /// every queued outcome into one completion-plane pass. `false`
    /// processes outcomes strictly one at a time — the pre-batching
    /// behaviour, kept as a measurable/testable baseline
    /// (`fig_completion`, `proptest_batching`).
    pub completion_batching: bool,
    /// Most outcomes the collector folds into one completion-plane pass
    /// (default [`crate::dfk::COLLECT_BATCH_CAP`] = 4096). See
    /// [`ConfigBuilder::collect_batch_cap`] for the tradeoff.
    pub collect_batch_cap: usize,
}

impl Config {
    /// Start building a config.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }
}

impl std::fmt::Debug for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Config")
            .field(
                "executors",
                &self
                    .executors
                    .iter()
                    .map(|e| e.label().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("retries", &self.retries)
            .field("memoize", &self.memoize)
            .field("checkpoint_file", &self.checkpoint_file)
            .field("strategy", &self.strategy)
            .field("scheduler", &self.scheduler)
            .field("max_inflight_per_executor", &self.max_inflight_per_executor)
            .finish()
    }
}

/// Builder for [`Config`].
#[derive(Default)]
pub struct ConfigBuilder {
    executors: Vec<Arc<dyn Executor>>,
    retries: u32,
    memoize: bool,
    checkpoint_file: Option<PathBuf>,
    load_checkpoints: Vec<PathBuf>,
    strategy: Option<StrategyConfig>,
    monitor: Option<Arc<dyn MonitorSink>>,
    seed: u64,
    scheduler: SchedulerPolicy,
    max_inflight_per_executor: Option<usize>,
    tenants: Vec<(TenantId, TenantConfig)>,
    completion_batching: Option<bool>,
    transfer_model: Option<TransferModel>,
    collect_batch_cap: Option<usize>,
}

impl ConfigBuilder {
    /// Add an executor.
    pub fn executor(mut self, e: impl Executor + 'static) -> Self {
        self.executors.push(Arc::new(e));
        self
    }

    /// Add an already-shared executor.
    pub fn executor_arc(mut self, e: Arc<dyn Executor>) -> Self {
        self.executors.push(e);
        self
    }

    /// Set the default retry budget.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Enable/disable memoization by default.
    pub fn memoize(mut self, on: bool) -> Self {
        self.memoize = on;
        self
    }

    /// Write successful results through to this checkpoint file.
    pub fn checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_file = Some(path.into());
        self
    }

    /// Pre-load results from a previous run's checkpoint file.
    pub fn load_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.load_checkpoints.push(path.into());
        self
    }

    /// Configure elasticity.
    pub fn strategy(mut self, s: StrategyConfig) -> Self {
        self.strategy = Some(s);
        self
    }

    /// Attach a monitoring sink.
    pub fn monitor(mut self, sink: Arc<dyn MonitorSink>) -> Self {
        self.monitor = Some(sink);
        self
    }

    /// Seed the hashing schedulers (placement is reproducible per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the task-routing policy (default:
    /// [`SchedulerPolicy::RandomHash`], the paper's behavior).
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = policy;
        self
    }

    /// Cap tasks in flight per executor; ready tasks beyond the cap park
    /// until completions free capacity.
    pub fn max_inflight_per_executor(mut self, cap: usize) -> Self {
        self.max_inflight_per_executor = Some(cap);
        self
    }

    /// Configure one tenant's fairness settings (weight and/or quota).
    /// Unconfigured tenants run with [`TenantConfig::default`].
    pub fn tenant(mut self, id: TenantId, cfg: TenantConfig) -> Self {
        self.tenants.push((id, cfg));
        self
    }

    /// Set the transfer-cost model the `DataAware` scheduler uses to
    /// price moving a task's non-resident input bytes to a candidate
    /// executor (default: 1 ms latency, 8 GB/s — the data manager's
    /// simulated WAN).
    pub fn transfer_model(mut self, model: TransferModel) -> Self {
        self.transfer_model = Some(model);
        self
    }

    /// Toggle batched result collection (default on). With `false` the
    /// collector handles each outcome in its own completion-plane pass —
    /// the per-task baseline the batching benchmarks and equivalence
    /// proptests compare against.
    pub fn completion_batching(mut self, on: bool) -> Self {
        self.completion_batching = Some(on);
        self
    }

    /// Cap on how many outcomes the collector folds into one
    /// completion-plane pass (default 4096,
    /// [`crate::dfk::COLLECT_BATCH_CAP`]). This is a latency/throughput
    /// knob: a **larger** cap amortizes the completion cycle (one shard
    /// lock per shard, one checkpoint append, one monitor batch) over
    /// more outcomes under a sustained storm, at the cost of more
    /// per-pass memory and a longer stretch before the first future in
    /// the batch fires; a **smaller** cap bounds that latency and the
    /// per-pass allocation but pays the fixed completion-plane cost more
    /// often. Must be at least 1.
    pub fn collect_batch_cap(mut self, cap: usize) -> Self {
        self.collect_batch_cap = Some(cap);
        self
    }

    /// Validate and produce the [`Config`].
    pub fn build(self) -> Result<Config, crate::error::ParslError> {
        if self.executors.is_empty() {
            return Err(crate::error::ParslError::Config(
                "at least one executor is required".into(),
            ));
        }
        if self.collect_batch_cap == Some(0) {
            return Err(crate::error::ParslError::Config(
                "collect_batch_cap must be at least 1 \
                 (a cap of 0 could never fold any outcome)"
                    .into(),
            ));
        }
        if self.max_inflight_per_executor == Some(0) {
            return Err(crate::error::ParslError::Config(
                "max_inflight_per_executor must be at least 1 \
                 (a cap of 0 could never dispatch anything)"
                    .into(),
            ));
        }
        let mut labels = std::collections::HashSet::new();
        for e in &self.executors {
            if !labels.insert(e.label().to_string()) {
                return Err(crate::error::ParslError::Config(format!(
                    "duplicate executor label {:?}",
                    e.label()
                )));
            }
        }
        let mut tenant_ids = std::collections::HashSet::new();
        for (id, cfg) in &self.tenants {
            if !tenant_ids.insert(*id) {
                return Err(crate::error::ParslError::Config(format!(
                    "duplicate tenant config for {id}"
                )));
            }
            if cfg.weight == 0 {
                return Err(crate::error::ParslError::Config(format!(
                    "{id}: weight must be at least 1"
                )));
            }
            if cfg.max_inflight == Some(0) {
                return Err(crate::error::ParslError::Config(format!(
                    "{id}: max_inflight must be at least 1 \
                     (a quota of 0 could never dispatch anything)"
                )));
            }
        }
        Ok(Config {
            executors: self.executors,
            retries: self.retries,
            memoize: self.memoize,
            checkpoint_file: self.checkpoint_file,
            load_checkpoints: self.load_checkpoints,
            strategy: self.strategy.unwrap_or_default(),
            monitor: self.monitor,
            seed: self.seed,
            scheduler: self.scheduler,
            max_inflight_per_executor: self.max_inflight_per_executor,
            tenants: self.tenants,
            completion_batching: self.completion_batching.unwrap_or(true),
            transfer_model: self.transfer_model.unwrap_or_default(),
            collect_batch_cap: self
                .collect_batch_cap
                .unwrap_or(crate::dfk::COLLECT_BATCH_CAP),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::ImmediateExecutor;

    #[test]
    fn builder_requires_an_executor() {
        assert!(Config::builder().build().is_err());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let r = Config::builder()
            .executor(ImmediateExecutor::with_label("x"))
            .executor(ImmediateExecutor::with_label("x"))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn defaults() {
        let c = Config::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap();
        assert_eq!(c.retries, 0);
        assert!(!c.memoize);
        assert!(!c.strategy.enabled());
        assert!(c.checkpoint_file.is_none());
        assert!(matches!(c.scheduler, SchedulerPolicy::RandomHash));
        assert!(c.max_inflight_per_executor.is_none());
        assert!(c.completion_batching, "batched collection is the default");
    }

    #[test]
    fn collect_batch_cap_validated_and_flows_through() {
        // Zero could never fold an outcome; build() must refuse.
        assert!(Config::builder()
            .executor(ImmediateExecutor::new())
            .collect_batch_cap(0)
            .build()
            .is_err());
        let c = Config::builder()
            .executor(ImmediateExecutor::new())
            .collect_batch_cap(128)
            .build()
            .unwrap();
        assert_eq!(c.collect_batch_cap, 128);
        let d = Config::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap();
        assert_eq!(d.collect_batch_cap, crate::dfk::COLLECT_BATCH_CAP);
    }

    #[test]
    fn completion_batching_can_be_disabled() {
        let c = Config::builder()
            .executor(ImmediateExecutor::new())
            .completion_batching(false)
            .build()
            .unwrap();
        assert!(!c.completion_batching);
    }

    #[test]
    fn zero_inflight_cap_rejected() {
        // A cap of 0 would park every task forever; build() must refuse.
        let r = Config::builder()
            .executor(ImmediateExecutor::new())
            .max_inflight_per_executor(0)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn tenant_configs_validated() {
        let base = || Config::builder().executor(ImmediateExecutor::new());
        // Zero weight and zero quota are both unusable.
        assert!(base()
            .tenant(
                TenantId(1),
                TenantConfig {
                    weight: 0,
                    max_inflight: None
                }
            )
            .build()
            .is_err());
        assert!(base()
            .tenant(
                TenantId(1),
                TenantConfig {
                    weight: 1,
                    max_inflight: Some(0)
                }
            )
            .build()
            .is_err());
        // Duplicate tenant ids are a config error.
        assert!(base()
            .tenant(TenantId(1), TenantConfig::default())
            .tenant(TenantId(1), TenantConfig::default())
            .build()
            .is_err());
        // A valid config flows through.
        let c = base()
            .tenant(
                TenantId(2),
                TenantConfig {
                    weight: 3,
                    max_inflight: Some(8),
                },
            )
            .build()
            .unwrap();
        assert_eq!(c.tenants.len(), 1);
        assert_eq!(c.tenants[0].0, TenantId(2));
        assert_eq!(c.tenants[0].1.weight, 3);
    }

    #[test]
    fn scheduler_and_backpressure_settings_flow_through() {
        let c = Config::builder()
            .executor(ImmediateExecutor::new())
            .scheduler(SchedulerPolicy::LeastOutstanding)
            .max_inflight_per_executor(3)
            .build()
            .unwrap();
        assert!(matches!(c.scheduler, SchedulerPolicy::LeastOutstanding));
        assert_eq!(c.max_inflight_per_executor, Some(3));
    }

    #[test]
    fn transfer_model_flows_through() {
        let c = Config::builder()
            .executor(ImmediateExecutor::new())
            .scheduler(SchedulerPolicy::data_aware())
            .transfer_model(TransferModel {
                latency: std::time::Duration::from_millis(20),
                bandwidth: 1_000_000,
            })
            .build()
            .unwrap();
        assert_eq!(c.transfer_model.bandwidth, 1_000_000);
        // Default mirrors the data manager's simulated WAN.
        let d = Config::builder()
            .executor(ImmediateExecutor::new())
            .build()
            .unwrap();
        assert_eq!(d.transfer_model.bandwidth, 8_000_000_000);
    }
}
