//! The DataFlowKernel (§4.1): Parsl's execution management engine.
//!
//! The DFK "is responsible for constructing and orchestrating the execution
//! of the task graph":
//!
//! - tasks enter via app invocation; dependencies are implicit in the
//!   futures passed as arguments;
//! - edges are "encoded as asynchronous callbacks on a dependent future",
//!   making the whole engine event driven — launching a task and firing an
//!   edge are O(1), so executing a graph of *n* tasks and *e* edges costs
//!   O(n + e);
//! - when a task's dependencies resolve, the DFK consults the memoization
//!   table/checkpoints, picks an executor (the per-app hint, or a random
//!   choice across configured executors), and submits;
//! - failures are retried up to the configured budget; exhausted retries
//!   wrap the error into the task's future; dependent tasks fail with
//!   dependency errors without running;
//! - a strategy thread grows and shrinks provider blocks (§4.4), and a
//!   walltime watcher enforces per-task time limits.
//!
//! # Hot-path concurrency
//!
//! The task table is split into [`TABLE_SHARDS`] lock shards keyed by
//! `TaskId`, so the dependency-edge callback path only ever locks the
//! *child's* shard and unrelated tasks never contend. Cross-shard
//! completion fan-out stays lock-free: a finished task's result travels
//! through its `FutureState` and the shared completion channel, never by
//! holding two shards at once. Counters (`live`, the executor-choice
//! sequence) are atomics.
//!
//! Dispatch is batched: every event that makes tasks ready (a parent
//! completing, a root submission) deposits them on a ready queue, and a
//! single drainer collects them into per-executor batches handed to
//! [`Executor::submit_batch`] — one wire frame for a thousand-child
//! fan-out instead of a thousand sends (§4.3.1's "configurable batching").
//!
//! **Collection is batched symmetrically.** Executors deliver whole result
//! frames (`Vec<TaskOutcome>`) on the completion channel; the collector
//! greedily drains everything queued and hands it to
//! `handle_outcome_batch`, which groups outcomes by table shard (one lock
//! acquisition per touched shard), records all checkpoint frames through
//! one [`Memoizer::record_batch`] append, emits one
//! [`MonitorSink::on_batch`] call, fires all resolved futures while
//! holding the dispatch flag, and finishes with a single
//! `unpark_ready` + drain — so a wide fan-in's downstream tasks ship as
//! one submit batch instead of paying a full dispatch cycle per parent.
//!
//! # Task routing and backpressure
//!
//! Each unpinned ready task is placed by the configured [`Scheduler`]
//! (see [`crate::scheduler::SchedulerPolicy`]); the batch
//! dispatcher consults it per task against a load snapshot it updates as
//! it assigns, so one wide batch is split across executors by policy.
//! With `max_inflight_per_executor` set, tasks that would push an
//! executor over its cap park instead and re-enter the ready queue as
//! completions free capacity.
//!
//! # Multi-tenancy
//!
//! One kernel can serve many logical workflows (tenants) over one
//! executor pool. Every task carries a [`TenantId`] (stamped by
//! [`DataFlowKernel::tenant`] / `App::call_as`; plain `call` uses
//! [`TenantId::DEFAULT`]), and the kernel keeps per-tenant in-flight
//! counts — total and per executor — next to the per-executor ones.
//! Tenants may be given a `max_inflight` quota and a fairness weight
//! ([`crate::config::TenantConfig`]): an over-quota tenant's ready tasks
//! park exactly like over-cap ones, *without* blocking other tenants,
//! and freed capacity is granted back across parked tenants in
//! weighted-deficit order — the tenant with the smallest
//! in-flight/weight share wakes first (`unpark_ready`). The
//! [`crate::scheduler::WeightedFair`] policy adds tenant-aware placement
//! on top.

use crate::app::{App, AppArgs, AppFn, ArgSlot, TaskValue};
use crate::bash::{run_bash, BashOptions};
use crate::config::{Config, ConfigBuilder, TenantConfig};
use crate::datamap::{DataHints, DataMap, DataRef, TransferModel};
use crate::error::{AppError, ParslError, TaskError};
use crate::executor::{Executor, ExecutorContext, TaskOutcome, TaskSpec};
use crate::future::{AppFuture, FutureState};
use crate::memo::{memo_key, Memoizer};
use crate::monitor::{MonitorEvent, MonitorSink};
use crate::registry::{AppId, AppOptions, AppRegistry, ErasedAppFn, RegisteredApp};
use crate::scheduler::{ExecutorSnapshot, Scheduler};
use crate::strategy::{LoadSignal, ScalingDecision, Strategy, StrategyConfig};
use crate::types::{AppKind, ResourceSpec, TaskId, TaskState, TenantId};
use bytes::Bytes;
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of lock shards in the task table. A power of two so the shard of
/// a task is a mask of its id; 16 shards keep contention negligible well
/// past the thread counts a single client drives.
pub const TABLE_SHARDS: usize = 16;

/// Default for the most outcomes the collector folds into one
/// completion-plane pass (see [`ConfigBuilder::collect_batch_cap`] for
/// the tunable). Bounds the per-pass allocation (futures, monitor
/// events, checkpoint frames) under a sustained completion storm; the
/// channel is drained again immediately, so the cap costs at most an
/// extra pass.
pub const COLLECT_BATCH_CAP: usize = 4096;

/// One task's bookkeeping in the dynamic task graph.
struct TaskRecord {
    app: Arc<RegisteredApp>,
    /// Argument slots; `Pending` entries flip to `Ready` as parents finish.
    slots: Vec<ArgSlot>,
    /// Count of still-pending argument slots.
    unresolved: usize,
    state: TaskState,
    /// Concatenated argument buffer, built at first launch.
    args_bytes: Option<Bytes>,
    attempt: u32,
    retries_left: u32,
    /// Executor the task was last dispatched to (monitor labeling).
    executor_idx: Option<usize>,
    /// Executor whose in-flight slot (and the tenant's) this task
    /// currently holds; `Some` from routing until the charge is released
    /// by `release_charge` — exactly once per dispatched attempt, on any
    /// accepted outcome or terminal commit.
    charged: Option<usize>,
    /// Attempt number of an in-flight speculative duplicate (straggler
    /// hedge), if one was launched. Whichever of the primary and the
    /// hedge finishes first wins; the other is cancelled and its late
    /// outcome discarded by the attempt filter.
    hedge_attempt: Option<u32>,
    /// Executor in-flight slot the hedge holds (executor counter only —
    /// hedges are accounting-invisible to tenant quotas). Released
    /// exactly once via `release_hedge_charge`.
    hedge_charged: Option<usize>,
    /// When the current attempt was dispatched; feeds the hedge
    /// watcher's age check and the service-time fallback when an
    /// executor does not stamp `started`/`finished`.
    launched_at: Option<Instant>,
    /// Logical workflow the task belongs to.
    tenant: TenantId,
    /// Logical items fused into this task (1 normally; the chunk length
    /// for `app.map` fused chunks). Scales walltime budgets and hedge
    /// thresholds, divides service-time samples, and expands monitor
    /// counts back to logical items.
    items: u32,
    /// True while an entry for this task sits in the kernel's parked
    /// list (may be stale-true after an unpark requeue; removal is by
    /// id, so a stale flag is harmless).
    parked: bool,
    /// Attempt number a walltime deadline is armed for; parking and
    /// dispatch both arm, this dedups so one attempt arms at most once.
    deadline_attempt: Option<u32>,
    memo_key: Option<u64>,
    /// Declared data inputs/output (`Invocation::hints`); inputs steer the
    /// `DataAware` router toward executors already holding the bytes, the
    /// output is recorded in the kernel's `DataMap` on completion.
    hints: DataHints,
    future: Arc<FutureState>,
    /// Terminal result, stored before the future is assigned.
    result: Option<Result<Bytes, TaskError>>,
}

/// Per-tenant in-flight accounting and fairness settings. Counters are
/// atomics behind a shared `Arc`, so the dispatcher and the collector
/// update them without serializing on one lock.
struct TenantState {
    /// Fairness weight (config; default 1).
    weight: u32,
    /// In-flight quota across all executors (config; `None` unbounded).
    max_inflight: Option<usize>,
    /// Attempts of this tenant dispatched and not yet resolved.
    inflight: AtomicUsize,
    /// The same, split per executor (configuration order) — feeds
    /// `ExecutorSnapshot::tenant_outstanding`.
    per_exec: Vec<AtomicUsize>,
}

/// Cap on service-time samples retained per app: a bounded ring so a
/// long run's quantiles track recent behaviour instead of averaging
/// over its whole history.
const SERVICE_RING: usize = 512;

/// EWMA smoothing for the arrival-rate estimate, applied once per
/// strategy tick.
const ARRIVAL_EWMA_ALPHA: f64 = 0.3;

/// Workload observations feeding the predictive strategy and the hedge
/// watcher: a submission counter (arrival rate), and per-app rings of
/// observed service times (quantiles).
struct ServiceStats {
    /// Tasks ever submitted (bumped in `submit`).
    arrivals: AtomicU64,
    /// EWMA arrival-rate state, updated once per strategy tick.
    rate: Mutex<RateState>,
    /// Per-app service-time sample rings, seconds.
    samples: RwLock<HashMap<AppId, Mutex<SampleRing>>>,
}

struct RateState {
    last_count: u64,
    last_at: Instant,
    rate: f64,
}

#[derive(Default)]
struct SampleRing {
    buf: Vec<f64>,
    next: usize,
}

impl SampleRing {
    fn push(&mut self, secs: f64) {
        if self.buf.len() < SERVICE_RING {
            self.buf.push(secs);
        } else {
            self.buf[self.next] = secs;
            self.next = (self.next + 1) % SERVICE_RING;
        }
    }
}

impl ServiceStats {
    fn new() -> Self {
        ServiceStats {
            arrivals: AtomicU64::new(0),
            rate: Mutex::new(RateState {
                last_count: 0,
                last_at: Instant::now(),
                rate: 0.0,
            }),
            samples: RwLock::new(HashMap::new()),
        }
    }

    fn record(&self, app: AppId, d: Duration) {
        let secs = d.as_secs_f64();
        if let Some(ring) = self.samples.read().get(&app) {
            ring.lock().push(secs);
            return;
        }
        self.samples
            .write()
            .entry(app)
            .or_default()
            .get_mut()
            .push(secs);
    }

    /// Advance the EWMA arrival rate by one tick and return it (tasks/s).
    fn tick_rate(&self) -> f64 {
        let count = self.arrivals.load(Ordering::Relaxed);
        let mut st = self.rate.lock();
        let now = Instant::now();
        let dt = now.duration_since(st.last_at).as_secs_f64();
        if dt > 1e-6 {
            let inst = (count.saturating_sub(st.last_count)) as f64 / dt;
            st.rate = ARRIVAL_EWMA_ALPHA * inst + (1.0 - ARRIVAL_EWMA_ALPHA) * st.rate;
            st.last_count = count;
            st.last_at = now;
        }
        st.rate
    }

    /// Quantile over one app's ring; `None` below `min_samples`.
    fn quantile_for(&self, app: AppId, q: f64, min_samples: usize) -> Option<Duration> {
        let map = self.samples.read();
        let ring = map.get(&app)?;
        let mut buf = ring.lock().buf.clone();
        drop(map);
        if buf.len() < min_samples.max(1) {
            return None;
        }
        buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaN service times"));
        let idx = ((buf.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_secs_f64(buf[idx]))
    }

    /// Quantile pooled across every app's ring; `None` with no samples.
    fn quantile_global(&self, q: f64) -> Option<Duration> {
        let map = self.samples.read();
        let mut buf: Vec<f64> = map
            .values()
            .flat_map(|ring| ring.lock().buf.clone())
            .collect();
        drop(map);
        if buf.is_empty() {
            return None;
        }
        buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaN service times"));
        let idx = ((buf.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_secs_f64(buf[idx]))
    }
}

/// The sharded task table. Ids are allocated from an atomic counter;
/// records live in the shard their id hashes to, so two tasks contend only
/// when they share a shard.
struct TaskTable {
    shards: Vec<Mutex<HashMap<TaskId, TaskRecord>>>,
    next_id: AtomicU64,
}

impl TaskTable {
    fn new() -> Self {
        TaskTable {
            shards: (0..TABLE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_id: AtomicU64::new(0),
        }
    }

    fn alloc_id(&self) -> TaskId {
        TaskId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// The shard holding `id`'s record.
    fn shard(&self, id: TaskId) -> &Mutex<HashMap<TaskId, TaskRecord>> {
        &self.shards[id.shard(TABLE_SHARDS)]
    }

    /// Tasks ever submitted (ids are never reused or removed).
    fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }
}

/// The walltime heap: `Reverse<(deadline, task id, attempt)>` entries
/// popped in deadline order by the watcher thread.
type DeadlineHeap = BinaryHeap<Reverse<(Instant, u64, u32)>>;

/// The execution engine. Create one per program via
/// [`DataFlowKernel::builder`]; register apps on it; call them; wait on
/// futures. See the crate docs for a tour.
pub struct DataFlowKernel {
    registry: Arc<AppRegistry>,
    executors: Vec<Arc<dyn Executor>>,
    label_index: HashMap<String, usize>,
    table: TaskTable,
    /// Non-terminal task count; guards `wait_for_all`.
    live: AtomicUsize,
    /// Paired with `all_done`: `live` is atomic, so waiters re-check it
    /// under this mutex to close the wakeup race.
    done_lock: Mutex<()>,
    all_done: Condvar,
    memo: Memoizer,
    default_retries: u32,
    monitor: Option<Arc<dyn MonitorSink>>,
    /// Placement policy for unpinned tasks.
    scheduler: Arc<dyn Scheduler>,
    /// Which executor holds which staged file / declared output — the
    /// placement registry behind `DataAware` routing.
    data_map: DataMap,
    /// Converts a task's non-resident input bytes into estimated seconds
    /// for the per-candidate `transfer_cost` snapshot field.
    transfer_model: TransferModel,
    /// Assignment sequence feeding the scheduler's per-task entropy.
    exec_seq: AtomicU64,
    /// Per-executor attempts dispatched and not yet resolved. This is the
    /// dispatcher's own view (incremented at assignment, decremented when
    /// an outcome is accepted), so it is coherent with routing decisions
    /// even when an executor's `outstanding()` lags its wire queue.
    inflight: Vec<AtomicUsize>,
    /// Backpressure cap per executor; `None` = unbounded.
    max_inflight: Option<usize>,
    /// Per-tenant accounting, created lazily at first submission.
    tenants: RwLock<HashMap<TenantId, Arc<TenantState>>>,
    /// Configured per-tenant settings, applied when a tenant's state is
    /// first created.
    tenant_cfg: HashMap<TenantId, TenantConfig>,
    /// True when any configured tenant has an in-flight quota — without
    /// one (and without an executor cap) nothing can ever park.
    has_tenant_quotas: bool,
    /// Ready tasks parked by backpressure — an executor cap or a tenant
    /// quota — with the executor they are pinned to (`None` = any) and
    /// their tenant (drives the weighted-deficit unparking order).
    parked: Mutex<Vec<(TaskId, Option<usize>, TenantId)>>,
    /// Tasks whose dependencies are all met, awaiting dispatch.
    ready: Mutex<Vec<TaskId>>,
    /// Single-drainer flag for the ready queue: whoever wins the CAS
    /// collects everything deposited (by any thread) into batches.
    dispatching: AtomicBool,
    started_at: Instant,
    stop: AtomicBool,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    completions: Mutex<Option<Sender<Vec<TaskOutcome>>>>,
    /// (deadline, task, attempt) walltime heap, shared with the watcher.
    deadlines: Arc<Mutex<DeadlineHeap>>,
    /// Wakes the walltime watcher when a new earliest deadline is armed
    /// (or at shutdown); with nothing pending the watcher sleeps
    /// indefinitely instead of polling.
    deadline_cv: Arc<Condvar>,
    /// Times the walltime watcher woke up (deadline expiry or re-arm).
    /// Introspection for tests: an idle kernel with no walltimes must not
    /// tick.
    walltime_wakeups: AtomicU64,
    /// Batched result collection (see module docs); `false` re-enables
    /// the per-task baseline.
    completion_batching: bool,
    /// Most outcomes one collector pass folds together
    /// ([`ConfigBuilder::collect_batch_cap`]).
    collect_batch_cap: usize,
    strategy_cfg: StrategyConfig,
    /// Arrival-rate and service-time observations feeding the predictive
    /// strategy's [`LoadSignal`] and the hedge watcher's p99 threshold.
    stats: ServiceStats,
    /// Placeholder app backing `failed_submission` records.
    invalid_app: Arc<RegisteredApp>,
}

/// Per-call options for [`DataFlowKernel::submit`] — everything beyond
/// the app and its argument slots. `Default` is a plain submission:
/// default tenant, no data hints. The typed spelling is
/// [`crate::app::App::invoke`].
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Logical workflow the task runs under (quota + fairness
    /// accounting); [`TenantId::DEFAULT`] when unset.
    pub tenant: TenantId,
    /// Declared data inputs/output steering the `DataAware` router.
    pub hints: DataHints,
    /// Logical items this submission represents (1 for ordinary tasks;
    /// the chunk length for fused `app.map` chunks). Values below 1 are
    /// treated as 1.
    pub items: u32,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            tenant: TenantId::DEFAULT,
            hints: DataHints::default(),
            items: 1,
        }
    }
}

/// Builder producing a started [`DataFlowKernel`]. Accepts everything
/// [`ConfigBuilder`] does.
pub struct DfkBuilder {
    inner: ConfigBuilder,
}

impl DfkBuilder {
    /// Add an executor.
    pub fn executor(mut self, e: impl Executor + 'static) -> Self {
        self.inner = self.inner.executor(e);
        self
    }

    /// Add an already-shared executor.
    pub fn executor_arc(mut self, e: Arc<dyn Executor>) -> Self {
        self.inner = self.inner.executor_arc(e);
        self
    }

    /// Default retry budget.
    pub fn retries(mut self, r: u32) -> Self {
        self.inner = self.inner.retries(r);
        self
    }

    /// Default memoization switch.
    pub fn memoize(mut self, on: bool) -> Self {
        self.inner = self.inner.memoize(on);
        self
    }

    /// Write-through checkpoint file.
    pub fn checkpoint_file(mut self, p: impl Into<std::path::PathBuf>) -> Self {
        self.inner = self.inner.checkpoint_file(p);
        self
    }

    /// Pre-load a checkpoint from a previous run.
    pub fn load_checkpoint(mut self, p: impl Into<std::path::PathBuf>) -> Self {
        self.inner = self.inner.load_checkpoint(p);
        self
    }

    /// Elasticity settings.
    pub fn strategy(mut self, s: StrategyConfig) -> Self {
        self.inner = self.inner.strategy(s);
        self
    }

    /// Monitoring sink.
    pub fn monitor(mut self, m: Arc<dyn MonitorSink>) -> Self {
        self.inner = self.inner.monitor(m);
        self
    }

    /// Random seed for the hashing schedulers.
    pub fn seed(mut self, s: u64) -> Self {
        self.inner = self.inner.seed(s);
        self
    }

    /// Task-routing policy (default: the paper's random placement).
    pub fn scheduler(mut self, policy: crate::scheduler::SchedulerPolicy) -> Self {
        self.inner = self.inner.scheduler(policy);
        self
    }

    /// Per-executor in-flight cap (backpressure).
    pub fn max_inflight_per_executor(mut self, cap: usize) -> Self {
        self.inner = self.inner.max_inflight_per_executor(cap);
        self
    }

    /// Per-tenant fairness settings (weight, in-flight quota).
    pub fn tenant(mut self, id: TenantId, cfg: TenantConfig) -> Self {
        self.inner = self.inner.tenant(id, cfg);
        self
    }

    /// Transfer-cost model for `DataAware` routing.
    pub fn transfer_model(mut self, model: TransferModel) -> Self {
        self.inner = self.inner.transfer_model(model);
        self
    }

    /// Toggle batched result collection (default on; `false` is the
    /// per-task baseline used by benchmarks and equivalence tests).
    pub fn completion_batching(mut self, on: bool) -> Self {
        self.inner = self.inner.completion_batching(on);
        self
    }

    /// Cap on outcomes folded into one collector pass (see
    /// [`ConfigBuilder::collect_batch_cap`]).
    pub fn collect_batch_cap(mut self, cap: usize) -> Self {
        self.inner = self.inner.collect_batch_cap(cap);
        self
    }

    /// Validate, start executors and service threads, and return the
    /// running kernel.
    pub fn build(self) -> Result<Arc<DataFlowKernel>, ParslError> {
        DataFlowKernel::new(self.inner.build()?)
    }
}

impl DataFlowKernel {
    /// Start building a kernel.
    pub fn builder() -> DfkBuilder {
        DfkBuilder {
            inner: Config::builder(),
        }
    }

    /// Construct from a finished [`Config`] and start all machinery.
    pub fn new(config: Config) -> Result<Arc<Self>, ParslError> {
        let memo = Memoizer::new(config.memoize);
        for p in &config.load_checkpoints {
            memo.load_checkpoint(p)?;
        }
        if let Some(p) = &config.checkpoint_file {
            memo.set_checkpoint_file(p)?;
        }

        let label_index = config
            .executors
            .iter()
            .enumerate()
            .map(|(i, e)| (e.label().to_string(), i))
            .collect();

        let (tx, rx) = unbounded::<Vec<TaskOutcome>>();
        let registry = AppRegistry::new();
        let invalid_app = registry.register(
            "__failed_submission__",
            AppKind::Native,
            "()",
            Arc::new(|_: &[u8]| Ok(Vec::new())),
            AppOptions::default(),
        );

        let n_executors = config.executors.len();
        let dfk = Arc::new(DataFlowKernel {
            registry: Arc::clone(&registry),
            executors: config.executors,
            label_index,
            table: TaskTable::new(),
            live: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            all_done: Condvar::new(),
            memo,
            default_retries: config.retries,
            monitor: config.monitor,
            scheduler: config.scheduler.build(config.seed),
            data_map: DataMap::new(),
            transfer_model: config.transfer_model,
            exec_seq: AtomicU64::new(0),
            inflight: (0..n_executors).map(|_| AtomicUsize::new(0)).collect(),
            max_inflight: config.max_inflight_per_executor,
            tenants: RwLock::new(HashMap::new()),
            has_tenant_quotas: config
                .tenants
                .iter()
                .any(|(_, cfg)| cfg.max_inflight.is_some()),
            tenant_cfg: config.tenants.into_iter().collect(),
            parked: Mutex::new(Vec::new()),
            ready: Mutex::new(Vec::new()),
            dispatching: AtomicBool::new(false),
            started_at: Instant::now(),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
            completions: Mutex::new(Some(tx.clone())),
            deadlines: Arc::new(Mutex::new(BinaryHeap::new())),
            deadline_cv: Arc::new(Condvar::new()),
            walltime_wakeups: AtomicU64::new(0),
            completion_batching: config.completion_batching,
            collect_batch_cap: config.collect_batch_cap,
            strategy_cfg: config.strategy,
            stats: ServiceStats::new(),
            invalid_app,
        });

        // Bring executors up.
        for e in &dfk.executors {
            e.start(ExecutorContext {
                completions: tx.clone(),
                registry: Arc::clone(&registry),
            })
            .map_err(|err| ParslError::Config(format!("executor {}: {err}", e.label())))?;
        }

        // Collector: routes executor outcomes back into the graph. Frames
        // arrive as batches; the collector greedily drains everything the
        // channel holds (up to a cap bounding per-pass memory) so a
        // completion storm is absorbed in a handful of completion-plane
        // passes instead of one per task.
        {
            let weak = Arc::downgrade(&dfk);
            let handle = std::thread::Builder::new()
                .name("parsl-collector".into())
                .spawn(move || loop {
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(mut outcomes) => {
                            let Some(dfk) = weak.upgrade() else { return };
                            if dfk.completion_batching {
                                while outcomes.len() < dfk.collect_batch_cap {
                                    match rx.try_recv() {
                                        Ok(mut more) => outcomes.append(&mut more),
                                        Err(_) => break,
                                    }
                                }
                                dfk.handle_outcome_batch(outcomes);
                            } else {
                                // Per-task baseline: every outcome pays the
                                // full completion cycle on its own.
                                for outcome in outcomes {
                                    dfk.handle_outcome_batch(vec![outcome]);
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            let Some(dfk) = weak.upgrade() else { return };
                            if dfk.stop.load(Ordering::Acquire) {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                })
                .expect("spawn collector");
            dfk.threads.lock().push(handle);
        }

        // Walltime watcher: synthesizes failure outcomes for expired task
        // attempts, as one batch per expiry wave through the same
        // completion channel as executor results. Event driven: it sleeps
        // until the earliest armed deadline (`arm_deadline` re-arms it
        // when a new earliest appears) and parks indefinitely when no
        // walltimes are pending — an idle kernel burns no wakeups.
        {
            let weak = Arc::downgrade(&dfk);
            let deadlines = Arc::clone(&dfk.deadlines);
            let deadline_cv = Arc::clone(&dfk.deadline_cv);
            let tx_watch = tx.clone();
            let handle = std::thread::Builder::new()
                .name("parsl-walltime".into())
                .spawn(move || loop {
                    let mut due: Vec<TaskOutcome> = Vec::new();
                    {
                        let mut heap = deadlines.lock();
                        loop {
                            {
                                let Some(dfk) = weak.upgrade() else { return };
                                if dfk.stop.load(Ordering::Acquire) {
                                    return;
                                }
                            }
                            let now = Instant::now();
                            while let Some(&Reverse((at, id, attempt))) = heap.peek() {
                                if at > now {
                                    break;
                                }
                                heap.pop();
                                due.push(TaskOutcome::new(
                                    TaskId(id),
                                    attempt,
                                    Err(TaskError::WalltimeExceeded),
                                ));
                            }
                            if !due.is_empty() {
                                break;
                            }
                            // Sleep until the earliest pending deadline, or
                            // until arm_deadline/shutdown wakes us.
                            match heap.peek() {
                                Some(&Reverse((at, _, _))) => {
                                    deadline_cv.wait_until(&mut heap, at);
                                }
                                None => deadline_cv.wait(&mut heap),
                            }
                            if let Some(dfk) = weak.upgrade() {
                                dfk.walltime_wakeups.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    if tx_watch.send(due).is_err() {
                        return;
                    }
                })
                .expect("spawn walltime watcher");
            dfk.threads.lock().push(handle);
        }

        // Strategy loop: block-based elasticity (§4.4). The controller
        // itself is whatever the configured mode materializes — simple
        // threshold, the predictive Little's-law sizer, or a user-supplied
        // `Strategy` — driven on the configured interval.
        if let Some(strategy) = dfk.strategy_cfg.mode.build() {
            let weak = Arc::downgrade(&dfk);
            let interval = dfk.strategy_cfg.interval;
            let handle = std::thread::Builder::new()
                .name("parsl-strategy".into())
                .spawn(move || loop {
                    std::thread::sleep(interval);
                    let Some(dfk) = weak.upgrade() else { return };
                    if dfk.stop.load(Ordering::Acquire) {
                        return;
                    }
                    dfk.run_strategy_once(strategy.as_ref());
                })
                .expect("spawn strategy");
            dfk.threads.lock().push(handle);
        }

        // Hedge watcher: straggler mitigation. Periodically scans for
        // launched attempts whose age exceeds `multiplier ×` their app's
        // observed p99 service time and launches a speculative duplicate
        // on another executor; first terminal outcome wins.
        if let Some(hedge) = dfk.strategy_cfg.hedge.clone() {
            let weak = Arc::downgrade(&dfk);
            let handle = std::thread::Builder::new()
                .name("parsl-hedge".into())
                .spawn(move || loop {
                    std::thread::sleep(hedge.check_interval);
                    let Some(dfk) = weak.upgrade() else { return };
                    if dfk.stop.load(Ordering::Acquire) {
                        return;
                    }
                    dfk.run_hedge_once();
                })
                .expect("spawn hedge watcher");
            dfk.threads.lock().push(handle);
        }

        Ok(dfk)
    }

    /// One strategy evaluation across all scalable executors. Public so
    /// tests and simulations can drive the strategy synchronously.
    ///
    /// Builds one [`LoadSignal`] per executor — the dispatcher's own
    /// in-flight view, the executor's wire-level outstanding count, the
    /// EWMA arrival rate, observed service-time quantiles, and the
    /// parked depth — and applies whatever the controller decides.
    pub fn run_strategy_once(&self, strategy: &dyn Strategy) {
        let arrival_rate = self.stats.tick_rate();
        let service_p50 = self.stats.quantile_global(0.50);
        let service_p99 = self.stats.quantile_global(0.99);
        let parked = self.parked.lock().len();
        for (idx, e) in self.executors.iter().enumerate() {
            let Some(scaling) = e.scaling() else { continue };
            let outstanding = self.inflight[idx].load(Ordering::Relaxed);
            let running = e.outstanding();
            let signal = LoadSignal {
                executor: idx,
                outstanding,
                running,
                arrival_rate,
                service_p50,
                service_p99,
                parked,
            };
            match strategy.decide(&signal, scaling) {
                ScalingDecision::Hold => {}
                ScalingDecision::Out { blocks } => {
                    scaling.scale_out(blocks);
                }
                ScalingDecision::In { blocks } => {
                    scaling.scale_in(blocks);
                    // Scaled-in blocks take their staged files with them.
                    // Scale-in is block-granular while residency is
                    // executor-granular, so drop the whole executor's
                    // claims — conservatively correct: a stale "resident"
                    // entry would mis-route readers, a dropped one only
                    // costs a re-stage.
                    self.data_map.forget_executor(idx);
                }
                ScalingDecision::Drain { blocks } => {
                    // Graceful scale-in: victims stop receiving work,
                    // finish what they hold, then release — no attempt is
                    // killed, so no scale-in-race retries. Residency is
                    // still dropped eagerly: the block *will* go away.
                    scaling.drain(blocks);
                    self.data_map.forget_executor(idx);
                }
            }
            self.emit(|| MonitorEvent::Workers {
                executor: e.label().to_string(),
                connected: e.connected_workers(),
                outstanding: running,
                at: self.started_at.elapsed(),
            });
        }
    }

    /// One hedge-watcher pass: launch speculative duplicates for launched
    /// attempts older than `multiplier ×` their app's observed p99.
    /// Returns the number of hedges launched. Public so tests can drive
    /// the watcher synchronously.
    pub fn run_hedge_once(self: &Arc<Self>) -> usize {
        let Some(hedge) = self.strategy_cfg.hedge.clone() else {
            return 0;
        };
        let now = Instant::now();
        // Pass 1: find candidates under each shard lock, no submission.
        let mut candidates: Vec<(TaskId, Duration)> = Vec::new();
        for shard in &self.table.shards {
            let shard = shard.lock();
            for (&id, rec) in shard.iter() {
                if rec.state != TaskState::Launched
                    || rec.hedge_attempt.is_some()
                    || rec.charged.is_none()
                    || rec.args_bytes.is_none()
                {
                    continue;
                }
                let Some(launched) = rec.launched_at else {
                    continue;
                };
                let age = now.saturating_duration_since(launched);
                if age < hedge.min_age {
                    continue;
                }
                let Some(p99) = self.stats.quantile_for(rec.app.id, 0.99, hedge.min_samples) else {
                    continue;
                };
                // Service samples are per logical item, so a fused chunk
                // is a straggler only past `multiplier × p99 × items`.
                let threshold = hedge.multiplier * p99.as_secs_f64() * rec.items.max(1) as f64;
                if age.as_secs_f64() > threshold {
                    candidates.push((id, age));
                }
            }
        }
        // Pass 2: per candidate, stamp the hedge under the shard lock,
        // then submit outside it.
        let mut launched = 0;
        for (id, age) in candidates {
            let prepared = {
                let mut shard = self.table.shard(id).lock();
                let Some(rec) = shard.get_mut(&id) else {
                    continue;
                };
                // Re-check: the primary may have finished (or hedged)
                // since pass 1.
                if rec.state != TaskState::Launched || rec.hedge_attempt.is_some() {
                    continue;
                }
                let (Some(primary_idx), Some(args)) = (rec.charged, rec.args_bytes.clone()) else {
                    continue;
                };
                // Prefer a different executor (least loaded); fall back
                // to the primary's when it is the only one.
                let idx = self
                    .inflight
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != primary_idx)
                    .min_by_key(|(_, n)| n.load(Ordering::Relaxed))
                    .map(|(i, _)| i)
                    .unwrap_or(primary_idx);
                let attempt = rec.attempt + 1;
                rec.hedge_attempt = Some(attempt);
                rec.hedge_charged = Some(idx);
                self.inflight[idx].fetch_add(1, Ordering::Relaxed);
                let spec = TaskSpec {
                    id,
                    app: Arc::clone(&rec.app),
                    args,
                    resources: ResourceSpec {
                        walltime: scale_walltime(rec.app.options.walltime, rec.items),
                        ..ResourceSpec::default()
                    },
                    attempt,
                    tenant: rec.tenant,
                    items: rec.items,
                };
                Some((spec, idx))
            };
            let Some((spec, idx)) = prepared else {
                continue;
            };
            let attempt = spec.attempt;
            if self.executors[idx].submit(spec).is_ok() {
                launched += 1;
                self.emit(|| MonitorEvent::Hedge {
                    task: id,
                    attempt,
                    executor: Some(self.executors[idx].label().to_string()),
                    age,
                    at: self.started_at.elapsed(),
                });
            } else {
                // Roll the hedge back: the primary is still in flight and
                // will resolve the task on its own.
                let mut shard = self.table.shard(id).lock();
                if let Some(rec) = shard.get_mut(&id) {
                    if rec.hedge_attempt == Some(attempt) {
                        rec.hedge_attempt = None;
                        if let Some(i) = rec.hedge_charged.take() {
                            self.inflight[i].fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        launched
    }

    /// Smoothed task arrival rate (tasks/second), as fed to the
    /// predictive strategy. Advances the estimator.
    pub fn arrival_rate(&self) -> f64 {
        self.stats.tick_rate()
    }

    /// Observed (p50, p99) service time across all apps, `None` before
    /// any completion carries timing.
    pub fn service_quantiles(&self) -> (Option<Duration>, Option<Duration>) {
        (
            self.stats.quantile_global(0.50),
            self.stats.quantile_global(0.99),
        )
    }

    /// Observed service-time quantile for one app (per logical item —
    /// fused chunks record their duration divided by chunk length), or
    /// `None` below `min_samples` observations. Feeds `app.map`'s
    /// auto chunk sizing.
    pub fn service_quantile_for(&self, app: AppId, q: f64, min_samples: usize) -> Option<Duration> {
        self.stats.quantile_for(app, q, min_samples)
    }

    fn emit(&self, event: impl FnOnce() -> MonitorEvent) {
        if let Some(m) = &self.monitor {
            m.on_event(&event());
        }
    }

    // ------------------------------------------------------------------
    // App registration
    // ------------------------------------------------------------------

    /// Register an infallible native app (Parsl `@python_app`). Closures of
    /// up to eight arguments work directly:
    /// `dfk.python_app("add", |a: i64, b: i64| a + b)`.
    pub fn python_app<A, R, F>(self: &Arc<Self>, name: &str, f: F) -> App<A, R>
    where
        A: AppArgs,
        R: TaskValue,
        F: AppFn<A, R>,
    {
        self.register_native(name, AppOptions::default(), move |a: A| Ok(f.invoke(a)))
    }

    /// Register a fallible native app: the body may fail, like a Python
    /// function raising an exception.
    pub fn python_app_fallible<A, R, F>(self: &Arc<Self>, name: &str, f: F) -> App<A, R>
    where
        A: AppArgs,
        R: TaskValue,
        F: AppFn<A, Result<R, AppError>>,
    {
        self.register_native(name, AppOptions::default(), move |a: A| f.invoke(a))
    }

    /// Register a fallible native app with per-app options (memoization,
    /// retries, executor pinning, walltime).
    ///
    /// # Panics
    /// If `options.executor` names a label not in this kernel's config —
    /// that is a programming error caught at registration.
    pub fn python_app_cfg<A, R, F>(
        self: &Arc<Self>,
        name: &str,
        options: AppOptions,
        f: F,
    ) -> App<A, R>
    where
        A: AppArgs,
        R: TaskValue,
        F: AppFn<A, Result<R, AppError>>,
    {
        self.register_native(name, options, move |a: A| f.invoke(a))
    }

    /// Tuple-level registration shared by the `python_app*` entry points.
    fn register_native<A, R>(
        self: &Arc<Self>,
        name: &str,
        options: AppOptions,
        body: impl Fn(A) -> Result<R, AppError> + Send + Sync + 'static,
    ) -> App<A, R>
    where
        A: AppArgs,
        R: TaskValue,
    {
        self.validate_options(&options);
        let erased: ErasedAppFn = Arc::new(move |bytes: &[u8]| {
            let args = A::decode(bytes)?;
            let out = std::panic::catch_unwind(AssertUnwindSafe(|| body(args)))
                .map_err(|p| AppError::Panic(panic_message(p)))??;
            wire::to_bytes(&out).map_err(|e| AppError::Serialization(e.to_string()))
        });
        let signature = format!("{}->{}", A::signature(), std::any::type_name::<R>());
        let registered = self
            .registry
            .register(name, AppKind::Native, &signature, erased, options);
        App::new(Arc::clone(self), registered)
    }

    /// Register a bash app (Parsl `@bash_app`): the body renders a shell
    /// command from the arguments; the task's value is the exit code (0).
    /// Nonzero exits fail the task.
    pub fn bash_app<A, F>(self: &Arc<Self>, name: &str, f: F) -> App<A, i32>
    where
        A: AppArgs,
        F: AppFn<A, String>,
    {
        self.bash_app_cfg(name, AppOptions::default(), BashOptions::default(), f)
    }

    /// [`DataFlowKernel::bash_app`] with app options and stdio redirection.
    pub fn bash_app_cfg<A, F>(
        self: &Arc<Self>,
        name: &str,
        options: AppOptions,
        bash: BashOptions,
        f: F,
    ) -> App<A, i32>
    where
        A: AppArgs,
        F: AppFn<A, String>,
    {
        self.validate_options(&options);
        let erased: ErasedAppFn = Arc::new(move |bytes: &[u8]| {
            let args = A::decode(bytes)?;
            let command = std::panic::catch_unwind(AssertUnwindSafe(|| f.invoke(args)))
                .map_err(|p| AppError::Panic(panic_message(p)))?;
            let code = run_bash(&command, &bash)?;
            wire::to_bytes(&code).map_err(|e| AppError::Serialization(e.to_string()))
        });
        let signature = format!("{}->bash", A::signature());
        let registered = self
            .registry
            .register(name, AppKind::Bash, &signature, erased, options);
        App::new(Arc::clone(self), registered)
    }

    /// Register a pre-erased app (used by the data-staging layer and other
    /// substrates that build tasks dynamically).
    pub fn register_erased(
        self: &Arc<Self>,
        name: &str,
        kind: AppKind,
        signature: &str,
        func: ErasedAppFn,
        options: AppOptions,
    ) -> Arc<RegisteredApp> {
        self.validate_options(&options);
        self.registry.register(name, kind, signature, func, options)
    }

    fn validate_options(&self, options: &AppOptions) {
        if let Some(label) = &options.executor {
            assert!(
                self.label_index.contains_key(label),
                "executor hint {label:?} does not match any configured executor \
                 (have: {:?})",
                self.label_index.keys().collect::<Vec<_>>()
            );
        }
    }

    // ------------------------------------------------------------------
    // Submission and the dependency machinery
    // ------------------------------------------------------------------

    /// Submit a task from pre-built argument slots under the default
    /// tenant.
    ///
    /// Deprecated spelling of [`DataFlowKernel::submit`] with
    /// [`SubmitOptions::default`]; kept as a delegating shim. Typed
    /// callers should use [`App::call`] / [`App::invoke`].
    pub fn submit_slots(
        self: &Arc<Self>,
        app: Arc<RegisteredApp>,
        slots: Vec<ArgSlot>,
    ) -> Arc<FutureState> {
        self.submit(app, slots, SubmitOptions::default())
    }

    /// Submit a task from pre-built argument slots on behalf of a tenant.
    ///
    /// Deprecated spelling of [`DataFlowKernel::submit`] with
    /// `SubmitOptions { tenant, .. }`; kept as a delegating shim.
    pub fn submit_slots_as(
        self: &Arc<Self>,
        app: Arc<RegisteredApp>,
        slots: Vec<ArgSlot>,
        tenant: TenantId,
    ) -> Arc<FutureState> {
        self.submit(
            app,
            slots,
            SubmitOptions {
                tenant,
                ..SubmitOptions::default()
            },
        )
    }

    /// Submit a task with an explicit tenant and data hints.
    ///
    /// Deprecated spelling of [`DataFlowKernel::submit`]; kept as a
    /// delegating shim.
    pub fn submit_slots_hinted(
        self: &Arc<Self>,
        app: Arc<RegisteredApp>,
        slots: Vec<ArgSlot>,
        tenant: TenantId,
        hints: DataHints,
    ) -> Arc<FutureState> {
        self.submit(
            app,
            slots,
            SubmitOptions {
                tenant,
                hints,
                ..SubmitOptions::default()
            },
        )
    }

    /// Submit a task from pre-built argument slots — the one untyped
    /// entry point behind every app invocation. Per-call variation
    /// (tenant, data hints) rides in [`SubmitOptions`]; the typed
    /// spelling is [`App::invoke`]'s builder:
    ///
    /// ```
    /// use parsl_core::prelude::*;
    ///
    /// let dfk = DataFlowKernel::builder()
    ///     .executor(ImmediateExecutor::new())
    ///     .build()
    ///     .unwrap();
    /// let double = dfk.python_app("double", |x: i64| x * 2);
    /// let f = double.invoke().tenant(TenantId(3)).call((Dep::value(5i64),));
    /// assert_eq!(f.result().unwrap(), 10);
    /// dfk.shutdown();
    /// ```
    ///
    /// Returns the future's state; typed wrapping happens in the `App`
    /// layer. Declared input hints feed the `DataAware` router's
    /// per-candidate transfer cost; the declared output is recorded as
    /// resident on the executor that runs the task.
    pub fn submit(
        self: &Arc<Self>,
        app: Arc<RegisteredApp>,
        slots: Vec<ArgSlot>,
        opts: SubmitOptions,
    ) -> Arc<FutureState> {
        let SubmitOptions {
            tenant,
            hints,
            items,
        } = opts;
        let items = items.max(1);
        let id = self.table.alloc_id();
        // Arrival accounting is per logical item: a 1000-item fused chunk
        // is 1000 arrivals, keeping Little's-law sizing self-consistent
        // with the per-item service samples.
        self.stats
            .arrivals
            .fetch_add(items as u64, Ordering::Relaxed);
        let future = FutureState::new(id);
        let parents: Vec<(usize, Arc<FutureState>)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ArgSlot::Pending(st) => Some((i, Arc::clone(st))),
                ArgSlot::Ready(_) => None,
            })
            .collect();
        let retries_left = app.options.retries.unwrap_or(self.default_retries);
        // Count the task live *before* it becomes visible in its shard: a
        // concurrent shutdown sweep may finalize (and decrement for) the
        // record the moment it is inserted.
        self.live.fetch_add(1, Ordering::AcqRel);
        self.table.shard(id).lock().insert(
            id,
            TaskRecord {
                app: Arc::clone(&app),
                unresolved: parents.len(),
                slots,
                state: TaskState::Pending,
                args_bytes: None,
                attempt: 0,
                retries_left,
                executor_idx: None,
                charged: None,
                hedge_attempt: None,
                hedge_charged: None,
                launched_at: None,
                tenant,
                items,
                parked: false,
                deadline_attempt: None,
                memo_key: None,
                hints,
                future: Arc::clone(&future),
                result: None,
            },
        );

        self.emit(|| MonitorEvent::Task {
            task: id,
            app: app.name.clone(),
            state: TaskState::Pending,
            executor: None,
            attempt: 0,
            tenant,
            items,
            at: self.started_at.elapsed(),
        });

        if self.stop.load(Ordering::Acquire) {
            self.finalize(id, Err(TaskError::Shutdown), TaskState::Failed);
            return future;
        }

        // Wire the dependency edges: asynchronous callbacks on the parent
        // futures (§4.1). Registered outside any shard lock — a parent that
        // is already done fires the callback synchronously right here.
        let n_parents = parents.len();
        for (idx, parent_state) in parents {
            let weak = Arc::downgrade(self);
            let parent_id = parent_state.task_id();
            parent_state.on_done(move |result| {
                if let Some(dfk) = weak.upgrade() {
                    dfk.dependency_resolved(id, idx, parent_id, result);
                }
            });
        }
        if n_parents == 0 {
            self.schedule_launch(id);
        }
        future
    }

    /// Produce an immediately failed future for submissions that cannot
    /// even be encoded (argument serialization failures).
    pub fn failed_submission(self: &Arc<Self>, error: AppError) -> Arc<FutureState> {
        let id = self.table.alloc_id();
        let future = FutureState::new(id);
        // As in submit_slots: live first, then visible.
        self.live.fetch_add(1, Ordering::AcqRel);
        self.table.shard(id).lock().insert(
            id,
            TaskRecord {
                app: Arc::clone(&self.invalid_app),
                unresolved: 0,
                slots: Vec::new(),
                state: TaskState::Pending,
                args_bytes: None,
                attempt: 0,
                retries_left: 0,
                executor_idx: None,
                charged: None,
                hedge_attempt: None,
                hedge_charged: None,
                launched_at: None,
                tenant: TenantId::DEFAULT,
                items: 1,
                parked: false,
                deadline_attempt: None,
                memo_key: None,
                hints: DataHints::default(),
                future: Arc::clone(&future),
                result: None,
            },
        );
        self.finalize(id, Err(TaskError::App(error)), TaskState::Failed);
        future
    }

    /// A handle that submits every call under one tenant id — the
    /// "many logical workflows over one kernel" entry point:
    ///
    /// ```
    /// use parsl_core::prelude::*;
    ///
    /// let dfk = DataFlowKernel::builder()
    ///     .executor(ImmediateExecutor::new())
    ///     .build()
    ///     .unwrap();
    /// let double = dfk.python_app("double", |x: i64| x * 2);
    /// let alice = dfk.tenant(TenantId(1));
    /// let f = alice.call(&double, (Dep::value(21i64),));
    /// assert_eq!(f.result().unwrap(), 42);
    /// dfk.shutdown();
    /// ```
    pub fn tenant(self: &Arc<Self>, id: TenantId) -> TenantHandle {
        TenantHandle {
            dfk: Arc::clone(self),
            id,
        }
    }

    /// The [`TenantState`] for `id`, created on first use from the
    /// configured settings (or the defaults). Hot paths take the shared
    /// read lock; the write lock is hit once per tenant lifetime.
    fn tenant_state(&self, id: TenantId) -> Arc<TenantState> {
        if let Some(st) = self.tenants.read().get(&id) {
            return Arc::clone(st);
        }
        let mut map = self.tenants.write();
        Arc::clone(map.entry(id).or_insert_with(|| {
            let cfg = self.tenant_cfg.get(&id).cloned().unwrap_or_default();
            Arc::new(TenantState {
                weight: cfg.weight,
                max_inflight: cfg.max_inflight,
                inflight: AtomicUsize::new(0),
                per_exec: (0..self.executors.len())
                    .map(|_| AtomicUsize::new(0))
                    .collect(),
            })
        }))
    }

    /// A parent future resolved; update the waiting child. Locks only the
    /// child's shard — parent state arrives by value on the callback.
    fn dependency_resolved(
        self: &Arc<Self>,
        child: TaskId,
        slot_idx: usize,
        parent: TaskId,
        result: &Result<Bytes, TaskError>,
    ) {
        enum Next {
            Launch,
            DepFail(TaskError),
            Wait,
        }
        let next = {
            let mut shard = self.table.shard(child).lock();
            let Some(rec) = shard.get_mut(&child) else {
                return;
            };
            if rec.state.is_terminal() {
                return;
            }
            match result {
                Ok(bytes) => {
                    debug_assert!(matches!(rec.slots[slot_idx], ArgSlot::Pending(_)));
                    rec.slots[slot_idx] = ArgSlot::Ready(bytes.to_vec());
                    rec.unresolved -= 1;
                    if rec.unresolved == 0 {
                        Next::Launch
                    } else {
                        Next::Wait
                    }
                }
                Err(e) => Next::DepFail(TaskError::DependencyFailed {
                    failed_task: parent,
                    reason: e.to_string().into(),
                }),
            }
        };
        match next {
            Next::Launch => self.schedule_launch(child),
            Next::DepFail(e) => self.finalize(child, Err(e), TaskState::DepFail),
            Next::Wait => {}
        }
    }

    /// A task's dependencies are all met: deposit it on the ready queue and
    /// make sure a drainer is running. If another thread currently holds
    /// the dispatch slot (e.g. a completing parent fanning out to many
    /// children), the deposit simply rides along in its batch.
    fn schedule_launch(self: &Arc<Self>, id: TaskId) {
        self.ready.lock().push(id);
        self.drain_ready();
    }

    /// Become the dispatcher if nobody is, and drain the ready queue into
    /// per-executor batches until it stays empty.
    fn drain_ready(self: &Arc<Self>) {
        loop {
            if self.ready.lock().is_empty() {
                return;
            }
            if self
                .dispatching
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // The current holder re-checks the queue after releasing
                // the flag, so our deposit cannot be stranded.
                return;
            }
            self.drain_holding_flag();
        }
    }

    /// Drain with the dispatch flag held; releases the flag on exit.
    fn drain_holding_flag(self: &Arc<Self>) {
        loop {
            let batch: Vec<TaskId> = std::mem::take(&mut *self.ready.lock());
            if batch.is_empty() {
                break;
            }
            self.launch_batch(batch);
        }
        self.dispatching.store(false, Ordering::SeqCst);
    }

    /// Build specs for a batch of ready tasks, route them per the
    /// configured scheduler (parking over-cap tasks), group them per
    /// executor, and submit each group through one
    /// [`Executor::submit_batch`] call.
    fn launch_batch(self: &Arc<Self>, ids: Vec<TaskId>) {
        let mut memoized: Vec<(TaskId, Bytes)> = Vec::new();
        let mut parked: Vec<(TaskId, Option<usize>, TenantId)> = Vec::new();
        // Walltimes to arm for tasks that parked: the clock must keep
        // running while a task waits out backpressure, or a parked task
        // could outlive its walltime unbounded (armed after the shard
        // locks drop).
        let mut park_deadlines: Vec<(TaskId, u32, Duration)> = Vec::new();
        let mut per_exec: Vec<Vec<TaskSpec>> = vec![Vec::new(); self.executors.len()];
        // One load snapshot per batch, updated as tasks are assigned, so
        // the scheduler sees the load its own picks create and a wide
        // batch is split rather than routed wholesale.
        let mut snapshots = self.snapshot_executors();

        for id in ids {
            let prepared = {
                let mut shard = self.table.shard(id).lock();
                let Some(rec) = shard.get_mut(&id) else {
                    continue;
                };
                if rec.state.is_terminal() {
                    continue;
                }
                debug_assert_eq!(rec.unresolved, 0, "launch with unresolved deps");

                if rec.args_bytes.is_none() {
                    let total: usize = rec
                        .slots
                        .iter()
                        .map(|s| match s {
                            ArgSlot::Ready(b) => b.len(),
                            ArgSlot::Pending(_) => 0,
                        })
                        .sum();
                    let mut buf = Vec::with_capacity(total);
                    for slot in &rec.slots {
                        match slot {
                            ArgSlot::Ready(b) => buf.extend_from_slice(b),
                            ArgSlot::Pending(_) => unreachable!("unresolved slot at launch"),
                        }
                    }
                    rec.args_bytes = Some(Bytes::from(buf));
                    rec.slots = Vec::new(); // free per-arg buffers
                }
                let args = rec.args_bytes.clone().expect("just built");

                let hit = if self.memo.enabled_for(&rec.app) {
                    let key = memo_key(&rec.app, &args);
                    rec.memo_key = Some(key);
                    self.memo.lookup(key)
                } else {
                    None
                };
                match hit {
                    Some(bytes) => {
                        memoized.push((id, bytes));
                        None
                    }
                    None => {
                        let pinned = self.pinned_index(&rec.app);
                        let tenant = self.tenant_state(rec.tenant);
                        match self.route(&mut snapshots, pinned, &tenant, &rec.hints.inputs) {
                            Some(idx) => Some(self.prepare_submit(rec, id, args, idx)),
                            None => {
                                // Backpressure: every eligible executor is
                                // at its cap, or the tenant is over its
                                // quota. The task stays Pending and parks
                                // until completions free capacity; its
                                // walltime (if any) starts now, not at
                                // dispatch, so it can expire while parked.
                                if let Some(w) = rec.app.options.walltime {
                                    if rec.deadline_attempt != Some(rec.attempt) {
                                        rec.deadline_attempt = Some(rec.attempt);
                                        // Per-item walltime scales with the
                                        // fused chunk length.
                                        park_deadlines.push((
                                            id,
                                            rec.attempt,
                                            w * rec.items.max(1),
                                        ));
                                    }
                                }
                                rec.parked = true;
                                parked.push((id, pinned, rec.tenant));
                                None
                            }
                        }
                    }
                }
            };
            if let Some((spec, exec_idx, walltime)) = prepared {
                self.emit(|| MonitorEvent::Task {
                    task: id,
                    app: spec.app.name.clone(),
                    state: TaskState::Launched,
                    executor: Some(self.executors[exec_idx].label().to_string()),
                    attempt: spec.attempt,
                    tenant: spec.tenant,
                    items: spec.items,
                    at: self.started_at.elapsed(),
                });
                if let Some(w) = walltime {
                    self.arm_deadline(Instant::now() + w, id, spec.attempt);
                }
                per_exec[exec_idx].push(spec);
            }
        }

        // Memo hits finalize outside all shard locks: set() fires dependent
        // edges, whose newly ready children join the queue we are draining.
        for (id, bytes) in memoized {
            self.finalize(id, Ok(bytes), TaskState::Memoized);
        }

        for (id, attempt, w) in park_deadlines {
            self.arm_deadline(Instant::now() + w, id, attempt);
        }

        if !parked.is_empty() {
            self.parked.lock().extend(parked);
            // Close the race with a completion that freed capacity between
            // our route() check and the park: re-offer whatever fits now.
            // (The drain loop that called us re-checks the ready queue.)
            self.unpark_ready();
        }

        for (idx, batch) in per_exec.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // A rejected group synthesizes lost-task outcomes that flow
            // back through the batched completion plane.
            self.submit_group(idx, batch);
        }
    }

    /// The configured executor index an app is pinned to, if any.
    fn pinned_index(&self, app: &RegisteredApp) -> Option<usize> {
        app.options.executor.as_ref().map(|label| {
            *self
                .label_index
                .get(label)
                .expect("validated at registration")
        })
    }

    /// Current per-executor load and capacity, in configuration order.
    /// `tenant_outstanding` starts zeroed; tenant-aware callers fill it
    /// per task (`fill_tenant_outstanding`).
    fn snapshot_executors(&self) -> Vec<ExecutorSnapshot> {
        self.executors
            .iter()
            .enumerate()
            .map(|(index, e)| ExecutorSnapshot {
                index,
                outstanding: self.inflight[index].load(Ordering::Relaxed),
                capacity: e.capacity(),
                tenant_outstanding: 0,
                resident_bytes: 0,
                transfer_cost: 0.0,
                draining: e.scaling().is_some_and(|s| s.draining_blocks() > 0),
            })
            .collect()
    }

    /// Stamp the routing task's tenant's per-executor in-flight counts
    /// onto the snapshots the scheduler is about to see.
    fn fill_tenant_outstanding(snapshots: &mut [ExecutorSnapshot], tenant: &TenantState) {
        for s in snapshots.iter_mut() {
            s.tenant_outstanding = tenant.per_exec[s.index].load(Ordering::Relaxed);
        }
    }

    /// Stamp the routing task's data-locality view onto the snapshots:
    /// how many declared input bytes each executor already holds, and
    /// what moving the rest there would cost. Always overwrites both
    /// fields — snapshots persist across a batch's tasks, so a stale
    /// value from the previous task would corrupt the next decision (in
    /// particular, the zero-input JSQ fallback relies on every
    /// `transfer_cost` being exactly zero).
    fn fill_data_locality(&self, snapshots: &mut [ExecutorSnapshot], inputs: &[DataRef]) {
        if inputs.is_empty() {
            for s in snapshots.iter_mut() {
                s.resident_bytes = 0;
                s.transfer_cost = 0.0;
            }
            return;
        }
        let total: u64 = inputs.iter().map(|d| d.bytes).sum();
        for s in snapshots.iter_mut() {
            let resident = self.data_map.resident_bytes(inputs, s.index);
            s.resident_bytes = resident;
            s.transfer_cost = self
                .transfer_model
                .cost_secs(total.saturating_sub(resident));
        }
    }

    /// Route one ready task: honor the pin if present, otherwise ask the
    /// scheduler, offering only executors under the backpressure cap.
    /// Returns `None` when the task's tenant is over its in-flight quota
    /// or no eligible executor has capacity — the caller parks the task.
    /// On success the snapshot, the shared in-flight counter, and the
    /// tenant's counters are charged for the assignment.
    fn route(
        &self,
        snapshots: &mut [ExecutorSnapshot],
        pinned: Option<usize>,
        tenant: &TenantState,
        inputs: &[DataRef],
    ) -> Option<usize> {
        if tenant
            .max_inflight
            .is_some_and(|q| tenant.inflight.load(Ordering::Relaxed) >= q)
        {
            return None;
        }
        let cap = self.max_inflight;
        let over = |s: &ExecutorSnapshot| cap.is_some_and(|c| s.outstanding >= c);
        // Withhold draining executors only while a non-draining
        // alternative exists — a fully draining pool still takes work
        // (the drain completes when its held tasks finish, and new work
        // routed there simply extends it; better than parking forever).
        let any_draining = snapshots.iter().any(|s| s.draining);
        let all_draining = any_draining && snapshots.iter().all(|s| s.draining);
        let avoid = |s: &ExecutorSnapshot| over(s) || (s.draining && !all_draining);
        let idx = match pinned {
            Some(i) => {
                // Pins override drain avoidance: the app must run there.
                if over(&snapshots[i]) {
                    return None;
                }
                i
            }
            None if cap.is_none() && self.executors.len() == 1 => 0,
            None => {
                let seq = self.exec_seq.fetch_add(1, Ordering::Relaxed);
                Self::fill_tenant_outstanding(snapshots, tenant);
                self.fill_data_locality(snapshots, inputs);
                if snapshots.iter().any(&avoid) {
                    // Slow path: some executor is saturated or draining,
                    // so offer the scheduler only the eligible subset.
                    let candidates: Vec<ExecutorSnapshot> =
                        snapshots.iter().filter(|s| !avoid(s)).copied().collect();
                    if candidates.is_empty() {
                        return None;
                    }
                    let pos = self.scheduler.assign(&candidates, seq);
                    candidates[pos].index
                } else {
                    // Fast path (also the no-cap case): nothing is over
                    // cap or draining, so no filtered copy is needed.
                    let pos = self.scheduler.assign(snapshots, seq);
                    snapshots[pos].index
                }
            }
        };
        snapshots[idx].outstanding += 1;
        self.inflight[idx].fetch_add(1, Ordering::Relaxed);
        tenant.inflight.fetch_add(1, Ordering::Relaxed);
        tenant.per_exec[idx].fetch_add(1, Ordering::Relaxed);
        // Commit the placement in the data map: the non-resident inputs
        // are now in flight toward `idx` (the staging cache will hold
        // them after the first read), so later tasks in this very batch
        // already see them as resident — a fan-out converges on one
        // executor instead of paying the transfer N times. The charged
        // bytes are the kernel's bytes-moved metric.
        if !inputs.is_empty() {
            self.data_map.charge(inputs, idx);
        }
        Some(idx)
    }

    /// Route a failed task's next attempt. Retries deliberately bypass
    /// the backpressure cap and the tenant quota — the attempt already
    /// holds graph-level resources and parking it would stall retry
    /// semantics — but unpinned retries still follow the scheduler, so a
    /// saturated executor is not retried into by default.
    fn route_retry(
        &self,
        pinned: Option<usize>,
        tenant: &TenantState,
        inputs: &[DataRef],
    ) -> usize {
        let idx = match pinned {
            Some(i) => i,
            None => {
                let mut snapshots = self.snapshot_executors();
                Self::fill_tenant_outstanding(&mut snapshots, tenant);
                self.fill_data_locality(&mut snapshots, inputs);
                let seq = self.exec_seq.fetch_add(1, Ordering::Relaxed);
                // Retries bypass caps but still avoid draining executors
                // when a non-draining one exists.
                let candidates: Vec<ExecutorSnapshot> =
                    snapshots.iter().filter(|s| !s.draining).copied().collect();
                if candidates.is_empty() {
                    let pos = self.scheduler.assign(&snapshots, seq);
                    snapshots[pos].index
                } else {
                    let pos = self.scheduler.assign(&candidates, seq);
                    candidates[pos].index
                }
            }
        };
        self.inflight[idx].fetch_add(1, Ordering::Relaxed);
        tenant.inflight.fetch_add(1, Ordering::Relaxed);
        tenant.per_exec[idx].fetch_add(1, Ordering::Relaxed);
        if !inputs.is_empty() {
            self.data_map.charge(inputs, idx);
        }
        idx
    }

    /// Release the executor and tenant in-flight slots a dispatched
    /// attempt holds. Exactly-once: the charge travels in `rec.charged`
    /// and is taken here, so every terminal path (outcome, memo hit,
    /// dependency failure, walltime expiry, shutdown sweep) releases it
    /// precisely once no matter which path runs first.
    fn release_charge(&self, rec: &mut TaskRecord) {
        if let Some(idx) = rec.charged.take() {
            self.inflight[idx].fetch_sub(1, Ordering::Relaxed);
            let tenant = self.tenant_state(rec.tenant);
            tenant.inflight.fetch_sub(1, Ordering::Relaxed);
            tenant.per_exec[idx].fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Release the executor slot a speculative hedge holds, if any.
    /// Hedges charge only the executor counter (never tenant quotas), so
    /// this is the mirror of the bump in `run_hedge_once`. Exactly-once
    /// via `take()`, same as `release_charge`.
    fn release_hedge_charge(&self, rec: &mut TaskRecord) {
        if let Some(idx) = rec.hedge_charged.take() {
            self.inflight[idx].fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Re-queue parked tasks whose backpressure requirement is satisfiable
    /// again, at most as many as there are free in-flight slots (and free
    /// tenant quota) — waking the whole parking lot on every completion
    /// would make each freed slot re-process (memo-check, route, re-park)
    /// every parked task.
    ///
    /// Grants follow a **weighted-deficit order** across tenants: each
    /// round wakes the oldest parked task of the eligible tenant with the
    /// smallest in-flight/weight share (shares compared by integer
    /// cross-multiplication), so freed capacity flows to the tenant
    /// furthest below its weighted fair share and a backlogged heavy
    /// tenant cannot monopolize the wakeups. FIFO order is preserved
    /// within each tenant. Returns true when any task went back on the
    /// ready queue (the caller decides whether a drain is needed).
    fn unpark_ready(&self) -> bool {
        if self.max_inflight.is_none() && !self.has_tenant_quotas {
            return false; // nothing can ever park
        }
        let mut requeue: Vec<TaskId> = Vec::new();
        {
            let mut parked = self.parked.lock();
            if parked.is_empty() {
                return false;
            }
            // Free-slot budget per executor, decremented as tasks are
            // woken. A woken task may still re-park if a concurrent
            // dispatch takes the slot first; the budget only bounds churn.
            let mut budget: Vec<usize> = match self.max_inflight {
                Some(cap) => self
                    .inflight
                    .iter()
                    .map(|n| cap.saturating_sub(n.load(Ordering::Relaxed)))
                    .collect(),
                None => vec![usize::MAX; self.executors.len()],
            };
            // Per-tenant virtual shares: in-flight count (bumped per
            // grant so one pass stays fair) and remaining quota.
            struct Share {
                inflight: u64,
                weight: u64,
                quota: usize,
            }
            let mut shares: HashMap<TenantId, Share> = HashMap::new();
            for &(_, _, t) in parked.iter() {
                shares.entry(t).or_insert_with(|| {
                    let st = self.tenant_state(t);
                    let inflight = st.inflight.load(Ordering::Relaxed);
                    Share {
                        inflight: inflight as u64,
                        weight: u64::from(st.weight),
                        quota: st
                            .max_inflight
                            .map_or(usize::MAX, |q| q.saturating_sub(inflight)),
                    }
                });
            }
            let mut woken = vec![false; parked.len()];
            let mut considered: HashSet<TenantId> = HashSet::new();
            loop {
                // One candidate per tenant (its oldest unwoken task with
                // a satisfiable pin); among them, the smallest weighted
                // share wins the next freed slot.
                considered.clear();
                let mut best: Option<(usize, usize)> = None; // (pos, slot)
                for (pos, &(_, pin, t)) in parked.iter().enumerate() {
                    if woken[pos] || !considered.insert(t) {
                        continue;
                    }
                    let share = &shares[&t];
                    if share.quota == 0 {
                        continue;
                    }
                    let slot = match pin {
                        Some(i) => (budget[i] > 0).then_some(i),
                        None => budget.iter().position(|&b| b > 0),
                    };
                    let Some(slot) = slot else { continue };
                    let beats_best = best.is_none_or(|(bpos, _)| {
                        let b = &shares[&parked[bpos].2];
                        share.inflight * b.weight < b.inflight * share.weight
                    });
                    if beats_best {
                        best = Some((pos, slot));
                    }
                }
                let Some((pos, slot)) = best else { break };
                woken[pos] = true;
                budget[slot] -= 1;
                let share = shares.get_mut(&parked[pos].2).expect("seeded above");
                share.inflight += 1;
                share.quota -= 1;
                requeue.push(parked[pos].0);
            }
            let mut woken = woken.iter();
            parked.retain(|_| !*woken.next().expect("one flag per entry"));
        }
        if requeue.is_empty() {
            return false;
        }
        self.ready.lock().extend(requeue);
        true
    }

    /// Build the TaskSpec for launch on the chosen executor (called with
    /// the task's shard lock held; returns what the dispatcher needs after
    /// unlocking). The routing already charged the in-flight slots; this
    /// records the charge on the task. The returned walltime is `None`
    /// when this attempt's deadline is already armed (it armed at park
    /// time) — the caller arms whatever comes back.
    fn prepare_submit(
        &self,
        rec: &mut TaskRecord,
        id: TaskId,
        args: Bytes,
        idx: usize,
    ) -> (TaskSpec, usize, Option<Duration>) {
        rec.executor_idx = Some(idx);
        rec.charged = Some(idx);
        rec.state = TaskState::Launched;
        rec.launched_at = Some(Instant::now());
        let spec = TaskSpec {
            id,
            app: Arc::clone(&rec.app),
            args,
            resources: ResourceSpec {
                // Per-item walltime: a fused chunk's budget scales with
                // its length so 1000 fused items are not held to one
                // item's deadline.
                walltime: scale_walltime(rec.app.options.walltime, rec.items),
                ..ResourceSpec::default()
            },
            attempt: rec.attempt,
            tenant: rec.tenant,
            items: rec.items,
        };
        let walltime = match rec.app.options.walltime {
            Some(w) if rec.deadline_attempt != Some(rec.attempt) => {
                rec.deadline_attempt = Some(rec.attempt);
                Some(w * rec.items.max(1))
            }
            _ => None,
        };
        (spec, idx, walltime)
    }

    /// A batch of outcomes arrived from the executors (or was synthesized
    /// by the walltime watcher / a failed submit call). This is the
    /// batched completion plane, the mirror image of `launch_batch`:
    ///
    /// 1. group outcomes by table shard and take each touched shard's lock
    ///    exactly once, resolving every member's retry/finalize decision
    ///    and committing terminal state under that single acquisition;
    /// 2. append all checkpoint frames through one
    ///    [`Memoizer::record_batch`] (one writer lock);
    /// 3. decrement the live counter once for the whole batch;
    /// 4. emit every monitor event through one [`MonitorSink::on_batch`];
    /// 5. re-submit all retries grouped per executor (one
    ///    [`Executor::submit_batch`] each);
    /// 6. fire all resolved futures while holding the dispatch flag, then
    ///    perform a single `unpark_ready` + drain — a wide fan-in's
    ///    downstream tasks ship as one submit batch.
    fn handle_outcome_batch(self: &Arc<Self>, outcomes: Vec<TaskOutcome>) {
        if outcomes.is_empty() {
            return;
        }
        // (1) shard grouping, preserving arrival order within a shard so a
        // stale duplicate behind an accepted outcome still sees the
        // terminal state it must be discarded against.
        let mut by_shard: Vec<Vec<TaskOutcome>> = vec![Vec::new(); TABLE_SHARDS];
        for outcome in outcomes {
            by_shard[outcome.id.shard(TABLE_SHARDS)].push(outcome);
        }

        let monitoring = self.monitor.is_some();
        let mut events: Vec<MonitorEvent> = Vec::new();
        let mut checkpoints: Vec<(u64, Bytes)> = Vec::new();
        let mut fire: Vec<(Arc<FutureState>, Result<Bytes, TaskError>)> = Vec::new();
        // Retries: (spec, executor index, walltime) — armed and grouped
        // per executor after the shard pass.
        let mut retries: Vec<(TaskSpec, usize, Option<Duration>)> = Vec::new();
        // Tasks leaving a parked state through this batch (walltime
        // expiry while parked): their park entries are dropped after the
        // shard pass so nothing re-queues them.
        let mut drop_parked: Vec<TaskId> = Vec::new();
        // Losing attempts of settled hedge races: (executor, task,
        // attempt), cancelled best-effort after the shard locks drop.
        let mut cancels: Vec<(usize, TaskId, u32)> = Vec::new();
        // Observed service times, recorded into the stats rings after
        // the shard locks drop.
        let mut samples: Vec<(AppId, Duration)> = Vec::new();

        for group in by_shard {
            let Some(first) = group.first() else { continue };
            let mut shard = self.table.shard(first.id).lock();
            for outcome in group {
                let Some(rec) = shard.get_mut(&outcome.id) else {
                    continue;
                };
                let is_primary = rec.attempt == outcome.attempt;
                let is_hedge = rec.hedge_attempt == Some(outcome.attempt);
                if rec.state.is_terminal() || (!is_primary && !is_hedge) {
                    // Stale: a retry, walltime expiry, a cancelled hedge,
                    // or an earlier member of this very batch already
                    // superseded it.
                    continue;
                }
                if is_hedge && outcome.result.is_err() {
                    // A failed hedge never settles the task — the primary
                    // is still in flight and resolves it on its own.
                    // Drop the speculation (a later pass may re-hedge).
                    rec.hedge_attempt = None;
                    self.release_hedge_charge(rec);
                    continue;
                }
                // Settle the hedge race before anything else: this
                // outcome's attempt wins, the other (if in flight) is
                // cancelled and its late outcome will fail the attempt
                // filter above.
                let hedge = rec.hedge_attempt.take();
                if let Some(h) = hedge {
                    if is_hedge {
                        if let Some(i) = rec.charged {
                            cancels.push((i, outcome.id, rec.attempt));
                        }
                        // Adopt the winning attempt: the terminal record,
                        // monitor event, and future all speak for it.
                        rec.attempt = h;
                        rec.executor_idx = rec.hedge_charged.or(rec.executor_idx);
                    } else if let Some(i) = rec.hedge_charged {
                        cancels.push((i, outcome.id, h));
                    }
                }
                // The accepted outcome resolves exactly one dispatched
                // attempt: release its in-flight slots (retries charge a
                // fresh one via route_retry). A task that was parked when
                // the outcome arrived (walltime expiry under
                // backpressure) holds no charge — release_charge is a
                // no-op — but its park entry must go, or a later unpark
                // would re-launch a task this batch settles.
                self.release_charge(rec);
                self.release_hedge_charge(rec);
                if rec.parked {
                    rec.parked = false;
                    drop_parked.push(outcome.id);
                }
                match outcome.result {
                    Ok(bytes) => {
                        // Feed the service-time observation planes:
                        // worker-stamped execution time when the
                        // executor reports it, dispatch-to-completion
                        // wall time otherwise.
                        let service = match (outcome.started, outcome.finished) {
                            (Some(s), Some(f)) if f >= s => Some(f - s),
                            _ => rec.launched_at.map(|l| l.elapsed()),
                        };
                        if let Some(d) = service {
                            // Record per logical item: a fused chunk's
                            // duration divided by its length, so the ring
                            // reflects one item's cost for sizing and
                            // hedging regardless of fusion.
                            samples.push((rec.app.id, d / rec.items.max(1)));
                        }
                        let (future, result, event, checkpoint) = self.commit_terminal(
                            rec,
                            outcome.id,
                            TaskState::Done,
                            Ok(bytes),
                            monitoring,
                        );
                        checkpoints.extend(checkpoint);
                        events.extend(event);
                        fire.push((future, result));
                    }
                    Err(e) => {
                        // A lost manager takes its staged files down with
                        // it: drop every residency claim for the executor
                        // so readers stop being attracted to copies that
                        // no longer exist. Coarse (the whole executor, not
                        // one manager's share) but conservatively correct
                        // — the penalty is a re-stage, not a mis-route.
                        if matches!(e, TaskError::ExecutorLost(_)) {
                            if let Some(idx) = rec.executor_idx {
                                self.data_map.forget_executor(idx);
                            }
                        }
                        if rec.retries_left > 0 {
                            rec.retries_left -= 1;
                            // The next attempt must outnumber a hedge
                            // this outcome just cancelled (hedge =
                            // primary + 1), or its late result would
                            // impersonate the retry.
                            rec.attempt = rec.attempt.max(hedge.unwrap_or(0)) + 1;
                            let args = rec.args_bytes.clone().expect("launched tasks have args");
                            let tenant = self.tenant_state(rec.tenant);
                            let idx = self.route_retry(
                                self.pinned_index(&rec.app),
                                &tenant,
                                &rec.hints.inputs,
                            );
                            let (spec, idx, walltime) =
                                self.prepare_submit(rec, outcome.id, args, idx);
                            if monitoring {
                                events.push(MonitorEvent::Retry {
                                    task: outcome.id,
                                    attempt: spec.attempt,
                                    reason: e.to_string(),
                                    at: self.started_at.elapsed(),
                                });
                            }
                            retries.push((spec, idx, walltime));
                        } else {
                            let (future, result, event, checkpoint) = self.commit_terminal(
                                rec,
                                outcome.id,
                                TaskState::Failed,
                                Err(e),
                                monitoring,
                            );
                            checkpoints.extend(checkpoint);
                            events.extend(event);
                            fire.push((future, result));
                        }
                    }
                }
            }
        }

        // Drop park entries for tasks this batch settled while parked
        // (after the shard locks, before futures fire new work).
        if !drop_parked.is_empty() {
            self.parked
                .lock()
                .retain(|(id, _, _)| !drop_parked.contains(id));
        }

        // Cancel the losing halves of settled hedge races. Advisory:
        // an executor that cannot cancel simply runs the loser to
        // completion and its outcome is discarded by the attempt filter.
        for (idx, id, attempt) in cancels {
            self.executors[idx].cancel(id, attempt);
        }

        // Record observed service times (feeds hedging thresholds and
        // the predictive strategy's Little's-law estimate).
        for (app, d) in samples {
            self.stats.record(app, d);
        }

        // (2) one writer-locked checkpoint append for the whole batch.
        if !checkpoints.is_empty() {
            self.memo.record_batch(&checkpoints);
        }

        // (3) one live-counter update; wake wait_for_all at zero.
        let finished = fire.len();
        if finished > 0 && self.live.fetch_sub(finished, Ordering::AcqRel) == finished {
            // Last live tasks: take the lock so a waiter between its
            // atomic check and its wait cannot miss the notification.
            let _guard = self.done_lock.lock();
            self.all_done.notify_all();
        }

        // (4) one monitor call for everything this batch produced.
        if let Some(m) = &self.monitor {
            if !events.is_empty() {
                m.on_batch(&events);
            }
        }

        // (5) retries: arm walltimes and re-submit per executor as one
        // batch. A failed submit synthesizes lost-task outcomes that
        // recurse through this same path (bounded by the retry budget).
        if !retries.is_empty() {
            let mut per_exec: Vec<Vec<TaskSpec>> = vec![Vec::new(); self.executors.len()];
            for (spec, idx, walltime) in retries {
                if let Some(w) = walltime {
                    self.arm_deadline(Instant::now() + w, spec.id, spec.attempt);
                }
                per_exec[idx].push(spec);
            }
            for (idx, batch) in per_exec.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                self.submit_group(idx, batch);
            }
        }

        // (6) fire all futures under one dispatch-flag hold: every child
        // the whole batch unblocks lands in a single ready-queue drain.
        let gated = self
            .dispatching
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        for (future, result) in fire {
            future.set(result);
        }
        // The freed in-flight slots may satisfy parked tasks; one check
        // for the whole batch.
        self.unpark_ready();
        if gated {
            self.drain_holding_flag();
        }
        self.drain_ready();
    }

    /// Submit one per-executor group, synthesizing lost-task outcomes for
    /// the whole group if the executor refuses it.
    fn submit_group(self: &Arc<Self>, idx: usize, batch: Vec<TaskSpec>) {
        let executor = &self.executors[idx];
        let manifest: Vec<(TaskId, u32)> = batch.iter().map(|s| (s.id, s.attempt)).collect();
        let outcome = if batch.len() == 1 {
            let mut batch = batch;
            executor.submit(batch.pop().expect("len checked"))
        } else {
            executor.submit_batch(batch)
        };
        if let Err(e) = outcome {
            let reason: Arc<str> = e.to_string().into();
            self.handle_outcome_batch(
                manifest
                    .into_iter()
                    .map(|(id, attempt)| {
                        TaskOutcome::new(
                            id,
                            attempt,
                            Err(TaskError::ExecutorLost(Arc::clone(&reason))),
                        )
                    })
                    .collect(),
            );
        }
    }

    /// Arm a walltime deadline, waking the watcher if it became the
    /// earliest pending one (otherwise the watcher's current sleep
    /// already covers it).
    fn arm_deadline(&self, at: Instant, id: TaskId, attempt: u32) {
        let mut heap = self.deadlines.lock();
        let new_earliest = heap
            .peek()
            .is_none_or(|&Reverse((current, _, _))| at < current);
        heap.push(Reverse((at, id.0, attempt)));
        if new_earliest {
            self.deadline_cv.notify_all();
        }
    }

    /// Commit a terminal state on a record whose shard lock the caller
    /// holds, returning everything the post-lock half of finalization
    /// needs: the future to fire, the result to fire it with, the
    /// monitor event (when monitoring), and the checkpoint entry (for a
    /// memoizable `Done`). Shared by `finalize` (single task) and
    /// `handle_outcome_batch` (the batched plane) so the two paths
    /// cannot diverge.
    #[allow(clippy::type_complexity)]
    fn commit_terminal(
        &self,
        rec: &mut TaskRecord,
        id: TaskId,
        state: TaskState,
        result: Result<Bytes, TaskError>,
        monitoring: bool,
    ) -> (
        Arc<FutureState>,
        Result<Bytes, TaskError>,
        Option<MonitorEvent>,
        Option<(u64, Bytes)>,
    ) {
        debug_assert!(state.is_terminal());
        // Whatever path got us here, a dispatched attempt's in-flight
        // slots must come back (no-op if already released or never
        // charged — e.g. memo hits and dependency failures). Ditto a
        // speculative hedge's executor slot.
        self.release_charge(rec);
        self.release_hedge_charge(rec);
        rec.state = state;
        // A completed task's declared output now lives where it ran:
        // stage-in completions are what populate the placement registry
        // (memo hits skip this — they produced nothing anywhere new).
        if state == TaskState::Done {
            if let (Some(output), Some(idx)) = (rec.hints.output, rec.executor_idx) {
                self.data_map.record(output, idx);
            }
        }
        let checkpoint = if state == TaskState::Done {
            match (rec.memo_key, &result) {
                (Some(key), Ok(bytes)) => Some((key, bytes.clone())),
                _ => None,
            }
        } else {
            None
        };
        rec.result = Some(result.clone());
        let event = if monitoring {
            Some(MonitorEvent::Task {
                task: id,
                app: rec.app.name.clone(),
                state,
                executor: rec
                    .executor_idx
                    .map(|i| self.executors[i].label().to_string()),
                attempt: rec.attempt,
                tenant: rec.tenant,
                items: rec.items,
                at: self.started_at.elapsed(),
            })
        } else {
            None
        };
        (Arc::clone(&rec.future), result, event, checkpoint)
    }

    /// Commit a terminal state: store the result, memoize, notify the
    /// future (which fires dependent-edge callbacks), update counters.
    /// The single-task specialization of the batched completion plane,
    /// used by paths that do not originate from an executor outcome
    /// (memo hits, dependency failures, failed submissions, shutdown).
    fn finalize(self: &Arc<Self>, id: TaskId, result: Result<Bytes, TaskError>, state: TaskState) {
        let monitoring = self.monitor.is_some();
        let (future, result, event, checkpoint, was_parked) = {
            let mut shard = self.table.shard(id).lock();
            let Some(rec) = shard.get_mut(&id) else {
                return;
            };
            if rec.state.is_terminal() {
                return; // already finalized (e.g. racing DepFail)
            }
            let was_parked = std::mem::take(&mut rec.parked);
            let (future, result, event, checkpoint) =
                self.commit_terminal(rec, id, state, result, monitoring);
            (future, result, event, checkpoint, was_parked)
        };

        // A task finalized while (possibly) parked must leave the parked
        // list, or a later unpark would re-queue a terminal task.
        if was_parked {
            self.parked.lock().retain(|&(pid, _, _)| pid != id);
        }

        if let Some((key, bytes)) = checkpoint {
            self.memo.record(key, &bytes);
        }

        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last live task: take the lock so a waiter between its atomic
            // check and its wait cannot miss the notification.
            let _guard = self.done_lock.lock();
            self.all_done.notify_all();
        }

        if let (Some(m), Some(event)) = (&self.monitor, event) {
            m.on_event(&event);
        }

        // Assign the future last: this fires the dependent tasks' edge
        // callbacks and wakes user threads blocked in result(). Holding the
        // dispatch slot across the cascade collects every child this
        // completion unblocks into one batch — the fan-out batching point.
        let gated = self
            .dispatching
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        future.set(result);
        // A task settled here may have freed capacity other parked tasks
        // were waiting on: a released charge, freed tenant quota, or — the
        // subtle case — a parked task that was woken into a memo hit and
        // so never consumed the slot its wakeup was granted for. Without
        // this re-offer that slot stays free while its siblings stay
        // parked forever (cheap no-op when nothing is parked).
        self.unpark_ready();
        if gated {
            self.drain_holding_flag();
        }
        self.drain_ready();
    }

    // ------------------------------------------------------------------
    // Introspection & lifecycle
    // ------------------------------------------------------------------

    /// The app registry shared with executors.
    pub fn registry(&self) -> &Arc<AppRegistry> {
        &self.registry
    }

    /// Number of tasks ever submitted.
    pub fn task_count(&self) -> usize {
        self.table.len()
    }

    /// Tasks not yet in a terminal state.
    pub fn live_tasks(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Histogram of task states (for monitoring and tests).
    pub fn state_counts(&self) -> HashMap<TaskState, usize> {
        let mut counts = HashMap::new();
        for shard in &self.table.shards {
            let shard = shard.lock();
            for rec in shard.values() {
                *counts.entry(rec.state).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Labels of the configured executors, in configuration order.
    pub fn executor_labels(&self) -> Vec<String> {
        self.executors
            .iter()
            .map(|e| e.label().to_string())
            .collect()
    }

    /// Access a configured executor by label.
    pub fn executor(&self, label: &str) -> Option<&Arc<dyn Executor>> {
        self.label_index.get(label).map(|&i| &self.executors[i])
    }

    /// Memoization (hits, misses).
    pub fn memo_stats(&self) -> (u64, u64) {
        self.memo.stats()
    }

    /// Name of the active task-routing policy.
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// The data-placement registry (which executor holds which staged
    /// file / declared output). Read-mostly introspection; the data
    /// manager and executors feed it through task hints.
    pub fn data_map(&self) -> &DataMap {
        &self.data_map
    }

    /// Total declared input bytes the router has had to move — placements
    /// of tasks whose inputs were not yet resident on the chosen
    /// executor. The bytes-not-moved half of the locality win
    /// (`fig_locality`); the makespan half is measured by the benchmark.
    pub fn data_bytes_moved(&self) -> u64 {
        self.data_map.bytes_moved()
    }

    /// Per-executor `(label, in-flight)` counts as tracked by the
    /// dispatcher (attempts dispatched and not yet resolved).
    pub fn inflight_counts(&self) -> Vec<(String, usize)> {
        self.executors
            .iter()
            .zip(&self.inflight)
            .map(|(e, n)| (e.label().to_string(), n.load(Ordering::Relaxed)))
            .collect()
    }

    /// Ready tasks currently parked by the backpressure cap or a tenant
    /// quota.
    pub fn parked_tasks(&self) -> usize {
        self.parked.lock().len()
    }

    /// Attempts of `tenant` currently dispatched and unresolved, as
    /// tracked by the dispatcher. Zero for tenants that never submitted.
    pub fn tenant_inflight(&self, tenant: TenantId) -> usize {
        self.tenants
            .read()
            .get(&tenant)
            .map_or(0, |st| st.inflight.load(Ordering::Relaxed))
    }

    /// Tenants that have submitted work, in no particular order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.tenants.read().keys().copied().collect()
    }

    /// Times the walltime watcher has woken up. Stays at zero on a kernel
    /// that never arms a walltime — the watcher is deadline driven, not a
    /// periodic poll.
    pub fn walltime_wakeups(&self) -> u64 {
        self.walltime_wakeups.load(Ordering::Relaxed)
    }

    /// Block until every submitted task reaches a terminal state
    /// (Parsl's `wait_for_current_tasks`).
    pub fn wait_for_all(&self) {
        let mut guard = self.done_lock.lock();
        while self.live.load(Ordering::Acquire) > 0 {
            self.all_done.wait(&mut guard);
        }
    }

    /// [`DataFlowKernel::wait_for_all`] with a deadline; false on timeout.
    pub fn wait_for_all_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.done_lock.lock();
        while self.live.load(Ordering::Acquire) > 0 {
            if self.all_done.wait_until(&mut guard, deadline).timed_out() {
                return self.live.load(Ordering::Acquire) == 0;
            }
        }
        true
    }

    /// Flush the checkpoint file; returns the number of memo entries.
    pub fn checkpoint(&self) -> Result<usize, ParslError> {
        self.memo.flush()
    }

    /// Stop everything: executors, service threads; fail still-live tasks
    /// with [`TaskError::Shutdown`]. Idempotent.
    pub fn shutdown(self: &Arc<Self>) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The walltime watcher may be parked with no deadline; wake it so
        // it can observe `stop` and exit. Notify *under* the deadlines
        // lock: the watcher checks `stop` while holding it, so an
        // unlocked notify could land in the window between its check and
        // its wait and be lost — parking it (and this join) forever.
        {
            let _heap = self.deadlines.lock();
            self.deadline_cv.notify_all();
        }
        for e in &self.executors {
            e.shutdown();
        }
        // Drop our completion sender so the collector can disconnect once
        // executors drop theirs.
        self.completions.lock().take();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        // Parked tasks are among the unfinished sweep below; drop their
        // park entries so nothing re-queues them.
        self.parked.lock().clear();
        // Fail whatever never finished.
        let mut unfinished: Vec<TaskId> = Vec::new();
        for shard in &self.table.shards {
            let shard = shard.lock();
            unfinished.extend(
                shard
                    .iter()
                    .filter(|(_, r)| !r.state.is_terminal())
                    .map(|(&id, _)| id),
            );
        }
        for id in unfinished {
            self.finalize(id, Err(TaskError::Shutdown), TaskState::Failed);
        }
        let _ = self.memo.flush();
    }
}

/// A submission handle bound to one tenant: every call through it is
/// stamped with that tenant's id and accounted against its quota and
/// weight. Create via [`DataFlowKernel::tenant`]; clones share the
/// identity. Apps themselves stay tenant-neutral — one registered app
/// can be called by any number of tenants.
#[derive(Clone)]
pub struct TenantHandle {
    dfk: Arc<DataFlowKernel>,
    id: TenantId,
}

impl TenantHandle {
    /// The tenant this handle submits as.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The kernel this handle submits to.
    pub fn dfk(&self) -> &Arc<DataFlowKernel> {
        &self.dfk
    }

    /// Invoke an app as this tenant (the handle-based spelling of
    /// `app.invoke().tenant(id).call(deps)`).
    pub fn call<A: AppArgs, R: TaskValue>(&self, app: &App<A, R>, deps: A::Deps) -> AppFuture<R> {
        app.invoke().tenant(self.id).call(deps)
    }

    /// This tenant's dispatched-and-unresolved attempt count.
    pub fn inflight(&self) -> usize {
        self.dfk.tenant_inflight(self.id)
    }
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TenantHandle({})", self.id)
    }
}

impl Drop for DataFlowKernel {
    fn drop(&mut self) {
        // Threads hold Weak refs, so reaching Drop means they can't block
        // us; stop flags let them exit promptly. As in shutdown(), the
        // watcher wakeup must be published under the deadlines lock.
        self.stop.store(true, Ordering::Release);
        {
            let _heap = self.deadlines.lock();
            self.deadline_cv.notify_all();
        }
        self.completions.lock().take();
        for e in &self.executors {
            e.shutdown();
        }
    }
}

/// Scale a per-item walltime to a fused chunk's budget.
fn scale_walltime(walltime: Option<Duration>, items: u32) -> Option<Duration> {
    walltime.map(|w| w * items.max(1))
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    // Taking the Box by value avoids the &Box<dyn Any> coercion trap where
    // the *box* (not the payload) would be downcast.
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl std::fmt::Debug for DataFlowKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataFlowKernel")
            .field("executors", &self.executor_labels())
            .field("tasks", &self.task_count())
            .field("live", &self.live_tasks())
            .finish()
    }
}
