//! Error taxonomy: app-level, task-level, and API-level failures.

use crate::types::TaskId;
use std::fmt;
use std::sync::Arc;

/// A failure raised *by the app body itself* — the Rust analogue of a
/// Python exception inside a `@python_app` / `@bash_app` function.
///
/// Serializable so executors can ship it back over the wire.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AppError {
    /// The app returned an application-defined error.
    Failure(String),
    /// The app body panicked; the panic was caught by the execution kernel.
    Panic(String),
    /// A bash app's command exited nonzero (Parsl treats nonzero return
    /// codes as task failure).
    BashExit {
        /// The command's exit code, or -1 if killed by a signal.
        code: i32,
        /// The rendered command line.
        command: String,
    },
    /// The bash command could not be spawned at all.
    BashSpawn(String),
    /// Arguments or results failed to (de)serialize.
    Serialization(String),
}

impl AppError {
    /// Convenience constructor for application-defined failures.
    pub fn msg(m: impl Into<String>) -> Self {
        AppError::Failure(m.into())
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Failure(m) => write!(f, "app failed: {m}"),
            AppError::Panic(m) => write!(f, "app panicked: {m}"),
            AppError::BashExit { code, command } => {
                write!(f, "bash app exited with code {code}: {command}")
            }
            AppError::BashSpawn(m) => write!(f, "bash app could not start: {m}"),
            AppError::Serialization(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl std::error::Error for AppError {}

/// Why a task did not produce a result. This is what an [`crate::AppFuture`]
/// reports after retries are exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The app body failed on its final attempt.
    App(AppError),
    /// A task this one depends on failed, so this task never ran. Parsl
    /// wraps the upstream failure; we record the upstream task and reason.
    DependencyFailed {
        /// The dependency that failed.
        failed_task: TaskId,
        /// Rendered description of the upstream failure.
        reason: Arc<str>,
    },
    /// The executor lost the worker/manager running the task (heartbeat
    /// expiry, killed node) and retries were exhausted or disabled.
    ExecutorLost(Arc<str>),
    /// The task exceeded its configured walltime.
    WalltimeExceeded,
    /// The DataFlowKernel was shut down before the task could run.
    Shutdown,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::App(e) => write!(f, "{e}"),
            TaskError::DependencyFailed {
                failed_task,
                reason,
            } => {
                write!(f, "dependency {failed_task} failed: {reason}")
            }
            TaskError::ExecutorLost(m) => write!(f, "executor lost task: {m}"),
            TaskError::WalltimeExceeded => write!(f, "task walltime exceeded"),
            TaskError::Shutdown => write!(f, "DataFlowKernel shut down"),
        }
    }
}

impl std::error::Error for TaskError {}

impl From<AppError> for TaskError {
    fn from(e: AppError) -> Self {
        TaskError::App(e)
    }
}

/// Errors surfaced by the public API (`result()`, configuration, I/O).
#[derive(Debug)]
pub enum ParslError {
    /// The task failed; see the inner error.
    Task(TaskError),
    /// The task result bytes could not be decoded into the requested type.
    Decode(wire::Error),
    /// Configuration problem (no executors, unknown label, bad options).
    Config(String),
    /// Checkpoint file I/O failed.
    Checkpoint(std::io::Error),
    /// A blocking wait timed out.
    Timeout,
}

impl fmt::Display for ParslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParslError::Task(e) => write!(f, "task failed: {e}"),
            ParslError::Decode(e) => write!(f, "result decode failed: {e}"),
            ParslError::Config(m) => write!(f, "configuration error: {m}"),
            ParslError::Checkpoint(e) => write!(f, "checkpoint I/O failed: {e}"),
            ParslError::Timeout => write!(f, "wait timed out"),
        }
    }
}

impl std::error::Error for ParslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParslError::Task(e) => Some(e),
            ParslError::Decode(e) => Some(e),
            ParslError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TaskError> for ParslError {
    fn from(e: TaskError) -> Self {
        ParslError::Task(e)
    }
}

impl From<wire::Error> for ParslError {
    fn from(e: wire::Error) -> Self {
        ParslError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AppError::BashExit {
            code: 2,
            command: "grep x y".into(),
        };
        assert!(e.to_string().contains("code 2"));
        let t = TaskError::DependencyFailed {
            failed_task: TaskId(3),
            reason: "boom".into(),
        };
        assert!(t.to_string().contains("task-3"));
        let p = ParslError::Task(t);
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn conversions_compose() {
        let app = AppError::msg("bad input");
        let task: TaskError = app.into();
        let parsl: ParslError = task.into();
        assert!(matches!(parsl, ParslError::Task(TaskError::App(_))));
    }
}
