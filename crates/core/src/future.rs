//! App futures: single-assignment result cells (§3.1.2).
//!
//! "Futures are the only synchronization primitive offered by Parsl." A
//! future is created by an app invocation, assigned exactly once by the
//! DataFlowKernel, and observed through `result()` (blocking) and `done()`
//! (non-blocking), mirroring the paper's API.

use crate::error::{ParslError, TaskError};
use crate::types::TaskId;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use serde::de::DeserializeOwned;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

type Callback = Box<dyn FnOnce(&Result<Bytes, TaskError>) + Send>;

/// Type-erased shared state behind an [`AppFuture`].
///
/// Holds the wire-encoded result so it can be spliced directly into
/// dependent tasks' argument buffers without a decode/encode round trip.
pub struct FutureState {
    task_id: TaskId,
    cell: Mutex<Inner>,
    cond: Condvar,
}

struct Inner {
    value: Option<Result<Bytes, TaskError>>,
    callbacks: Vec<Callback>,
}

impl FutureState {
    /// New unset future for `task_id`.
    pub fn new(task_id: TaskId) -> Arc<Self> {
        Arc::new(FutureState {
            task_id,
            cell: Mutex::new(Inner {
                value: None,
                callbacks: Vec::new(),
            }),
            cond: Condvar::new(),
        })
    }

    /// The task that will assign this future.
    pub fn task_id(&self) -> TaskId {
        self.task_id
    }

    /// Assign the result. Panics if assigned twice — futures are
    /// single-update variables by design (§3.1.2).
    pub fn set(&self, value: Result<Bytes, TaskError>) {
        let callbacks = {
            let mut inner = self.cell.lock();
            assert!(
                inner.value.is_none(),
                "future for {} assigned twice",
                self.task_id
            );
            inner.value = Some(value.clone());
            std::mem::take(&mut inner.callbacks)
        };
        self.cond.notify_all();
        for cb in callbacks {
            cb(&value);
        }
    }

    /// Non-blocking: has the result been assigned?
    pub fn done(&self) -> bool {
        self.cell.lock().value.is_some()
    }

    /// Non-blocking peek at the result.
    pub fn peek(&self) -> Option<Result<Bytes, TaskError>> {
        self.cell.lock().value.clone()
    }

    /// Block until assigned and return the raw result.
    pub fn wait(&self) -> Result<Bytes, TaskError> {
        let mut inner = self.cell.lock();
        while inner.value.is_none() {
            self.cond.wait(&mut inner);
        }
        inner.value.clone().expect("checked above")
    }

    /// Block up to `timeout`; `None` if still unassigned at the deadline.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Bytes, TaskError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.cell.lock();
        while inner.value.is_none() {
            if self.cond.wait_until(&mut inner, deadline).timed_out() {
                return inner.value.clone();
            }
        }
        inner.value.clone()
    }

    /// Run `cb` when the result is assigned (immediately if it already is).
    ///
    /// This is the mechanism behind dependency edges: "edges in the task
    /// graph are encoded as asynchronous callbacks on a dependent future"
    /// (§4.1).
    pub fn on_done(&self, cb: impl FnOnce(&Result<Bytes, TaskError>) + Send + 'static) {
        let mut cb = Some(cb);
        let ready = {
            let mut inner = self.cell.lock();
            match &inner.value {
                Some(v) => Some(v.clone()),
                None => {
                    inner.callbacks.push(Box::new(cb.take().expect("present")));
                    None
                }
            }
        };
        if let Some(v) = ready {
            (cb.take().expect("not consumed by the pending branch"))(&v);
        }
    }
}

/// Typed handle to an asynchronously computed value of type `T`.
///
/// Clones share the same underlying state; `result()` can be called from
/// any thread, any number of times.
pub struct AppFuture<T> {
    state: Arc<FutureState>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for AppFuture<T> {
    fn clone(&self) -> Self {
        AppFuture {
            state: Arc::clone(&self.state),
            _marker: PhantomData,
        }
    }
}

impl<T> AppFuture<T> {
    /// Wrap type-erased state. Internal: the type parameter is chosen by
    /// the `App` that created the task.
    pub(crate) fn from_state(state: Arc<FutureState>) -> Self {
        AppFuture {
            state,
            _marker: PhantomData,
        }
    }

    /// Wrap an externally created [`FutureState`] cell. The caller vouches
    /// that whatever assigns the cell encodes a `T` — this is how layers
    /// outside the kernel (e.g. the staging cache's single-flight slots)
    /// mint futures that several waiters share.
    pub fn from_shared_state(state: Arc<FutureState>) -> Self {
        AppFuture {
            state,
            _marker: PhantomData,
        }
    }

    /// Run `cb` when the result is assigned (immediately if it already
    /// is), with the raw wire-encoded result. The callback mechanism
    /// behind dependency edges, exposed so non-kernel layers can chain
    /// completions without spawning a waiter thread.
    pub fn on_done(&self, cb: impl FnOnce(&Result<Bytes, TaskError>) + Send + 'static) {
        self.state.on_done(cb);
    }

    /// The task backing this future.
    pub fn task_id(&self) -> TaskId {
        self.state.task_id()
    }

    /// Non-blocking status check, like Python's `future.done()`.
    pub fn done(&self) -> bool {
        self.state.done()
    }

    /// The task's failure, if it failed. `None` while pending or on
    /// success.
    pub fn exception(&self) -> Option<TaskError> {
        match self.state.peek() {
            Some(Err(e)) => Some(e),
            _ => None,
        }
    }

    /// Access the shared state (used by `App::call` to wire dependencies).
    pub(crate) fn state(&self) -> &Arc<FutureState> {
        &self.state
    }
}

impl<T: serde::Serialize> AppFuture<T> {
    /// An already-resolved future holding `value` — for paths that
    /// satisfy a request without running a task (e.g. a staging-cache
    /// hit). A wire-encoding failure becomes the future's exception, so
    /// the call site stays infallible like every other invocation path.
    pub fn ready(value: &T) -> Self {
        let state = FutureState::new(TaskId(0));
        state.set(wire::to_bytes(value).map(Bytes::from).map_err(|e| {
            TaskError::App(crate::error::AppError::Serialization(format!(
                "encode ready value: {e}"
            )))
        }));
        AppFuture {
            state,
            _marker: PhantomData,
        }
    }
}

impl<T: DeserializeOwned> AppFuture<T> {
    /// Block until the task completes and decode its result, like Python's
    /// `future.result()`.
    pub fn result(&self) -> Result<T, ParslError> {
        let bytes = self.state.wait().map_err(ParslError::Task)?;
        wire::from_bytes(&bytes).map_err(ParslError::Decode)
    }

    /// [`AppFuture::result`] with a deadline; `Err(ParslError::Timeout)` if
    /// the task is still running at the deadline.
    pub fn result_timeout(&self, timeout: Duration) -> Result<T, ParslError> {
        match self.state.wait_timeout(timeout) {
            None => Err(ParslError::Timeout),
            Some(Ok(bytes)) => wire::from_bytes(&bytes).map_err(ParslError::Decode),
            Some(Err(e)) => Err(ParslError::Task(e)),
        }
    }
}

impl<T> std::fmt::Debug for AppFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppFuture")
            .field("task", &self.state.task_id())
            .field("done", &self.done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_bytes<T: serde::Serialize>(v: &T) -> Result<Bytes, TaskError> {
        Ok(Bytes::from(wire::to_bytes(v).unwrap()))
    }

    #[test]
    fn set_then_wait() {
        let st = FutureState::new(TaskId(1));
        st.set(ok_bytes(&42u32));
        assert!(st.done());
        let fut: AppFuture<u32> = AppFuture::from_state(st);
        assert_eq!(fut.result().unwrap(), 42);
        // result() is repeatable.
        assert_eq!(fut.result().unwrap(), 42);
    }

    #[test]
    fn wait_blocks_until_set() {
        let st = FutureState::new(TaskId(2));
        let st2 = Arc::clone(&st);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            st2.set(ok_bytes(&"late".to_string()));
        });
        let fut: AppFuture<String> = AppFuture::from_state(st);
        assert_eq!(fut.result().unwrap(), "late");
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_set_panics() {
        let st = FutureState::new(TaskId(3));
        st.set(ok_bytes(&1u8));
        st.set(ok_bytes(&2u8));
    }

    #[test]
    fn timeout_expires() {
        let st = FutureState::new(TaskId(4));
        let fut: AppFuture<u32> = AppFuture::from_state(st);
        assert!(matches!(
            fut.result_timeout(Duration::from_millis(10)),
            Err(ParslError::Timeout)
        ));
    }

    #[test]
    fn exception_surfaces_failure() {
        let st = FutureState::new(TaskId(5));
        st.set(Err(TaskError::WalltimeExceeded));
        let fut: AppFuture<u32> = AppFuture::from_state(st);
        assert!(matches!(fut.exception(), Some(TaskError::WalltimeExceeded)));
        assert!(matches!(
            fut.result(),
            Err(ParslError::Task(TaskError::WalltimeExceeded))
        ));
    }

    #[test]
    fn callback_fires_on_set() {
        let st = FutureState::new(TaskId(6));
        let (tx, rx) = crossbeam::channel::bounded(1);
        st.on_done(move |r| {
            tx.send(r.is_ok()).unwrap();
        });
        st.set(ok_bytes(&1u8));
        assert!(rx.recv_timeout(Duration::from_secs(1)).unwrap());
    }

    #[test]
    fn callback_fires_immediately_if_already_done() {
        let st = FutureState::new(TaskId(7));
        st.set(ok_bytes(&1u8));
        let (tx, rx) = crossbeam::channel::bounded(1);
        st.on_done(move |r| {
            tx.send(r.is_ok()).unwrap();
        });
        assert!(rx.recv_timeout(Duration::from_secs(1)).unwrap());
    }

    #[test]
    fn decode_error_is_reported() {
        let st = FutureState::new(TaskId(8));
        st.set(ok_bytes(&"text".to_string()));
        let fut: AppFuture<u64> = AppFuture::from_state(st);
        assert!(matches!(fut.result(), Err(ParslError::Decode(_))));
    }
}
