//! The elasticity strategy engine (§3.6, §4.4).
//!
//! "Parsl implements a cloud-like elasticity model in which resource blocks
//! are provisioned/deprovisioned in response to workload pressure", driven
//! by an extensible strategy with a `parallelism` knob describing "how
//! aggressively the resources should grow and shrink in response to waiting
//! tasks".
//!
//! Three planes, all selected through [`StrategyMode`] on the config:
//!
//! - [`SimpleStrategy`] is the paper's reactive threshold controller: target
//!   `ceil(outstanding × parallelism)` worker slots, convert to blocks,
//!   clamp to `[min_blocks, max_blocks]`.
//! - [`PredictiveStrategy`] is a queue-model controller: Little's law
//!   (`L = λW`) turns the arrival-rate EWMA and the observed service-time
//!   median into a worker demand, a hysteresis band suppresses flapping,
//!   and scale-in is expressed as [`ScalingDecision::Drain`] so victim
//!   blocks finish their held tasks before release instead of being
//!   cancelled under running work.
//! - [`StrategyMode::Custom`] plugs any user [`Strategy`] in via config
//!   alone — no kernel edits.
//!
//! Every strategy sees a [`LoadSignal`] — outstanding/running depth, the
//! arrival-rate EWMA, observed service-time quantiles, and the parked
//! backlog — and answers with a [`ScalingDecision`]. The strategy loop in
//! the DataFlowKernel invokes [`Strategy::decide`] once per executor every
//! `interval`.

use crate::executor::BlockScaling;
use std::sync::Arc;
use std::time::Duration;

/// The load context a [`Strategy`] decides from — one executor's view,
/// assembled by the kernel's strategy loop each tick.
#[derive(Debug, Clone, Copy)]
pub struct LoadSignal {
    /// Position of the executor in the kernel's configuration order.
    pub executor: usize,
    /// Tasks charged to this executor and not yet terminal (dispatched or
    /// queued inside it).
    pub outstanding: usize,
    /// Tasks the executor itself still reports in flight (its own
    /// submit-to-outcome window; a subset of `outstanding` timing-wise).
    pub running: usize,
    /// Kernel-wide task arrival rate, tasks/second, as an exponentially
    /// weighted moving average over strategy ticks.
    pub arrival_rate: f64,
    /// Observed median service time across recently completed tasks, when
    /// enough samples exist.
    pub service_p50: Option<Duration>,
    /// Observed 99th-percentile service time, when enough samples exist.
    pub service_p99: Option<Duration>,
    /// Tasks parked by backpressure/quotas, kernel-wide: demand that has
    /// arrived but is not yet charged to any executor.
    pub parked: usize,
}

impl Default for LoadSignal {
    fn default() -> Self {
        LoadSignal {
            executor: 0,
            outstanding: 0,
            running: 0,
            arrival_rate: 0.0,
            service_p50: None,
            service_p99: None,
            parked: 0,
        }
    }
}

impl LoadSignal {
    /// A signal carrying only a queue depth — the legacy shape, convenient
    /// for tests and for strategies that ignore the richer fields.
    pub fn outstanding(outstanding: usize) -> Self {
        LoadSignal {
            outstanding,
            ..Default::default()
        }
    }
}

/// What the strategy decided for one executor on one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// Capacity matches the target.
    Hold,
    /// Request `blocks` more blocks.
    Out {
        /// Blocks to add.
        blocks: usize,
    },
    /// Release `blocks` blocks immediately. Running tasks on the victims
    /// are cancelled and retried — the paper's behavior, kept for
    /// [`SimpleStrategy`] compatibility.
    In {
        /// Blocks to remove.
        blocks: usize,
    },
    /// Gracefully retire `blocks` blocks: the kernel stops routing to
    /// them, their held tasks finish, then the resources are released.
    /// No task is ever cancelled by a drain.
    Drain {
        /// Blocks to retire.
        blocks: usize,
    },
}

/// Pluggable strategy: given load, choose a scaling action.
///
/// "Parsl provides an extensible strategy interface by which users can
/// implement their own elasticity logic." Plug one in with
/// [`StrategyConfig::custom`]; the kernel needs no edits.
pub trait Strategy: Send + Sync {
    /// Strategy name, for monitoring and debug output.
    fn name(&self) -> &str {
        "custom"
    }

    /// Decide for one executor from its current [`LoadSignal`].
    fn decide(&self, signal: &LoadSignal, scaling: &dyn BlockScaling) -> ScalingDecision;
}

/// Which controller drives elasticity, part of [`StrategyConfig`].
/// Mirrors [`crate::scheduler::SchedulerPolicy`]: built-ins are data,
/// arbitrary logic plugs in through `Custom`.
#[derive(Clone, Default)]
pub enum StrategyMode {
    /// No scaling; the kernel never touches block pools (default).
    #[default]
    Off,
    /// The reactive threshold controller ([`SimpleStrategy`]).
    Simple {
        /// Workers targeted per outstanding task, in `(0, 1]` typically.
        /// 1.0 = one worker slot per waiting task (most aggressive).
        parallelism: f64,
    },
    /// The Little's-law queue-model controller ([`PredictiveStrategy`]).
    Predictive(PredictiveConfig),
    /// A user-supplied strategy.
    Custom(Arc<dyn Strategy>),
}

impl StrategyMode {
    /// Materialize the strategy, or `None` for [`StrategyMode::Off`].
    pub fn build(&self) -> Option<Arc<dyn Strategy>> {
        match self {
            StrategyMode::Off => None,
            StrategyMode::Simple { parallelism } => {
                Some(Arc::new(SimpleStrategy::new(*parallelism)))
            }
            StrategyMode::Predictive(cfg) => Some(Arc::new(PredictiveStrategy::new(cfg.clone()))),
            StrategyMode::Custom(s) => Some(Arc::clone(s)),
        }
    }
}

impl std::fmt::Debug for StrategyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyMode::Off => f.write_str("Off"),
            StrategyMode::Simple { parallelism } => {
                write!(f, "Simple {{ parallelism: {parallelism} }}")
            }
            StrategyMode::Predictive(cfg) => write!(f, "Predictive({cfg:?})"),
            StrategyMode::Custom(s) => write!(f, "Custom({})", s.name()),
        }
    }
}

/// Straggler-hedging knobs, part of [`StrategyConfig`]. When set, the
/// kernel watches launched tasks and submits a speculative duplicate
/// attempt for any task running longer than `multiplier × observed p99`
/// of its app's service time; the first terminal result wins, the loser
/// is cancelled and filtered by attempt stamping.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Hedge once a task's age exceeds this multiple of the app's p99.
    pub multiplier: f64,
    /// Never hedge before this many completed samples exist for the app
    /// (a p99 over 3 points is noise).
    pub min_samples: usize,
    /// Absolute floor on task age before hedging, whatever the p99 says.
    pub min_age: Duration,
    /// How often the hedge watcher scans in-flight tasks.
    pub check_interval: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            multiplier: 3.0,
            min_samples: 20,
            min_age: Duration::from_millis(50),
            check_interval: Duration::from_millis(25),
        }
    }
}

/// Strategy configuration, part of [`crate::config::Config`].
///
/// Build one with the mode constructors and chain the knobs:
///
/// ```
/// use parsl_core::strategy::{PredictiveConfig, StrategyConfig};
/// use std::time::Duration;
///
/// let cfg = StrategyConfig::predictive(PredictiveConfig::default())
///     .interval(Duration::from_millis(100));
/// assert!(cfg.enabled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StrategyConfig {
    /// Which controller runs (off by default).
    pub mode: StrategyMode,
    /// Evaluation period of the strategy loop.
    pub interval: Duration,
    /// Straggler hedging; `None` disables it.
    pub hedge: Option<HedgeConfig>,
}

impl StrategyConfig {
    /// Default evaluation period when none is set explicitly.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(5);

    fn with_mode(mode: StrategyMode) -> Self {
        StrategyConfig {
            mode,
            interval: Self::DEFAULT_INTERVAL,
            hedge: None,
        }
    }

    /// No scaling (the default).
    pub fn off() -> Self {
        Self::with_mode(StrategyMode::Off)
    }

    /// The reactive threshold controller with the given aggressiveness.
    pub fn simple(parallelism: f64) -> Self {
        Self::with_mode(StrategyMode::Simple { parallelism })
    }

    /// The Little's-law queue-model controller.
    pub fn predictive(cfg: PredictiveConfig) -> Self {
        Self::with_mode(StrategyMode::Predictive(cfg))
    }

    /// A user-supplied strategy, pluggable via config alone.
    pub fn custom(strategy: Arc<dyn Strategy>) -> Self {
        Self::with_mode(StrategyMode::Custom(strategy))
    }

    /// Set the evaluation period.
    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Enable straggler hedging.
    pub fn hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Whether any controller is active.
    pub fn enabled(&self) -> bool {
        !matches!(self.mode, StrategyMode::Off)
    }
}

/// The default target-tracking strategy described in the module docs.
#[derive(Debug, Clone)]
pub struct SimpleStrategy {
    /// See [`StrategyMode::Simple`].
    pub parallelism: f64,
}

impl SimpleStrategy {
    /// Strategy with the given aggressiveness.
    pub fn new(parallelism: f64) -> Self {
        assert!(parallelism > 0.0, "parallelism must be positive");
        SimpleStrategy { parallelism }
    }

    /// Target block count for a load level.
    pub fn target_blocks(&self, outstanding: usize, scaling: &dyn BlockScaling) -> usize {
        let wpb = scaling.workers_per_block().max(1);
        let target_workers = (outstanding as f64 * self.parallelism).ceil() as usize;
        let blocks = target_workers.div_ceil(wpb);
        blocks.clamp(scaling.min_blocks(), scaling.max_blocks())
    }
}

impl Strategy for SimpleStrategy {
    fn name(&self) -> &str {
        "simple"
    }

    fn decide(&self, signal: &LoadSignal, scaling: &dyn BlockScaling) -> ScalingDecision {
        let target = self.target_blocks(signal.outstanding, scaling);
        let current = scaling.block_count();
        use std::cmp::Ordering::*;
        match target.cmp(&current) {
            Equal => ScalingDecision::Hold,
            Greater => ScalingDecision::Out {
                blocks: target - current,
            },
            Less => ScalingDecision::In {
                blocks: current - target,
            },
        }
    }
}

/// Tuning for [`PredictiveStrategy`].
#[derive(Debug, Clone)]
pub struct PredictiveConfig {
    /// Target worker utilization ρ in `(0, 1]`: provisioned slots are
    /// sized so sustained load keeps them this busy, leaving `1 - ρ`
    /// headroom against burst variance.
    pub target_utilization: f64,
    /// Hysteresis band width: scale-in only triggers once current
    /// capacity exceeds `demand × (1 + hysteresis)` blocks, so the pool
    /// does not flap across a block boundary.
    pub hysteresis: f64,
    /// Service-time prior used until the monitor has real samples
    /// (calibrated workloads in `baselines/model.rs` run ~1 task/s/worker).
    pub default_service: Duration,
    /// When true (default), scale-in is expressed as
    /// [`ScalingDecision::Drain`] — graceful retirement. When false it
    /// falls back to the abrupt [`ScalingDecision::In`] path.
    pub drain: bool,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            target_utilization: 0.75,
            hysteresis: 0.25,
            default_service: Duration::from_secs(1),
            drain: true,
        }
    }
}

/// Little's-law predictive controller.
///
/// Steady-state concurrency demand is `L = λW`: the arrival-rate EWMA
/// times the observed median service time. Dividing by the target
/// utilization ρ converts that to provisioned slots with headroom, and any
/// backlog beyond the steady-state level (`outstanding + parked − λW`)
/// adds one slot per excess task so an already-arrived burst clears at
/// full parallelism rather than at the arrival rate:
///
/// ```text
/// demand = λ·W / ρ  +  max(outstanding + parked − λ·W, 0)
/// ```
///
/// The demand converts to blocks and a hysteresis band suppresses
/// flapping: below the band scale out to meet it, above the band retire
/// the excess — by graceful [`ScalingDecision::Drain`] — inside it hold.
#[derive(Debug, Clone)]
pub struct PredictiveStrategy {
    /// Tuning knobs.
    pub cfg: PredictiveConfig,
}

impl PredictiveStrategy {
    /// Strategy with the given tuning; validates the utilization target.
    pub fn new(cfg: PredictiveConfig) -> Self {
        assert!(
            cfg.target_utilization > 0.0 && cfg.target_utilization <= 1.0,
            "target_utilization must be in (0, 1]"
        );
        assert!(cfg.hysteresis >= 0.0, "hysteresis must be non-negative");
        PredictiveStrategy { cfg }
    }

    /// Worker-slot demand for a load signal (the formula above).
    pub fn target_workers(&self, signal: &LoadSignal) -> f64 {
        let service = signal
            .service_p50
            .unwrap_or(self.cfg.default_service)
            .as_secs_f64();
        let littles = signal.arrival_rate * service;
        let backlog = (signal.outstanding + signal.parked) as f64 - littles;
        littles / self.cfg.target_utilization + backlog.max(0.0)
    }

    /// Demand converted to blocks, clamped to the pool window.
    pub fn target_blocks(&self, signal: &LoadSignal, scaling: &dyn BlockScaling) -> usize {
        let wpb = scaling.workers_per_block().max(1);
        let workers = self.target_workers(signal).ceil() as usize;
        workers
            .div_ceil(wpb)
            .clamp(scaling.min_blocks(), scaling.max_blocks())
    }
}

impl Strategy for PredictiveStrategy {
    fn name(&self) -> &str {
        "predictive"
    }

    fn decide(&self, signal: &LoadSignal, scaling: &dyn BlockScaling) -> ScalingDecision {
        let wpb = scaling.workers_per_block().max(1);
        let demand = self.target_workers(signal);
        let floor = (demand.ceil() as usize)
            .div_ceil(wpb)
            .clamp(scaling.min_blocks(), scaling.max_blocks());
        let ceiling = ((demand * (1.0 + self.cfg.hysteresis)).ceil() as usize)
            .div_ceil(wpb)
            .clamp(scaling.min_blocks(), scaling.max_blocks())
            .max(floor);
        let current = scaling.block_count();
        if current < floor {
            ScalingDecision::Out {
                blocks: floor - current,
            }
        } else if current > ceiling {
            let blocks = current - ceiling;
            if self.cfg.drain {
                ScalingDecision::Drain { blocks }
            } else {
                ScalingDecision::In { blocks }
            }
        } else {
            ScalingDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct FakeScaling {
        blocks: AtomicUsize,
        draining: AtomicUsize,
        wpb: usize,
        min: usize,
        max: usize,
    }

    impl FakeScaling {
        fn new(blocks: usize, wpb: usize, min: usize, max: usize) -> Self {
            FakeScaling {
                blocks: AtomicUsize::new(blocks),
                draining: AtomicUsize::new(0),
                wpb,
                min,
                max,
            }
        }
    }

    impl BlockScaling for FakeScaling {
        fn block_count(&self) -> usize {
            self.blocks.load(Ordering::SeqCst)
        }
        fn workers_per_block(&self) -> usize {
            self.wpb
        }
        fn scale_out(&self, n: usize) -> usize {
            self.blocks.fetch_add(n, Ordering::SeqCst);
            n
        }
        fn scale_in(&self, n: usize) -> usize {
            self.blocks.fetch_sub(n, Ordering::SeqCst);
            n
        }
        fn drain(&self, n: usize) -> usize {
            self.draining.fetch_add(n, Ordering::SeqCst);
            self.blocks.fetch_sub(n, Ordering::SeqCst);
            n
        }
        fn draining_blocks(&self) -> usize {
            self.draining.load(Ordering::SeqCst)
        }
        fn min_blocks(&self) -> usize {
            self.min
        }
        fn max_blocks(&self) -> usize {
            self.max
        }
    }

    #[test]
    fn scales_out_under_load() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(1, 5, 0, 10);
        // 20 outstanding tasks / 5 workers per block => 4 blocks.
        assert_eq!(
            s.decide(&LoadSignal::outstanding(20), &sc),
            ScalingDecision::Out { blocks: 3 }
        );
    }

    #[test]
    fn scales_in_when_idle() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(4, 5, 1, 10);
        // 1 outstanding task => 1 block (min respected).
        assert_eq!(
            s.decide(&LoadSignal::outstanding(1), &sc),
            ScalingDecision::In { blocks: 3 }
        );
        // Completely idle => min_blocks.
        assert_eq!(
            s.decide(&LoadSignal::outstanding(0), &sc),
            ScalingDecision::In { blocks: 3 }
        );
    }

    #[test]
    fn holds_at_target() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(4, 5, 0, 10);
        assert_eq!(
            s.decide(&LoadSignal::outstanding(20), &sc),
            ScalingDecision::Hold
        );
    }

    #[test]
    fn clamps_to_max() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(2, 5, 0, 3);
        assert_eq!(
            s.decide(&LoadSignal::outstanding(1000), &sc),
            ScalingDecision::Out { blocks: 1 }
        );
    }

    #[test]
    fn parallelism_scales_aggressiveness() {
        let half = SimpleStrategy::new(0.5);
        let sc = FakeScaling::new(0, 5, 0, 100);
        // 20 tasks × 0.5 = 10 workers => 2 blocks.
        assert_eq!(half.target_blocks(20, &sc), 2);
        let full = SimpleStrategy::new(1.0);
        assert_eq!(full.target_blocks(20, &sc), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parallelism_rejected() {
        let _ = SimpleStrategy::new(0.0);
    }

    #[test]
    fn holds_pinned_at_max_under_unbounded_load() {
        // Already at the ceiling: any extra load must not scale out.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(3, 5, 0, 3);
        assert_eq!(
            s.decide(&LoadSignal::outstanding(usize::MAX / 8), &sc),
            ScalingDecision::Hold
        );
        assert_eq!(s.target_blocks(usize::MAX / 8, &sc), 3);
    }

    #[test]
    fn holds_pinned_at_min_when_idle() {
        // Already at the floor: zero load must not scale in below it.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(2, 5, 2, 10);
        assert_eq!(
            s.decide(&LoadSignal::outstanding(0), &sc),
            ScalingDecision::Hold
        );
        assert_eq!(s.target_blocks(0, &sc), 2);
    }

    #[test]
    fn exact_block_boundary_does_not_overshoot() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(2, 5, 0, 10);
        // Exactly 2 blocks' worth of work: hold.
        assert_eq!(
            s.decide(&LoadSignal::outstanding(10), &sc),
            ScalingDecision::Hold
        );
        // One task past the boundary tips exactly one block out.
        assert_eq!(
            s.decide(&LoadSignal::outstanding(11), &sc),
            ScalingDecision::Out { blocks: 1 }
        );
        // One under stays within 2 blocks: hold (9 → ceil(9/5) = 2).
        assert_eq!(
            s.decide(&LoadSignal::outstanding(9), &sc),
            ScalingDecision::Hold
        );
    }

    #[test]
    fn min_equals_max_freezes_the_pool() {
        // A degenerate [n, n] window can never move.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(4, 5, 4, 4);
        assert_eq!(
            s.decide(&LoadSignal::outstanding(0), &sc),
            ScalingDecision::Hold
        );
        assert_eq!(
            s.decide(&LoadSignal::outstanding(10_000), &sc),
            ScalingDecision::Hold
        );
    }

    #[test]
    fn zero_workers_per_block_treated_as_one() {
        // Misconfigured provider reporting 0 slots per block must not
        // divide by zero; it degrades to one slot per block.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(0, 0, 0, 8);
        assert_eq!(s.target_blocks(5, &sc), 5);
        assert_eq!(
            s.decide(&LoadSignal::outstanding(5), &sc),
            ScalingDecision::Out { blocks: 5 }
        );
    }

    // -- StrategyMode / StrategyConfig ------------------------------------

    #[test]
    fn mode_builder_materializes_each_controller() {
        assert!(StrategyMode::Off.build().is_none());
        assert_eq!(
            StrategyMode::Simple { parallelism: 1.0 }
                .build()
                .unwrap()
                .name(),
            "simple"
        );
        assert_eq!(
            StrategyMode::Predictive(PredictiveConfig::default())
                .build()
                .unwrap()
                .name(),
            "predictive"
        );
        struct Never;
        impl Strategy for Never {
            fn name(&self) -> &str {
                "never"
            }
            fn decide(&self, _: &LoadSignal, _: &dyn BlockScaling) -> ScalingDecision {
                ScalingDecision::Hold
            }
        }
        let custom = StrategyConfig::custom(Arc::new(Never));
        assert_eq!(custom.mode.build().unwrap().name(), "never");
        assert!(custom.enabled());
    }

    #[test]
    fn config_defaults_are_off() {
        let cfg = StrategyConfig::default();
        assert!(!cfg.enabled());
        assert!(cfg.hedge.is_none());
        assert_eq!(cfg.interval, Duration::ZERO);
        // The constructors set the conventional interval.
        assert_eq!(
            StrategyConfig::off().interval,
            StrategyConfig::DEFAULT_INTERVAL
        );
    }

    #[test]
    fn config_builder_chains() {
        let cfg = StrategyConfig::simple(0.5)
            .interval(Duration::from_millis(100))
            .hedge(HedgeConfig::default());
        assert!(cfg.enabled());
        assert_eq!(cfg.interval, Duration::from_millis(100));
        assert!(cfg.hedge.is_some());
        assert!(matches!(cfg.mode, StrategyMode::Simple { parallelism } if parallelism == 0.5));
    }

    // -- PredictiveStrategy ------------------------------------------------

    /// Signal for a steady flow: λ tasks/s at a given service time.
    fn steady(rate: f64, service_ms: u64, outstanding: usize) -> LoadSignal {
        LoadSignal {
            arrival_rate: rate,
            service_p50: Some(Duration::from_millis(service_ms)),
            service_p99: Some(Duration::from_millis(service_ms * 2)),
            outstanding,
            ..Default::default()
        }
    }

    #[test]
    fn predictive_littles_law_sizes_steady_state() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            ..Default::default()
        });
        // λ=10/s × W=1s = 10 workers; outstanding matches steady state so
        // no backlog term.
        let sig = steady(10.0, 1000, 10);
        assert_eq!(p.target_workers(&sig).round() as usize, 10);
        let sc = FakeScaling::new(1, 5, 0, 10);
        assert_eq!(p.decide(&sig, &sc), ScalingDecision::Out { blocks: 1 });
    }

    #[test]
    fn predictive_headroom_divides_by_utilization() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 0.5,
            hysteresis: 0.0,
            ..Default::default()
        });
        // Same steady flow, ρ=0.5 => twice the slots.
        let sig = steady(10.0, 1000, 10);
        assert_eq!(p.target_workers(&sig).round() as usize, 20);
    }

    #[test]
    fn predictive_backlog_adds_full_parallelism() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            ..Default::default()
        });
        // A one-shot burst: arrivals have stopped (λ≈0) but 40 tasks wait.
        // Demand degrades to outstanding, like SimpleStrategy(1.0).
        let sig = LoadSignal {
            outstanding: 40,
            service_p50: Some(Duration::from_secs(1)),
            ..Default::default()
        };
        assert_eq!(p.target_workers(&sig).round() as usize, 40);
        let sc = FakeScaling::new(2, 5, 0, 10);
        assert_eq!(p.decide(&sig, &sc), ScalingDecision::Out { blocks: 6 });
    }

    #[test]
    fn predictive_counts_parked_demand() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            ..Default::default()
        });
        // Parked tasks are arrived-but-unrouted demand: they must attract
        // capacity even though no executor reports them outstanding.
        let sig = LoadSignal {
            parked: 15,
            ..Default::default()
        };
        assert_eq!(p.target_workers(&sig).round() as usize, 15);
    }

    #[test]
    fn predictive_drains_excess_gracefully() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            ..Default::default()
        });
        let sc = FakeScaling::new(4, 5, 0, 10);
        // Load collapsed to 3 tasks => 1 block; 3 excess blocks drain.
        assert_eq!(
            p.decide(&LoadSignal::outstanding(3), &sc),
            ScalingDecision::Drain { blocks: 3 }
        );
        // With drain disabled the legacy abrupt path is used.
        let abrupt = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            drain: false,
            ..Default::default()
        });
        assert_eq!(
            abrupt.decide(&LoadSignal::outstanding(3), &sc),
            ScalingDecision::In { blocks: 3 }
        );
    }

    #[test]
    fn predictive_hysteresis_suppresses_flapping() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.5,
            ..Default::default()
        });
        // Demand = 8 workers = 2 blocks; band ceiling = ceil(12/5) = 3
        // blocks. 3 provisioned blocks sit inside the band: hold, no flap.
        let sig = LoadSignal {
            outstanding: 8,
            service_p50: Some(Duration::from_secs(1)),
            ..Default::default()
        };
        let sc = FakeScaling::new(3, 5, 0, 10);
        assert_eq!(p.decide(&sig, &sc), ScalingDecision::Hold);
        // A fourth block exceeds even the widened band: drain exactly the
        // excess above the ceiling.
        let sc = FakeScaling::new(4, 5, 0, 10);
        assert_eq!(p.decide(&sig, &sc), ScalingDecision::Drain { blocks: 1 });
    }

    #[test]
    fn predictive_respects_pool_window() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            ..Default::default()
        });
        // Idle but floored at 2 blocks: hold.
        let sc = FakeScaling::new(2, 5, 2, 10);
        assert_eq!(
            p.decide(&LoadSignal::outstanding(0), &sc),
            ScalingDecision::Hold
        );
        // Saturated but capped at 3 blocks: out only to the cap.
        let sc = FakeScaling::new(1, 5, 0, 3);
        assert_eq!(
            p.decide(&LoadSignal::outstanding(10_000), &sc),
            ScalingDecision::Out { blocks: 2 }
        );
    }

    #[test]
    fn predictive_uses_default_service_without_samples() {
        let p = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 1.0,
            hysteresis: 0.0,
            default_service: Duration::from_secs(2),
            drain: true,
        });
        // No observed quantiles yet: λ=5/s × prior 2s = 10 workers.
        let sig = LoadSignal {
            arrival_rate: 5.0,
            outstanding: 10,
            ..Default::default()
        };
        assert_eq!(p.target_workers(&sig).round() as usize, 10);
    }

    #[test]
    #[should_panic(expected = "target_utilization")]
    fn predictive_rejects_bad_utilization() {
        let _ = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn drain_decision_uses_drain_path_on_fake_pool() {
        // The FakeScaling drain() bookkeeping: a Drain decision routed
        // through BlockScaling::drain retires blocks and records them.
        let sc = FakeScaling::new(4, 5, 0, 10);
        assert_eq!(sc.drain(2), 2);
        assert_eq!(sc.block_count(), 2);
        assert_eq!(sc.draining_blocks(), 2);
    }
}
