//! The elasticity strategy engine (§3.6, §4.4).
//!
//! "Parsl implements a cloud-like elasticity model in which resource blocks
//! are provisioned/deprovisioned in response to workload pressure", driven
//! by an extensible strategy with a `parallelism` knob describing "how
//! aggressively the resources should grow and shrink in response to waiting
//! tasks".
//!
//! The default strategy targets `ceil(outstanding × parallelism)` worker
//! slots, converts that to blocks, clamps to `[min_blocks, max_blocks]`,
//! and asks the executor's [`crate::executor::BlockScaling`] interface to
//! move toward the target. The strategy loop in the DataFlowKernel invokes
//! [`Strategy::decide`] every `interval`.

use crate::executor::BlockScaling;
use std::time::Duration;

/// Strategy configuration, part of [`crate::config::Config`].
#[derive(Debug, Clone)]
pub struct StrategyConfig {
    /// Master switch; when false the DFK never scales anything.
    pub enabled: bool,
    /// Evaluation period.
    pub interval: Duration,
    /// Workers targeted per outstanding task, in `(0, 1]` typically.
    /// 1.0 = one worker slot per waiting task (most aggressive).
    pub parallelism: f64,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig {
            enabled: false,
            interval: Duration::from_secs(5),
            parallelism: 1.0,
        }
    }
}

/// What the strategy decided for one executor on one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingDecision {
    /// Capacity matches the target.
    Hold,
    /// Request `blocks` more blocks.
    Out {
        /// Blocks to add.
        blocks: usize,
    },
    /// Release `blocks` blocks.
    In {
        /// Blocks to remove.
        blocks: usize,
    },
}

/// Pluggable strategy: given load, choose a scaling action.
///
/// "Parsl provides an extensible strategy interface by which users can
/// implement their own elasticity logic."
pub trait Strategy: Send + Sync {
    /// Decide for one executor. `outstanding` counts tasks submitted to the
    /// executor but not yet completed.
    fn decide(&self, outstanding: usize, scaling: &dyn BlockScaling) -> ScalingDecision;
}

/// The default target-tracking strategy described in the module docs.
#[derive(Debug, Clone)]
pub struct SimpleStrategy {
    /// See [`StrategyConfig::parallelism`].
    pub parallelism: f64,
}

impl SimpleStrategy {
    /// Strategy with the given aggressiveness.
    pub fn new(parallelism: f64) -> Self {
        assert!(parallelism > 0.0, "parallelism must be positive");
        SimpleStrategy { parallelism }
    }

    /// Target block count for a load level.
    pub fn target_blocks(&self, outstanding: usize, scaling: &dyn BlockScaling) -> usize {
        let wpb = scaling.workers_per_block().max(1);
        let target_workers = (outstanding as f64 * self.parallelism).ceil() as usize;
        let blocks = target_workers.div_ceil(wpb);
        blocks.clamp(scaling.min_blocks(), scaling.max_blocks())
    }
}

impl Strategy for SimpleStrategy {
    fn decide(&self, outstanding: usize, scaling: &dyn BlockScaling) -> ScalingDecision {
        let target = self.target_blocks(outstanding, scaling);
        let current = scaling.block_count();
        use std::cmp::Ordering::*;
        match target.cmp(&current) {
            Equal => ScalingDecision::Hold,
            Greater => ScalingDecision::Out {
                blocks: target - current,
            },
            Less => ScalingDecision::In {
                blocks: current - target,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct FakeScaling {
        blocks: AtomicUsize,
        wpb: usize,
        min: usize,
        max: usize,
    }

    impl FakeScaling {
        fn new(blocks: usize, wpb: usize, min: usize, max: usize) -> Self {
            FakeScaling {
                blocks: AtomicUsize::new(blocks),
                wpb,
                min,
                max,
            }
        }
    }

    impl BlockScaling for FakeScaling {
        fn block_count(&self) -> usize {
            self.blocks.load(Ordering::SeqCst)
        }
        fn workers_per_block(&self) -> usize {
            self.wpb
        }
        fn scale_out(&self, n: usize) -> usize {
            self.blocks.fetch_add(n, Ordering::SeqCst);
            n
        }
        fn scale_in(&self, n: usize) -> usize {
            self.blocks.fetch_sub(n, Ordering::SeqCst);
            n
        }
        fn min_blocks(&self) -> usize {
            self.min
        }
        fn max_blocks(&self) -> usize {
            self.max
        }
    }

    #[test]
    fn scales_out_under_load() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(1, 5, 0, 10);
        // 20 outstanding tasks / 5 workers per block => 4 blocks.
        assert_eq!(s.decide(20, &sc), ScalingDecision::Out { blocks: 3 });
    }

    #[test]
    fn scales_in_when_idle() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(4, 5, 1, 10);
        // 1 outstanding task => 1 block (min respected).
        assert_eq!(s.decide(1, &sc), ScalingDecision::In { blocks: 3 });
        // Completely idle => min_blocks.
        assert_eq!(s.decide(0, &sc), ScalingDecision::In { blocks: 3 });
    }

    #[test]
    fn holds_at_target() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(4, 5, 0, 10);
        assert_eq!(s.decide(20, &sc), ScalingDecision::Hold);
    }

    #[test]
    fn clamps_to_max() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(2, 5, 0, 3);
        assert_eq!(s.decide(1000, &sc), ScalingDecision::Out { blocks: 1 });
    }

    #[test]
    fn parallelism_scales_aggressiveness() {
        let half = SimpleStrategy::new(0.5);
        let sc = FakeScaling::new(0, 5, 0, 100);
        // 20 tasks × 0.5 = 10 workers => 2 blocks.
        assert_eq!(half.target_blocks(20, &sc), 2);
        let full = SimpleStrategy::new(1.0);
        assert_eq!(full.target_blocks(20, &sc), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_parallelism_rejected() {
        let _ = SimpleStrategy::new(0.0);
    }

    #[test]
    fn holds_pinned_at_max_under_unbounded_load() {
        // Already at the ceiling: any extra load must not scale out.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(3, 5, 0, 3);
        assert_eq!(s.decide(usize::MAX / 8, &sc), ScalingDecision::Hold);
        assert_eq!(s.target_blocks(usize::MAX / 8, &sc), 3);
    }

    #[test]
    fn holds_pinned_at_min_when_idle() {
        // Already at the floor: zero load must not scale in below it.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(2, 5, 2, 10);
        assert_eq!(s.decide(0, &sc), ScalingDecision::Hold);
        assert_eq!(s.target_blocks(0, &sc), 2);
    }

    #[test]
    fn exact_block_boundary_does_not_overshoot() {
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(2, 5, 0, 10);
        // Exactly 2 blocks' worth of work: hold.
        assert_eq!(s.decide(10, &sc), ScalingDecision::Hold);
        // One task past the boundary tips exactly one block out.
        assert_eq!(s.decide(11, &sc), ScalingDecision::Out { blocks: 1 });
        // One under stays within 2 blocks: hold (9 → ceil(9/5) = 2).
        assert_eq!(s.decide(9, &sc), ScalingDecision::Hold);
    }

    #[test]
    fn min_equals_max_freezes_the_pool() {
        // A degenerate [n, n] window can never move.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(4, 5, 4, 4);
        assert_eq!(s.decide(0, &sc), ScalingDecision::Hold);
        assert_eq!(s.decide(10_000, &sc), ScalingDecision::Hold);
    }

    #[test]
    fn zero_workers_per_block_treated_as_one() {
        // Misconfigured provider reporting 0 slots per block must not
        // divide by zero; it degrades to one slot per block.
        let s = SimpleStrategy::new(1.0);
        let sc = FakeScaling::new(0, 0, 0, 8);
        assert_eq!(s.target_blocks(5, &sc), 5);
        assert_eq!(s.decide(5, &sc), ScalingDecision::Out { blocks: 5 });
    }
}
