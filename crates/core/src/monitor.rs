//! Monitoring hooks (§4.6).
//!
//! "DFK logs execution metadata and task state transitions, and workers log
//! task execution information." The core crate defines the event stream and
//! the sink interface; concrete stores (in-memory, CSV, analysis) live in
//! `parsl-monitor`.

use crate::types::{TaskId, TaskState, TenantId};
use std::sync::Arc;
use std::time::Duration;

/// A task state transition or worker-pool change.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// A task changed state.
    Task {
        /// The task.
        task: TaskId,
        /// App name, for per-app aggregation. Shared (`Arc<str>`) with the
        /// app registration, so emitting an event never copies the string.
        app: Arc<str>,
        /// The state entered.
        state: TaskState,
        /// Which executor (present from launch onward).
        executor: Option<String>,
        /// Attempt number (0-based; >0 indicates retries).
        attempt: u32,
        /// Logical workflow the task belongs to, for per-tenant
        /// aggregation and fairness accounting.
        tenant: TenantId,
        /// Logical items this task represents (1 normally; the chunk
        /// length for fused `app.map` chunks). Aggregations that count
        /// work — per-app task counts, tenant throughput — should weight
        /// by this so fused events expand to logical counts.
        items: u32,
        /// Time since the DataFlowKernel started.
        at: Duration,
    },
    /// A task is being retried after a failure.
    Retry {
        /// The task.
        task: TaskId,
        /// The upcoming attempt number.
        attempt: u32,
        /// Rendered failure that triggered the retry.
        reason: String,
        /// Time since the DataFlowKernel started.
        at: Duration,
    },
    /// A speculative duplicate attempt was launched for a straggling task
    /// (the hedging plane, §3.6 follow-up). Distinct from
    /// [`MonitorEvent::Retry`]: nothing failed — the primary attempt is
    /// still running and whichever attempt finishes first wins.
    Hedge {
        /// The task.
        task: TaskId,
        /// The speculative attempt number.
        attempt: u32,
        /// Executor label the hedge was routed to.
        executor: Option<String>,
        /// Age of the primary attempt when the hedge launched.
        age: Duration,
        /// Time since the DataFlowKernel started.
        at: Duration,
    },
    /// An executor's connected worker count changed (sampled by the
    /// strategy loop).
    Workers {
        /// Executor label.
        executor: String,
        /// Workers connected now.
        connected: usize,
        /// Tasks submitted to the executor but not finished.
        outstanding: usize,
        /// Time since the DataFlowKernel started.
        at: Duration,
    },
}

impl MonitorEvent {
    /// Time offset of the event.
    pub fn at(&self) -> Duration {
        match self {
            MonitorEvent::Task { at, .. }
            | MonitorEvent::Retry { at, .. }
            | MonitorEvent::Hedge { at, .. }
            | MonitorEvent::Workers { at, .. } => *at,
        }
    }
}

/// Receives the event stream. Implementations must be cheap and
/// non-blocking — events are emitted from the DFK's hot paths.
pub trait MonitorSink: Send + Sync {
    /// Handle one event.
    fn on_event(&self, event: &MonitorEvent);

    /// Handle a batch of events produced by one completion-plane pass.
    ///
    /// The DFK's batched collector emits everything a drained batch of
    /// outcomes produced (terminal transitions, retries) through a single
    /// call, so a sink can take its lock or perform its write once per
    /// batch instead of once per task. The default forwards event by
    /// event, which keeps per-event sinks correct unchanged.
    fn on_batch(&self, events: &[MonitorEvent]) {
        for event in events {
            self.on_event(event);
        }
    }
}

/// A sink that discards everything (monitoring disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl MonitorSink for NullSink {
    fn on_event(&self, _event: &MonitorEvent) {}

    fn on_batch(&self, _events: &[MonitorEvent]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_time_accessor() {
        let e = MonitorEvent::Task {
            task: TaskId(1),
            app: "a".into(),
            state: TaskState::Done,
            executor: None,
            attempt: 0,
            tenant: TenantId::DEFAULT,
            items: 1,
            at: Duration::from_millis(5),
        };
        assert_eq!(e.at(), Duration::from_millis(5));
        let w = MonitorEvent::Workers {
            executor: "htex".into(),
            connected: 3,
            outstanding: 9,
            at: Duration::from_secs(1),
        };
        assert_eq!(w.at(), Duration::from_secs(1));
    }

    #[test]
    fn null_sink_accepts_events() {
        let sink = NullSink;
        sink.on_event(&MonitorEvent::Retry {
            task: TaskId(2),
            attempt: 1,
            reason: "x".into(),
            at: Duration::ZERO,
        });
    }

    #[test]
    fn default_on_batch_forwards_per_event() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counting(AtomicUsize);
        impl MonitorSink for Counting {
            fn on_event(&self, _e: &MonitorEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = Counting::default();
        let events: Vec<MonitorEvent> = (0..3)
            .map(|i| MonitorEvent::Task {
                task: TaskId(i),
                app: "a".into(),
                state: TaskState::Done,
                executor: None,
                attempt: 0,
                tenant: TenantId::DEFAULT,
                items: 1,
                at: Duration::ZERO,
            })
            .collect();
        sink.on_batch(&events);
        assert_eq!(sink.0.load(Ordering::Relaxed), 3);
    }
}
