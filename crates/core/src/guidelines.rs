//! Executor selection guidelines (Figure 7).
//!
//! The paper closes with concrete guidance:
//!
//! > LLEX for interactive computations on ≤10 nodes.
//! > HTEX for batch computations on ≤1000 nodes. (For good performance,
//! > task-duration / # nodes ≥ 0.01: e.g., on 10 nodes, tasks ≥ 0.1 s.)
//! > EXEX for batch computations on >1000 nodes. (For good performance,
//! > task durations ≥ 1 min.)
//!
//! [`recommend`] encodes those rules; the `fig7_guidelines` bench sweeps
//! node counts and durations to validate that the recommended executor is
//! indeed the best performer at each point of the DES models.

use std::time::Duration;

/// The executor families the guidelines choose between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutorChoice {
    /// Low Latency Executor.
    Llex,
    /// High Throughput Executor.
    Htex,
    /// Extreme Scale Executor.
    Exex,
}

impl std::fmt::Display for ExecutorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecutorChoice::Llex => "LLEX",
            ExecutorChoice::Htex => "HTEX",
            ExecutorChoice::Exex => "EXEX",
        };
        f.write_str(s)
    }
}

/// Figure 7's decision rule.
///
/// `interactive` selects the latency-sensitive column (Jupyter-style use);
/// batch workloads pick by node count.
pub fn recommend(nodes: usize, interactive: bool) -> ExecutorChoice {
    if interactive && nodes <= 10 {
        ExecutorChoice::Llex
    } else if nodes <= 1000 {
        ExecutorChoice::Htex
    } else {
        ExecutorChoice::Exex
    }
}

/// HTEX performance caveat: task-duration / nodes ≥ 0.01 (seconds/node).
pub fn htex_duration_adequate(nodes: usize, task_duration: Duration) -> bool {
    if nodes == 0 {
        return true;
    }
    task_duration.as_secs_f64() / nodes as f64 >= 0.01
}

/// EXEX performance caveat: task durations ≥ 1 minute.
pub fn exex_duration_adequate(task_duration: Duration) -> bool {
    task_duration >= Duration::from_secs(60)
}

/// The minimum task duration at which the chosen executor performs well.
pub fn min_recommended_duration(choice: ExecutorChoice, nodes: usize) -> Duration {
    match choice {
        ExecutorChoice::Llex => Duration::ZERO,
        ExecutorChoice::Htex => Duration::from_secs_f64(0.01 * nodes as f64),
        ExecutorChoice::Exex => Duration::from_secs(60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactive_small_scale_gets_llex() {
        assert_eq!(recommend(1, true), ExecutorChoice::Llex);
        assert_eq!(recommend(10, true), ExecutorChoice::Llex);
        // Interactive but large: falls through to batch rules.
        assert_eq!(recommend(100, true), ExecutorChoice::Htex);
    }

    #[test]
    fn batch_scale_thresholds() {
        assert_eq!(recommend(1, false), ExecutorChoice::Htex);
        assert_eq!(recommend(1000, false), ExecutorChoice::Htex);
        assert_eq!(recommend(1001, false), ExecutorChoice::Exex);
        assert_eq!(recommend(8192, false), ExecutorChoice::Exex);
    }

    #[test]
    fn htex_caveat_from_paper_example() {
        // "on 10 nodes, tasks ≥ 0.1 s"
        assert!(htex_duration_adequate(10, Duration::from_millis(100)));
        assert!(!htex_duration_adequate(10, Duration::from_millis(99)));
    }

    #[test]
    fn exex_caveat() {
        assert!(exex_duration_adequate(Duration::from_secs(60)));
        assert!(!exex_duration_adequate(Duration::from_secs(59)));
    }

    #[test]
    fn min_durations_align_with_caveats() {
        assert_eq!(
            min_recommended_duration(ExecutorChoice::Htex, 10),
            Duration::from_millis(100)
        );
        assert_eq!(
            min_recommended_duration(ExecutorChoice::Exex, 5000),
            Duration::from_secs(60)
        );
    }
}
