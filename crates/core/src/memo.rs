//! Memoization and checkpointing (§3.7, §4.1, §4.6).
//!
//! Parsl computes "a hash of the App's function body and performs a lookup
//! in a checkpoint file or memoization table using the function name, body
//! hash, and arguments as the key". The reproduction keys on the app's
//! identity hash (name + signature, see [`crate::registry::RegisteredApp`])
//! plus the wire-encoded argument bytes.
//!
//! Checkpointing is write-through: when a checkpoint file is configured,
//! every successful result is appended as it completes ("checkpointing of
//! execution state whenever a task completes"), so a crashed program
//! re-executed with `load_checkpoint` skips all finished work.
//!
//! Checkpoint file format: a stream of `wire` frames, each
//! `[8-byte LE key][result bytes]`.

use crate::error::ParslError;
use crate::registry::RegisteredApp;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Compute the memoization key for an app invocation.
pub fn memo_key(app: &RegisteredApp, args: &[u8]) -> u64 {
    let mut h = wire::Fnv1aHasher::new();
    h.update(&app.body_hash.to_le_bytes());
    h.update(app.name.as_bytes());
    h.update(b"\0");
    h.update(args);
    h.digest()
}

/// Number of lock shards in the memo table — a power of two, masked by
/// the low bits of the (already well-mixed FNV-1a) memo key. Matches the
/// task-table design in `dfk.rs`: the lookup/record pair sits on the
/// submit hot path, and one global mutex would serialize every batch.
pub const MEMO_SHARDS: usize = 16;

/// The memoization table with optional write-through checkpointing. The
/// table is split into [`MEMO_SHARDS`] lock shards keyed by memo key, so
/// concurrent lookups from the batch dispatcher and records from the
/// collector only contend when they hash to the same shard.
pub struct Memoizer {
    default_enabled: bool,
    shards: Vec<Mutex<HashMap<u64, Bytes>>>,
    writer: Mutex<Option<wire::FrameWriter<BufWriter<File>>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl Memoizer {
    /// Create; `default_enabled` is the DFK-wide memoization default,
    /// overridable per app.
    pub fn new(default_enabled: bool) -> Self {
        Memoizer {
            default_enabled,
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            writer: Mutex::new(None),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The shard holding `key`'s entry.
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Bytes>> {
        &self.shards[(key as usize) & (MEMO_SHARDS - 1)]
    }

    /// Should this app's results be cached?
    pub fn enabled_for(&self, app: &RegisteredApp) -> bool {
        app.options.memoize.unwrap_or(self.default_enabled)
    }

    /// Seed the table from a checkpoint file written by a previous run.
    /// Returns the number of entries loaded.
    pub fn load_checkpoint(&self, path: &Path) -> Result<usize, ParslError> {
        let file = File::open(path).map_err(ParslError::Checkpoint)?;
        let mut reader = wire::FrameReader::new(BufReader::new(file));
        let mut loaded = 0;
        while let Some(frame) = reader
            .read()
            .map_err(|e| ParslError::Config(format!("corrupt checkpoint {path:?}: {e}")))?
        {
            if frame.len() < 8 {
                return Err(ParslError::Config(format!(
                    "corrupt checkpoint {path:?}: frame shorter than key"
                )));
            }
            let key = u64::from_le_bytes(frame[..8].try_into().expect("8 bytes"));
            self.shard(key)
                .lock()
                .insert(key, Bytes::copy_from_slice(&frame[8..]));
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Open `path` for write-through checkpointing (appending).
    pub fn set_checkpoint_file(&self, path: &Path) -> Result<(), ParslError> {
        let file = File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(ParslError::Checkpoint)?;
        *self.writer.lock() = Some(wire::FrameWriter::new(BufWriter::new(file)));
        Ok(())
    }

    /// Look up a previous result. Locks only the key's shard.
    pub fn lookup(&self, key: u64) -> Option<Bytes> {
        let found = self.shard(key).lock().get(&key).cloned();
        use std::sync::atomic::Ordering;
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Record a successful result (and append it to the checkpoint file if
    /// one is configured).
    pub fn record(&self, key: u64, result: &Bytes) {
        self.shard(key).lock().insert(key, result.clone());
        if let Some(w) = self.writer.lock().as_mut() {
            let mut frame = Vec::with_capacity(8 + result.len());
            frame.extend_from_slice(&key.to_le_bytes());
            frame.extend_from_slice(result);
            // Checkpoint write failures must not fail the task; they are
            // reported on flush()/checkpoint() instead.
            let _ = w.write(&frame);
        }
    }

    /// Record one completion batch's worth of successful results.
    ///
    /// Table inserts still go to each key's own shard, but the checkpoint
    /// append amortizes: the writer lock is taken once for the whole batch
    /// and every frame lands in the same buffered write stream, instead of
    /// a lock/append round-trip per task (§3.7's "checkpointing ...
    /// whenever a task completes", paid once per completion *batch*). The
    /// file contents are byte-identical to per-task appends modulo frame
    /// order, so checkpoints stay interchangeable between both collection
    /// modes.
    pub fn record_batch(&self, entries: &[(u64, Bytes)]) {
        for (key, result) in entries {
            self.shard(*key).lock().insert(*key, result.clone());
        }
        let mut writer = self.writer.lock();
        if let Some(w) = writer.as_mut() {
            let mut frame = Vec::new();
            for (key, result) in entries {
                frame.clear();
                frame.reserve(8 + result.len());
                frame.extend_from_slice(&key.to_le_bytes());
                frame.extend_from_slice(result);
                // As in record(): failures surface on flush(), not here.
                let _ = w.write(&frame);
            }
        }
    }

    /// Flush the checkpoint file. Returns the current table size.
    pub fn flush(&self) -> Result<usize, ParslError> {
        if let Some(w) = self.writer.lock().as_mut() {
            w.flush()
                .map_err(|e| ParslError::Config(format!("checkpoint flush: {e}")))?;
        }
        Ok(self.len())
    }

    /// Entries currently cached (sums the shards; not a snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{AppOptions, AppRegistry};
    use crate::types::AppKind;
    use std::sync::Arc;

    fn app(reg: &AppRegistry, name: &str) -> Arc<RegisteredApp> {
        reg.register(
            name,
            AppKind::Native,
            "(u32)->u32",
            Arc::new(|_| Ok(vec![])),
            AppOptions::default(),
        )
    }

    #[test]
    fn keys_differ_by_app_and_args() {
        let reg = AppRegistry::new();
        let a = app(&reg, "a");
        let b = app(&reg, "b");
        assert_ne!(memo_key(&a, b"xyz"), memo_key(&b, b"xyz"));
        assert_ne!(memo_key(&a, b"xyz"), memo_key(&a, b"xyw"));
        assert_eq!(memo_key(&a, b"xyz"), memo_key(&a, b"xyz"));
    }

    #[test]
    fn lookup_and_record() {
        let m = Memoizer::new(true);
        assert!(m.lookup(1).is_none());
        m.record(1, &Bytes::from_static(b"result"));
        assert_eq!(m.lookup(1).unwrap().as_ref(), b"result");
        assert_eq!(m.stats(), (1, 1));
    }

    #[test]
    fn per_app_override_beats_default() {
        let reg = AppRegistry::new();
        let on = reg.register(
            "on",
            AppKind::Native,
            "()",
            Arc::new(|_| Ok(vec![])),
            AppOptions {
                memoize: Some(true),
                ..Default::default()
            },
        );
        let off = reg.register(
            "off",
            AppKind::Native,
            "()",
            Arc::new(|_| Ok(vec![])),
            AppOptions {
                memoize: Some(false),
                ..Default::default()
            },
        );
        let default_on = Memoizer::new(true);
        let default_off = Memoizer::new(false);
        assert!(default_off.enabled_for(&on));
        assert!(!default_on.enabled_for(&off));
        assert!(default_on.enabled_for(&app(&reg, "plain")));
        assert!(!default_off.enabled_for(&app(&reg, "plain2")));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = std::env::temp_dir().join(format!("parsl-memo-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.dat");
        let _ = std::fs::remove_file(&path);

        let m = Memoizer::new(true);
        m.set_checkpoint_file(&path).unwrap();
        m.record(7, &Bytes::from_static(b"seven"));
        m.record(8, &Bytes::from_static(b"eight"));
        m.flush().unwrap();

        let m2 = Memoizer::new(true);
        assert_eq!(m2.load_checkpoint(&path).unwrap(), 2);
        assert_eq!(m2.lookup(7).unwrap().as_ref(), b"seven");
        assert_eq!(m2.lookup(8).unwrap().as_ref(), b"eight");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_appends_across_sessions() {
        let dir = std::env::temp_dir().join(format!("parsl-memo-app-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt2.dat");
        let _ = std::fs::remove_file(&path);

        {
            let m = Memoizer::new(true);
            m.set_checkpoint_file(&path).unwrap();
            m.record(1, &Bytes::from_static(b"one"));
            m.flush().unwrap();
        }
        {
            let m = Memoizer::new(true);
            m.set_checkpoint_file(&path).unwrap();
            m.record(2, &Bytes::from_static(b"two"));
            m.flush().unwrap();
        }
        let m = Memoizer::new(true);
        assert_eq!(m.load_checkpoint(&path).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_table_holds_entries_across_all_shards() {
        let m = Memoizer::new(true);
        // Consecutive keys cover every shard (the mask is the low bits).
        let n = (MEMO_SHARDS * 4) as u64;
        for key in 0..n {
            m.record(key, &Bytes::from(key.to_le_bytes().to_vec()));
        }
        assert_eq!(m.len(), n as usize);
        for key in 0..n {
            assert_eq!(m.lookup(key).unwrap().as_ref(), key.to_le_bytes());
        }
        assert!(!m.is_empty());
    }

    #[test]
    fn concurrent_record_and_lookup_stay_coherent() {
        let m = Arc::new(Memoizer::new(true));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        let key = t * 1000 + i;
                        m.record(key, &Bytes::from(key.to_le_bytes().to_vec()));
                        assert_eq!(m.lookup(key).unwrap().as_ref(), key.to_le_bytes());
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(m.len(), 4 * 256);
    }

    #[test]
    fn record_batch_matches_per_task_checkpoints() {
        let dir = std::env::temp_dir().join(format!("parsl-memo-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let batch_path = dir.join("batch.dat");
        let single_path = dir.join("single.dat");
        let _ = std::fs::remove_file(&batch_path);
        let _ = std::fs::remove_file(&single_path);

        let entries: Vec<(u64, Bytes)> = (0..40u64)
            .map(|k| (k, Bytes::from(format!("result-{k}").into_bytes())))
            .collect();

        let batched = Memoizer::new(true);
        batched.set_checkpoint_file(&batch_path).unwrap();
        batched.record_batch(&entries);
        batched.flush().unwrap();
        assert_eq!(batched.len(), entries.len());

        let single = Memoizer::new(true);
        single.set_checkpoint_file(&single_path).unwrap();
        for (k, v) in &entries {
            single.record(*k, v);
        }
        single.flush().unwrap();

        // Same frames on disk (order preserved here, so bytes match too).
        assert_eq!(
            std::fs::read(&batch_path).unwrap(),
            std::fs::read(&single_path).unwrap()
        );

        // And the batch-written file loads like any checkpoint.
        let reloaded = Memoizer::new(true);
        assert_eq!(
            reloaded.load_checkpoint(&batch_path).unwrap(),
            entries.len()
        );
        for (k, v) in &entries {
            assert_eq!(&reloaded.lookup(*k).unwrap(), v);
        }
        std::fs::remove_file(&batch_path).unwrap();
        std::fs::remove_file(&single_path).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_reported() {
        let dir = std::env::temp_dir().join(format!("parsl-memo-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.dat");
        std::fs::write(&path, [5, 0, 0, 0, 1, 2]).unwrap(); // truncated frame
        let m = Memoizer::new(true);
        assert!(m.load_checkpoint(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
