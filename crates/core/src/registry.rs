//! The app registry: the function-shipping substitute.
//!
//! Parsl pickles a task's function and arguments and ships both to the
//! worker. Rust closures cannot be serialized, so the reproduction ships
//! `(app_id, argument bytes)` and gives every worker a shared
//! [`AppRegistry`] in which `app_id` resolves to the type-erased function.
//! This matches Parsl's fast path (serializing functions *by reference*)
//! and keeps the fidelity that matters to the executors: every argument and
//! result crosses the "network" as bytes.

use crate::error::AppError;
use crate::types::AppKind;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier assigned at registration; stable for the registry's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u64);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app-{}", self.0)
    }
}

/// The type-erased callable: wire-encoded argument tuple in, wire-encoded
/// result out. Panics in the body are caught by the wrapper and surfaced as
/// [`AppError::Panic`].
pub type ErasedAppFn = Arc<dyn Fn(&[u8]) -> Result<Vec<u8>, AppError> + Send + Sync>;

/// Per-app behaviour options (the decorator arguments in Parsl).
#[derive(Debug, Clone, Default)]
pub struct AppOptions {
    /// Cache results keyed by (app identity, arguments); overrides the
    /// DFK-wide default when set. Parsl: `@python_app(cache=True)`.
    pub memoize: Option<bool>,
    /// Per-app retry count override.
    pub retries: Option<u32>,
    /// Pin execution to the executor with this label (execution hint,
    /// §4.1: without a hint an executor is picked at random).
    pub executor: Option<String>,
    /// Per-task walltime limit.
    pub walltime: Option<Duration>,
}

/// A registered app: identity, identity hash, and the erased callable.
pub struct RegisteredApp {
    /// Registry id, shipped with every task.
    pub id: AppId,
    /// Human-readable name (used in memo keys, logs, and monitoring).
    /// Shared as `Arc<str>` so the monitoring plane can stamp events with
    /// the name without copying a `String` per task.
    pub name: Arc<str>,
    /// Hash standing in for Parsl's function-body hash in memoization keys.
    /// Computed from the app name plus the concrete argument/result type
    /// names, since Rust cannot hash a closure's body. Documented contract:
    /// re-registering a *different* body under the same name and signature
    /// will hit the same memo entries.
    pub body_hash: u64,
    /// Native, bash, or staging.
    pub kind: AppKind,
    /// Type signature recorded at registration. Advertised to remote
    /// worker processes, which bind their local body for the same name
    /// under the shipped id (function-by-reference, as in Parsl).
    pub signature: Arc<str>,
    /// The callable.
    pub func: ErasedAppFn,
    /// Decorator options.
    pub options: AppOptions,
}

impl fmt::Debug for RegisteredApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisteredApp")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("body_hash", &format_args!("{:#018x}", self.body_hash))
            .finish()
    }
}

/// Shared table of registered apps. Executors hold a reference and resolve
/// `app_id`s on their workers.
#[derive(Default)]
pub struct AppRegistry {
    apps: RwLock<HashMap<AppId, Arc<RegisteredApp>>>,
    next: AtomicU64,
}

impl AppRegistry {
    /// Empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register an erased app and return its handle.
    pub fn register(
        &self,
        name: &str,
        kind: AppKind,
        signature: &str,
        func: ErasedAppFn,
        options: AppOptions,
    ) -> Arc<RegisteredApp> {
        let id = AppId(self.next.fetch_add(1, Ordering::Relaxed));
        self.insert_at(id, name, kind, signature, func, options)
    }

    /// Register an app under a caller-supplied id — the remote-worker
    /// path. The interchange advertises `(id, name, signature)` to worker
    /// processes, which bind their local body for `name` under the shipped
    /// id so arriving tasks resolve. The id counter is reconciled so later
    /// local registrations never collide with remote-assigned ids.
    pub fn register_remote(
        &self,
        id: AppId,
        name: &str,
        kind: AppKind,
        signature: &str,
        func: ErasedAppFn,
        options: AppOptions,
    ) -> Arc<RegisteredApp> {
        self.next.fetch_max(id.0 + 1, Ordering::Relaxed);
        self.insert_at(id, name, kind, signature, func, options)
    }

    fn insert_at(
        &self,
        id: AppId,
        name: &str,
        kind: AppKind,
        signature: &str,
        func: ErasedAppFn,
        options: AppOptions,
    ) -> Arc<RegisteredApp> {
        let mut hasher = wire::Fnv1aHasher::new();
        hasher.update(name.as_bytes());
        hasher.update(b"\0");
        hasher.update(signature.as_bytes());
        let app = Arc::new(RegisteredApp {
            id,
            name: name.into(),
            body_hash: hasher.digest(),
            kind,
            signature: signature.into(),
            func,
            options,
        });
        self.apps.write().insert(id, Arc::clone(&app));
        app
    }

    /// Resolve an app id (worker-side lookup).
    pub fn get(&self, id: AppId) -> Option<Arc<RegisteredApp>> {
        self.apps.read().get(&id).cloned()
    }

    /// Number of registered apps.
    pub fn len(&self) -> usize {
        self.apps.read().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.apps.read().is_empty()
    }
}

impl fmt::Debug for AppRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AppRegistry({} apps)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_fn() -> ErasedAppFn {
        Arc::new(|_args| Ok(Vec::new()))
    }

    #[test]
    fn register_and_resolve() {
        let reg = AppRegistry::new();
        let app = reg.register(
            "hello",
            AppKind::Native,
            "(String)->String",
            noop_fn(),
            AppOptions::default(),
        );
        assert_eq!(reg.len(), 1);
        let got = reg.get(app.id).expect("registered");
        assert_eq!(&*got.name, "hello");
        assert_eq!(got.body_hash, app.body_hash);
    }

    #[test]
    fn ids_are_unique() {
        let reg = AppRegistry::new();
        let a = reg.register("a", AppKind::Native, "()", noop_fn(), AppOptions::default());
        let b = reg.register("b", AppKind::Native, "()", noop_fn(), AppOptions::default());
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn body_hash_depends_on_name_and_signature() {
        let reg = AppRegistry::new();
        let a = reg.register(
            "f",
            AppKind::Native,
            "(u32)->u32",
            noop_fn(),
            AppOptions::default(),
        );
        let b = reg.register(
            "f",
            AppKind::Native,
            "(u64)->u64",
            noop_fn(),
            AppOptions::default(),
        );
        let c = reg.register(
            "g",
            AppKind::Native,
            "(u32)->u32",
            noop_fn(),
            AppOptions::default(),
        );
        assert_ne!(a.body_hash, b.body_hash);
        assert_ne!(a.body_hash, c.body_hash);
        // Same name and signature => same hash (memoization contract).
        let a2 = reg.register(
            "f",
            AppKind::Native,
            "(u32)->u32",
            noop_fn(),
            AppOptions::default(),
        );
        assert_eq!(a.body_hash, a2.body_hash);
    }

    #[test]
    fn unknown_id_is_none() {
        let reg = AppRegistry::new();
        assert!(reg.get(AppId(42)).is_none());
    }

    #[test]
    fn register_remote_binds_shipped_id_and_reconciles_counter() {
        let reg = AppRegistry::new();
        let remote = reg.register_remote(
            AppId(7),
            "noop",
            AppKind::Native,
            "(u64)->u64",
            noop_fn(),
            AppOptions::default(),
        );
        assert_eq!(remote.id, AppId(7));
        assert_eq!(&*remote.signature, "(u64)->u64");
        assert!(reg.get(AppId(7)).is_some());
        // Later local registrations skip past the remote-assigned id.
        let local = reg.register("x", AppKind::Native, "()", noop_fn(), AppOptions::default());
        assert!(local.id.0 > 7);
    }
}
