//! Edge cases of the fused `app.map` plane: degenerate iterators, chunk
//! geometry, and per-item failure attribution with split-retry.

use parsl_core::fusion::MapOptions;
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn dfk() -> Arc<DataFlowKernel> {
    DataFlowKernel::builder()
        .executor(ImmediateExecutor::new())
        .build()
        .unwrap()
}

fn with_chunk(chunk: usize) -> MapOptions {
    MapOptions {
        chunk_size: Some(chunk),
        ..MapOptions::default()
    }
}

#[test]
fn empty_iterator_resolves_immediately() {
    let dfk = dfk();
    let id = dfk.python_app("id", |x: u64| x);
    let handle = id.map(std::iter::empty::<u64>());
    assert!(handle.is_empty());
    assert_eq!(handle.len(), 0);
    assert_eq!(handle.chunk_count(), 0);
    assert!(handle.done());
    assert!(handle.results().is_empty());
    // No fused task was ever submitted.
    assert_eq!(dfk.task_count(), 0);
    dfk.shutdown();
}

#[test]
fn chunk_size_one_degenerates_to_per_item_tasks() {
    let dfk = dfk();
    let sq = dfk.python_app("sq", |x: u64| x * x);
    let handle = sq.map_with(0..10u64, with_chunk(1));
    assert_eq!(handle.chunk_count(), 10);
    let out: Vec<u64> = handle.results().into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(out, (0..10u64).map(|x| x * x).collect::<Vec<_>>());
    assert_eq!(dfk.task_count(), 10);
    dfk.shutdown();
}

#[test]
fn item_count_not_divisible_by_chunk_size() {
    let dfk = dfk();
    let inc = dfk.python_app("inc", |x: i64| x + 1);
    // 10 items at chunk 4 → 4 + 4 + 2.
    let handle = inc.map_with(0..10i64, with_chunk(4));
    assert_eq!(handle.chunk_count(), 3);
    let out: Vec<i64> = handle.results().into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(out, (1..=10i64).collect::<Vec<_>>());
    assert_eq!(dfk.task_count(), 3);
    dfk.shutdown();
}

#[test]
fn oversized_chunk_covers_everything_in_one_task() {
    let dfk = dfk();
    let neg = dfk.python_app("neg", |x: i64| -x);
    let handle = neg.map_with(0..5i64, with_chunk(10_000));
    assert_eq!(handle.chunk_count(), 1);
    let out: Vec<i64> = handle.results().into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(out, vec![0, -1, -2, -3, -4]);
    assert_eq!(dfk.task_count(), 1);
    dfk.shutdown();
}

#[test]
fn mid_chunk_panic_fails_exactly_one_item_and_retries_only_the_remainder() {
    static CALLS: AtomicUsize = AtomicUsize::new(0);
    CALLS.store(0, Ordering::SeqCst);
    let dfk = dfk();
    let picky = dfk.python_app("picky", |x: u64| {
        CALLS.fetch_add(1, Ordering::SeqCst);
        if x == 7 {
            panic!("item 7 is cursed");
        }
        x * 10
    });
    let handle = picky.map_with(0..20u64, with_chunk(20));
    let results = handle.results();
    assert_eq!(results.len(), 20);
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            match r {
                Err(ParslError::Task(TaskError::App(AppError::Panic(m)))) => {
                    assert!(m.contains("cursed"), "panic message lost: {m}");
                }
                other => panic!("item 7 should carry its panic, got {other:?}"),
            }
        } else {
            assert_eq!(
                *r.as_ref().unwrap(),
                i as u64 * 10,
                "chunk-mate {i} must be unaffected"
            );
        }
    }
    // Items 0..=7 ran in the original chunk, 8..=19 in the split-retry
    // remainder: 20 invocations total. Anything more means completed
    // items were re-executed; anything less means items were dropped.
    assert_eq!(CALLS.load(Ordering::SeqCst), 20);
    // One fused chunk plus one remainder chunk.
    dfk.wait_for_all();
    assert_eq!(dfk.task_count(), 2);
    dfk.shutdown();
}

#[test]
fn every_item_failing_still_attributes_individually() {
    let dfk = dfk();
    let doomed = dfk.python_app_fallible("doomed", |x: u64| -> Result<u64, AppError> {
        Err(AppError::msg(format!("no {x}")))
    });
    let handle = doomed.map_with(0..6u64, with_chunk(6));
    let results = handle.results();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Err(ParslError::Task(TaskError::App(AppError::Failure(m)))) => {
                assert_eq!(m, format!("no {i}"));
            }
            other => panic!("expected per-item failure, got {other:?}"),
        }
    }
    // Each failure strands a remainder that resubmits: 6 fused tasks.
    dfk.wait_for_all();
    assert_eq!(dfk.task_count(), 6);
    dfk.shutdown();
}

/// Sums `items` over terminal Done task events — the fused twin of
/// counting finished tasks.
#[derive(Default)]
struct LogicalDone {
    items: AtomicUsize,
    events: AtomicUsize,
}

impl MonitorSink for LogicalDone {
    fn on_event(&self, event: &MonitorEvent) {
        if let MonitorEvent::Task { state, items, .. } = event {
            if *state == TaskState::Done {
                self.items.fetch_add(*items as usize, Ordering::Relaxed);
                self.events.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[test]
fn fused_monitor_events_expand_to_logical_item_counts() {
    let sink = Arc::new(LogicalDone::default());
    let dfk = DataFlowKernel::builder()
        .executor(ImmediateExecutor::new())
        .monitor(Arc::clone(&sink) as Arc<dyn MonitorSink>)
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);
    let handle = id.map_with(0..100u64, with_chunk(8));
    assert!(handle.results().iter().all(|r| r.is_ok()));
    dfk.wait_for_all();
    // 13 fused Done events, expanding to 100 logical completions.
    assert_eq!(sink.events.load(Ordering::Relaxed), 13);
    assert_eq!(sink.items.load(Ordering::Relaxed), 100);
    dfk.shutdown();
}
