//! Property tests on the elasticity strategies: block bounds are never
//! violated, target tracking converges in one step, and the predictive
//! controller's hysteresis band always contains its own fixed point.

use parsl_core::executor::BlockScaling;
use parsl_core::strategy::{
    LoadSignal, PredictiveConfig, PredictiveStrategy, ScalingDecision, SimpleStrategy, Strategy,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

struct FakePool {
    blocks: AtomicUsize,
    draining: AtomicUsize,
    wpb: usize,
    min: usize,
    max: usize,
}

impl FakePool {
    fn new(blocks: usize, wpb: usize, min: usize, max: usize) -> Self {
        FakePool {
            blocks: AtomicUsize::new(blocks),
            draining: AtomicUsize::new(0),
            wpb,
            min,
            max,
        }
    }
}

impl BlockScaling for FakePool {
    fn block_count(&self) -> usize {
        self.blocks.load(Ordering::SeqCst)
    }
    fn workers_per_block(&self) -> usize {
        self.wpb
    }
    fn scale_out(&self, n: usize) -> usize {
        self.blocks.fetch_add(n, Ordering::SeqCst);
        n
    }
    fn scale_in(&self, n: usize) -> usize {
        self.blocks.fetch_sub(n, Ordering::SeqCst);
        n
    }
    fn drain(&self, n: usize) -> usize {
        self.draining.fetch_add(n, Ordering::SeqCst);
        self.blocks.fetch_sub(n, Ordering::SeqCst);
        n
    }
    fn draining_blocks(&self) -> usize {
        self.draining.load(Ordering::SeqCst)
    }
    fn min_blocks(&self) -> usize {
        self.min
    }
    fn max_blocks(&self) -> usize {
        self.max
    }
}

fn apply(decision: ScalingDecision, pool: &FakePool) {
    match decision {
        ScalingDecision::Hold => {}
        ScalingDecision::Out { blocks } => {
            pool.scale_out(blocks);
        }
        ScalingDecision::In { blocks } => {
            pool.scale_in(blocks);
        }
        ScalingDecision::Drain { blocks } => {
            pool.drain(blocks);
        }
    }
}

proptest! {
    /// After one evaluation, the pool is inside [min, max] and exactly at
    /// the clamped target; a second evaluation under the same load holds.
    #[test]
    fn one_step_convergence(
        outstanding in 0usize..10_000,
        start in 0usize..64,
        wpb in 1usize..64,
        min in 0usize..8,
        extra in 0usize..32,
        parallelism in 0.05f64..2.0,
    ) {
        let max = min + extra;
        let pool = FakePool::new(start.clamp(min, max), wpb, min, max);
        let strategy = SimpleStrategy::new(parallelism);
        let signal = LoadSignal::outstanding(outstanding);
        apply(strategy.decide(&signal, &pool), &pool);
        let after = pool.block_count();
        prop_assert!(after >= min && after <= max, "bounds violated: {after}");
        prop_assert_eq!(after, strategy.target_blocks(outstanding, &pool));
        // Fixed point: same load, no further movement.
        prop_assert_eq!(strategy.decide(&signal, &pool), ScalingDecision::Hold);
    }

    /// Monotonicity: more outstanding work never yields fewer target
    /// blocks.
    #[test]
    fn target_is_monotone_in_load(
        a in 0usize..5_000,
        b in 0usize..5_000,
        wpb in 1usize..64,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pool = FakePool::new(0, wpb, 0, usize::MAX);
        let strategy = SimpleStrategy::new(1.0);
        prop_assert!(
            strategy.target_blocks(lo, &pool) <= strategy.target_blocks(hi, &pool)
        );
    }

    /// Capacity sufficiency: the target always provides at least
    /// outstanding × parallelism worker slots (up to the max-blocks cap).
    #[test]
    fn target_capacity_is_sufficient(
        outstanding in 1usize..5_000,
        wpb in 1usize..64,
        max in 1usize..64,
    ) {
        let pool = FakePool::new(0, wpb, 0, max);
        let strategy = SimpleStrategy::new(1.0);
        let target = strategy.target_blocks(outstanding, &pool);
        if target < max {
            prop_assert!(target * wpb >= outstanding.min(target * wpb));
            prop_assert!(target * wpb >= outstanding || target == max,
                "under-provisioned without hitting the cap");
        }
    }

    /// Predictive convergence: one step lands inside [min, max]; once the
    /// pool sits between the controller's floor and band ceiling the next
    /// evaluation under the same load holds (no flapping).
    #[test]
    fn predictive_one_step_settles(
        outstanding in 0usize..5_000,
        parked in 0usize..500,
        start in 0usize..64,
        wpb in 1usize..64,
        min in 0usize..8,
        extra in 0usize..32,
        rate in 0.0f64..200.0,
        service_ms in 1u64..5_000,
        utilization in 0.1f64..1.0,
        hysteresis in 0.0f64..1.0,
    ) {
        let max = min + extra;
        let pool = FakePool::new(start.clamp(min, max), wpb, min, max);
        let strategy = PredictiveStrategy::new(PredictiveConfig {
            target_utilization: utilization,
            hysteresis,
            drain: true,
            ..Default::default()
        });
        let signal = LoadSignal {
            outstanding,
            parked,
            arrival_rate: rate,
            service_p50: Some(Duration::from_millis(service_ms)),
            service_p99: Some(Duration::from_millis(service_ms * 3)),
            ..Default::default()
        };
        apply(strategy.decide(&signal, &pool), &pool);
        let after = pool.block_count();
        prop_assert!(after >= min && after <= max, "bounds violated: {after}");
        prop_assert_eq!(strategy.decide(&signal, &pool), ScalingDecision::Hold,
            "not a fixed point at {after} blocks");
    }

    /// The predictive controller never cancels work: under drain mode,
    /// every reduction is a Drain, never an abrupt In.
    #[test]
    fn predictive_scale_in_is_always_drain(
        outstanding in 0usize..5_000,
        start in 0usize..64,
        wpb in 1usize..64,
        rate in 0.0f64..200.0,
    ) {
        let pool = FakePool::new(start, wpb, 0, 64);
        let strategy = PredictiveStrategy::new(PredictiveConfig::default());
        let signal = LoadSignal {
            outstanding,
            arrival_rate: rate,
            service_p50: Some(Duration::from_millis(250)),
            ..Default::default()
        };
        let abrupt = matches!(
            strategy.decide(&signal, &pool),
            ScalingDecision::In { .. }
        );
        prop_assert!(!abrupt, "predictive drain mode issued an abrupt In");
    }
}
