//! Property tests on the elasticity strategy: block bounds are never
//! violated and target tracking converges in one step.

use parsl_core::executor::BlockScaling;
use parsl_core::strategy::{ScalingDecision, SimpleStrategy, Strategy};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

struct FakePool {
    blocks: AtomicUsize,
    wpb: usize,
    min: usize,
    max: usize,
}

impl BlockScaling for FakePool {
    fn block_count(&self) -> usize {
        self.blocks.load(Ordering::SeqCst)
    }
    fn workers_per_block(&self) -> usize {
        self.wpb
    }
    fn scale_out(&self, n: usize) -> usize {
        self.blocks.fetch_add(n, Ordering::SeqCst);
        n
    }
    fn scale_in(&self, n: usize) -> usize {
        self.blocks.fetch_sub(n, Ordering::SeqCst);
        n
    }
    fn min_blocks(&self) -> usize {
        self.min
    }
    fn max_blocks(&self) -> usize {
        self.max
    }
}

fn apply(decision: ScalingDecision, pool: &FakePool) {
    match decision {
        ScalingDecision::Hold => {}
        ScalingDecision::Out { blocks } => {
            pool.scale_out(blocks);
        }
        ScalingDecision::In { blocks } => {
            pool.scale_in(blocks);
        }
    }
}

proptest! {
    /// After one evaluation, the pool is inside [min, max] and exactly at
    /// the clamped target; a second evaluation under the same load holds.
    #[test]
    fn one_step_convergence(
        outstanding in 0usize..10_000,
        start in 0usize..64,
        wpb in 1usize..64,
        min in 0usize..8,
        extra in 0usize..32,
        parallelism in 0.05f64..2.0,
    ) {
        let max = min + extra;
        let pool = FakePool {
            blocks: AtomicUsize::new(start.clamp(min, max)),
            wpb,
            min,
            max,
        };
        let strategy = SimpleStrategy::new(parallelism);
        apply(strategy.decide(outstanding, &pool), &pool);
        let after = pool.block_count();
        prop_assert!(after >= min && after <= max, "bounds violated: {after}");
        prop_assert_eq!(after, strategy.target_blocks(outstanding, &pool));
        // Fixed point: same load, no further movement.
        prop_assert_eq!(strategy.decide(outstanding, &pool), ScalingDecision::Hold);
    }

    /// Monotonicity: more outstanding work never yields fewer target
    /// blocks.
    #[test]
    fn target_is_monotone_in_load(
        a in 0usize..5_000,
        b in 0usize..5_000,
        wpb in 1usize..64,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pool = FakePool { blocks: AtomicUsize::new(0), wpb, min: 0, max: usize::MAX };
        let strategy = SimpleStrategy::new(1.0);
        prop_assert!(
            strategy.target_blocks(lo, &pool) <= strategy.target_blocks(hi, &pool)
        );
    }

    /// Capacity sufficiency: the target always provides at least
    /// outstanding × parallelism worker slots (up to the max-blocks cap).
    #[test]
    fn target_capacity_is_sufficient(
        outstanding in 1usize..5_000,
        wpb in 1usize..64,
        max in 1usize..64,
    ) {
        let pool = FakePool { blocks: AtomicUsize::new(0), wpb, min: 0, max };
        let strategy = SimpleStrategy::new(1.0);
        let target = strategy.target_blocks(outstanding, &pool);
        if target < max {
            prop_assert!(target * wpb >= outstanding.min(target * wpb));
            prop_assert!(target * wpb >= outstanding || target == max,
                "under-provisioned without hitting the cap");
        }
    }
}
