//! Property: data-aware placement is a strict *extension* of load
//! balancing. When a task declares no input bytes, the dispatcher leaves
//! `transfer_cost` at zero on every snapshot, and
//! [`SchedulerPolicy::DataAware`] must behave exactly like
//! [`SchedulerPolicy::LeastOutstanding`] — same choice at the policy level
//! for arbitrary snapshot vectors, and observationally identical runs at
//! the kernel level for random hint-free DAGs.

use bytes::Bytes;
use parking_lot::Mutex;
use parsl_core::error::TaskError;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use parsl_core::scheduler::{DataAware, ExecutorSnapshot, LeastOutstanding, Scheduler};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Policy level: for any snapshot vector with transfer_cost == 0 everywhere,
// DataAware.assign == LeastOutstanding.assign.
// ---------------------------------------------------------------------------

fn zero_cost_snapshots() -> impl Strategy<Value = Vec<ExecutorSnapshot>> {
    vec((0usize..64, 0usize..16, 0u64..1_000_000), 1..8).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (outstanding, capacity, resident))| ExecutorSnapshot {
                index: i,
                outstanding,
                capacity,
                tenant_outstanding: 0,
                // Residency without declared inputs must be irrelevant:
                // only transfer_cost may steer the data-aware score.
                resident_bytes: resident,
                transfer_cost: 0.0,
                draining: false,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn data_aware_equals_least_outstanding_without_input_bytes(
        snaps in zero_cost_snapshots(),
        seq in 0u64..10_000,
        alpha in 0.0f64..10.0,
    ) {
        let da = DataAware { alpha };
        prop_assert_eq!(
            da.assign(&snaps, seq),
            LeastOutstanding.assign(&snaps, seq),
            "alpha={} snaps={:?}", alpha, snaps
        );
    }
}

// ---------------------------------------------------------------------------
// Kernel level: random hint-free DAGs run under DataAware are
// observationally identical to LeastOutstanding runs — same values, same
// task count, zero bytes moved through the data plane. (Placement itself
// is compared only at the policy level above: batch formation depends on
// dispatcher timing, so even two runs of the *same* policy may batch —
// and therefore place — differently.)
// ---------------------------------------------------------------------------

struct InlineExec {
    label: String,
    ctx: Mutex<Option<ExecutorContext>>,
}

impl InlineExec {
    fn new(label: &str) -> Self {
        InlineExec {
            label: label.into(),
            ctx: Mutex::new(None),
        }
    }

    fn run(task: &TaskSpec) -> TaskOutcome {
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        TaskOutcome::new(task.id, task.attempt, result)
    }
}

impl Executor for InlineExec {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        ctx.completions
            .send(vec![Self::run(&task)])
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        let outcomes: Vec<TaskOutcome> = tasks.iter().map(Self::run).collect();
        ctx.completions
            .send(outcomes)
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn outstanding(&self) -> usize {
        0
    }

    fn connected_workers(&self) -> usize {
        1
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

/// Records (task id, executor label) at launch: the placement witness.
#[derive(Default)]
struct Placements(Mutex<Vec<(u64, String)>>);

impl MonitorSink for Placements {
    fn on_event(&self, e: &MonitorEvent) {
        if let MonitorEvent::Task {
            task,
            state: parsl_core::types::TaskState::Launched,
            executor: Some(label),
            ..
        } = e
        {
            self.0.lock().push((task.0, label.clone()));
        }
    }
}

/// A layered DAG: node (li, ni) depends on a subset of layer li−1.
#[derive(Debug, Clone)]
struct Dag {
    layers: Vec<Vec<Vec<usize>>>,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    let layer_sizes = vec(1usize..5, 2..4);
    layer_sizes.prop_flat_map(|sizes| {
        let mut layer_strats = Vec::new();
        for i in 0..sizes.len() {
            let n = sizes[i];
            let prev = if i == 0 { 0 } else { sizes[i - 1] };
            let node = if prev == 0 {
                Just(Vec::new()).boxed()
            } else {
                vec(0..prev, 0..=prev.min(3)).boxed()
            };
            layer_strats.push(vec(node, n..=n));
        }
        layer_strats.prop_map(|layers| Dag { layers })
    })
}

struct RunOutput {
    values: Vec<Vec<u64>>,
    task_count: usize,
    launched: usize,
    data_bytes_moved: u64,
}

fn run(dag: &Dag, policy: SchedulerPolicy) -> RunOutput {
    let placements = Arc::new(Placements::default());
    let dfk = DataFlowKernel::builder()
        .executor(InlineExec::new("e0"))
        .executor(InlineExec::new("e1"))
        .executor(InlineExec::new("e2"))
        .scheduler(policy)
        .seed(42)
        .monitor(Arc::clone(&placements) as Arc<dyn MonitorSink>)
        .build()
        .unwrap();
    let node = dfk.python_app("node", |base: u64, deps: Vec<u64>| {
        deps.into_iter().fold(base, u64::wrapping_add)
    });

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_futs = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let base = (li as u64 + 1) * 1000 + ni as u64;
            let dep_futs: Vec<AppFuture<u64>> =
                deps.iter().map(|&d| futures[li - 1][d].clone()).collect();
            let joined = parsl_core::combinators::join_all(&dfk, dep_futs);
            layer_futs.push(parsl_core::call!(node, base, joined));
        }
        futures.push(layer_futs);
    }

    let values: Vec<Vec<u64>> = futures
        .iter()
        .map(|layer| layer.iter().map(|f| f.result().unwrap()).collect())
        .collect();
    dfk.wait_for_all();
    let task_count = dfk.task_count();
    let data_bytes_moved = dfk.data_bytes_moved();
    dfk.shutdown();
    let launched = placements.0.lock().len();
    RunOutput {
        values,
        task_count,
        launched,
        data_bytes_moved,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hint-free DAGs: a `DataAware` run computes the same values as a
    /// `LeastOutstanding` run, launches the same number of tasks, and
    /// moves zero bytes through the data plane.
    #[test]
    fn data_aware_run_equals_least_outstanding_on_hint_free_dags(dag in dag_strategy()) {
        let da = run(&dag, SchedulerPolicy::data_aware());
        let jsq = run(&dag, SchedulerPolicy::LeastOutstanding);
        prop_assert_eq!(da.values, jsq.values);
        prop_assert_eq!(da.task_count, jsq.task_count);
        prop_assert_eq!(da.launched, jsq.launched);
        prop_assert_eq!(da.data_bytes_moved, 0);
        prop_assert_eq!(jsq.data_bytes_moved, 0);
    }
}
