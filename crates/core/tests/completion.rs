//! The batched completion plane and the deadline-driven walltime watcher:
//! integration tests at the core-crate level (no wire executors).

use bytes::Bytes;
use parsl_core::error::{ParslError, TaskError};
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::prelude::*;
use parsl_core::registry::AppOptions;
use std::time::Duration;

/// Accepts every task and never completes any — the walltime watcher is
/// the only way out.
struct BlackHole {
    ctx: parking_lot::Mutex<Option<ExecutorContext>>,
}

impl BlackHole {
    fn new() -> Self {
        BlackHole {
            ctx: parking_lot::Mutex::new(None),
        }
    }
}

impl Executor for BlackHole {
    fn label(&self) -> &str {
        "blackhole"
    }
    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }
    fn submit(&self, _task: TaskSpec) -> Result<(), ExecutorError> {
        if self.ctx.lock().is_none() {
            return Err(ExecutorError::NotRunning);
        }
        Ok(())
    }
    fn outstanding(&self) -> usize {
        0
    }
    fn connected_workers(&self) -> usize {
        1
    }
    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

/// An idle kernel with no walltimes must not tick: the watcher is
/// deadline driven, not a 10 ms poll (a poll would wake ~15 times here).
#[test]
fn walltime_watcher_sleeps_when_no_deadlines_pending() {
    let dfk = DataFlowKernel::builder()
        .executor(ImmediateExecutor::new())
        .build()
        .unwrap();
    let inc = dfk.python_app("inc", |x: u64| x + 1);
    for i in 0..32u64 {
        assert_eq!(parsl_core::call!(inc, i).result().unwrap(), i + 1);
    }
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        dfk.walltime_wakeups(),
        0,
        "no walltime was ever armed, so the watcher must never wake"
    );
    dfk.shutdown();
}

/// Walltimes still fire: the watcher wakes for the armed deadline and the
/// expiry travels the batched completion path (a one-failure batch).
#[test]
fn armed_walltime_wakes_the_watcher_and_expires_the_task() {
    let dfk = DataFlowKernel::builder()
        .executor(BlackHole::new())
        .build()
        .unwrap();
    let stuck = dfk.python_app_cfg(
        "stuck",
        AppOptions {
            walltime: Some(Duration::from_millis(60)),
            ..Default::default()
        },
        |x: u64| -> Result<u64, parsl_core::error::AppError> { Ok(x) },
    );
    let f = parsl_core::call!(stuck, 1u64);
    match f.result_timeout(Duration::from_secs(5)) {
        Err(ParslError::Task(TaskError::WalltimeExceeded)) => {}
        other => panic!("expected WalltimeExceeded, got {other:?}"),
    }
    assert!(
        dfk.walltime_wakeups() >= 1,
        "the armed deadline must have woken the watcher"
    );
    dfk.shutdown();
}

/// Delivers every submitted batch as ONE completion frame after executing
/// all members — a synthetic completion storm.
struct FrameEcho {
    ctx: parking_lot::Mutex<Option<ExecutorContext>>,
}

impl Executor for FrameEcho {
    fn label(&self) -> &str {
        "frame-echo"
    }
    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }
    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        self.submit_batch(vec![task])
    }
    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        let outcomes: Vec<TaskOutcome> = tasks
            .iter()
            .map(|t| {
                let result = (t.app.func)(&t.args)
                    .map(Bytes::from)
                    .map_err(TaskError::App);
                TaskOutcome::new(t.id, t.attempt, result)
            })
            .collect();
        ctx.completions
            .send(outcomes)
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }
    fn outstanding(&self) -> usize {
        0
    }
    fn connected_workers(&self) -> usize {
        1
    }
    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

/// Run a memoized fan-in campaign with a checkpoint file; return the
/// multiset (sorted list) of checkpoint frames written.
fn checkpointed_run(path: &std::path::Path, batched: bool) -> Vec<Vec<u8>> {
    let dfk = DataFlowKernel::builder()
        .executor(FrameEcho {
            ctx: parking_lot::Mutex::new(None),
        })
        .memoize(true)
        .checkpoint_file(path)
        .completion_batching(batched)
        .build()
        .unwrap();
    let root = dfk.python_app("root", || 0u64);
    let child = dfk.python_app("child", |gate: u64, i: u64| gate + i * 7);
    let gate = parsl_core::call!(root);
    let futs: Vec<_> = (0..64u64)
        .map(|i| child.call((Dep::future(gate.clone()), Dep::value(i))))
        .collect();
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64 * 7);
    }
    dfk.wait_for_all();
    dfk.shutdown();

    let file = std::fs::File::open(path).unwrap();
    let mut reader = wire::FrameReader::new(std::io::BufReader::new(file));
    let mut frames = Vec::new();
    while let Some(frame) = reader.read().unwrap() {
        frames.push(frame);
    }
    frames.sort();
    frames
}

/// Acceptance criterion: the checkpoint file of a batched-collection run
/// is byte-equivalent (modulo frame order) to a per-task run's.
#[test]
fn batched_checkpoint_file_matches_per_task_modulo_order() {
    let dir = std::env::temp_dir().join(format!("parsl-completion-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let batched_path = dir.join("batched.ckpt");
    let per_task_path = dir.join("per-task.ckpt");
    let _ = std::fs::remove_file(&batched_path);
    let _ = std::fs::remove_file(&per_task_path);

    let batched = checkpointed_run(&batched_path, true);
    let per_task = checkpointed_run(&per_task_path, false);
    assert_eq!(batched.len(), 65, "root + 64 children all checkpointed");
    assert_eq!(batched, per_task, "same frames, different order at most");

    std::fs::remove_file(&batched_path).unwrap();
    std::fs::remove_file(&per_task_path).unwrap();
}

/// A storm of single-frame completions interleaved with one giant frame:
/// every task resolves exactly once and the state histogram balances.
#[test]
fn wide_fan_in_storm_accounts_exactly() {
    let dfk = DataFlowKernel::builder()
        .executor(FrameEcho {
            ctx: parking_lot::Mutex::new(None),
        })
        .build()
        .unwrap();
    let root = dfk.python_app("root", || 1u64);
    let child = dfk.python_app("child", |gate: u64, i: u64| gate + i);
    let sum = dfk.python_app("sum", |xs: Vec<u64>| xs.iter().sum::<u64>());

    let gate = parsl_core::call!(root);
    let children: Vec<_> = (0..256u64)
        .map(|i| child.call((Dep::future(gate.clone()), Dep::value(i))))
        .collect();
    let joined = parsl_core::combinators::join_all(&dfk, children.clone());
    let total = sum.call((Dep::future(joined),));
    // Σ (1 + i) for i in 0..256
    assert_eq!(total.result().unwrap(), 256 + (0..256u64).sum::<u64>());
    dfk.wait_for_all();
    let counts = dfk.state_counts();
    let done = counts.get(&TaskState::Done).copied().unwrap_or(0);
    assert_eq!(
        done,
        dfk.task_count(),
        "every task Done exactly once: {counts:?}"
    );
    dfk.shutdown();
}
