//! Property: multi-tenant *placement* is semantically invisible.
//! [`SchedulerPolicy::WeightedFair`] only changes where tasks run — never
//! what runs, what values come out, or how many attempts anything takes —
//! so for random multi-tenant DAGs (including failing nodes, retries, and
//! per-tenant quotas that force park/unpark cycles) a run under
//! `WeightedFair` must be observationally identical to one under the
//! paper's `RandomHash` placement.
//!
//! Plus a starvation stress: a light tenant arriving behind another
//! tenant's large parked backlog must be served interleaved by the
//! weighted-deficit unpark order, not appended after the backlog.

use bytes::Bytes;
use parking_lot::Mutex;
use parsl_core::error::{AppError, ParslError, TaskError};
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// An inline executor (tasks complete on submission) — placement equivalence
// needs at least two of these so the scheduler has a real choice to make.
// ---------------------------------------------------------------------------

struct InlineExec {
    label: String,
    ctx: Mutex<Option<ExecutorContext>>,
}

impl InlineExec {
    fn new(label: &str) -> Self {
        InlineExec {
            label: label.into(),
            ctx: Mutex::new(None),
        }
    }

    fn run(task: &TaskSpec) -> TaskOutcome {
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        TaskOutcome::new(task.id, task.attempt, result)
    }
}

impl Executor for InlineExec {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        ctx.completions
            .send(vec![Self::run(&task)])
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        let outcomes: Vec<TaskOutcome> = tasks.iter().map(Self::run).collect();
        ctx.completions
            .send(outcomes)
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn outstanding(&self) -> usize {
        0
    }

    fn connected_workers(&self) -> usize {
        1
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

/// Retry counter per task: the attempt-count witness for equivalence.
#[derive(Default)]
struct Retries(Mutex<std::collections::HashMap<u64, u32>>);

impl Retries {
    fn sorted(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.0.lock().iter().map(|(&k, &v)| (k, v)).collect();
        v.sort();
        v
    }
}

impl MonitorSink for Retries {
    fn on_event(&self, event: &MonitorEvent) {
        if let MonitorEvent::Retry { task, .. } = event {
            *self.0.lock().entry(task.0).or_insert(0) += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Random layered multi-tenant DAGs: node (li, ni) depends on a subset of
// layer li−1, belongs to tenant (li*7 + ni*3) % 4, and computes
// base + Σ parents; nodes with (li*31 + ni) % 7 == 0 fail instead (when
// `with_failures`), exercising DepFail propagation and the retry path
// across tenant boundaries.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Dag {
    layers: Vec<Vec<Vec<usize>>>,
    with_failures: bool,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    let layer_sizes = vec(1usize..5, 2..4);
    (layer_sizes, any::<bool>()).prop_flat_map(|(sizes, with_failures)| {
        let mut layer_strats = Vec::new();
        for i in 0..sizes.len() {
            let n = sizes[i];
            let prev = if i == 0 { 0 } else { sizes[i - 1] };
            let node = if prev == 0 {
                Just(Vec::new()).boxed()
            } else {
                vec(0..prev, 0..=prev.min(3)).boxed()
            };
            layer_strats.push(vec(node, n..=n));
        }
        layer_strats.prop_map(move |layers| Dag {
            layers,
            with_failures,
        })
    })
}

fn fails(dag: &Dag, li: usize, ni: usize) -> bool {
    dag.with_failures && (li * 31 + ni) % 7 == 0
}

fn tenant_of(li: usize, ni: usize) -> TenantId {
    TenantId(((li * 7 + ni * 3) % 4) as u32)
}

/// Everything placement must not change: per-node values (and failure
/// kinds), task count, terminal-state histogram, per-task retry counts,
/// and the final per-tenant in-flight counters (all zero, or a slot
/// leaked somewhere in the park/unpark machinery).
struct RunOutput {
    values: Vec<Vec<Result<u64, &'static str>>>,
    task_count: usize,
    state_counts: Vec<(TaskState, usize)>,
    retries: Vec<(u64, u32)>,
    tenant_inflight: Vec<(u32, usize)>,
}

/// One run of the DAG under the given placement policy. Tenants 0 and 1
/// carry in-flight quotas so the run exercises quota parking and the
/// weighted-deficit unpark order, not just placement.
fn run(dag: &Dag, policy: SchedulerPolicy) -> RunOutput {
    let retries = Arc::new(Retries::default());
    let dfk = DataFlowKernel::builder()
        .executor(InlineExec::new("e0"))
        .executor(InlineExec::new("e1"))
        .scheduler(policy)
        .seed(42)
        .retries(1)
        .tenant(
            TenantId(0),
            TenantConfig {
                weight: 1,
                max_inflight: Some(2),
            },
        )
        .tenant(
            TenantId(1),
            TenantConfig {
                weight: 3,
                max_inflight: Some(1),
            },
        )
        .monitor(Arc::clone(&retries) as Arc<dyn MonitorSink>)
        .build()
        .unwrap();
    let node = dfk.python_app_fallible(
        "node",
        |base: u64, deps: Vec<u64>, fail: bool| -> Result<u64, AppError> {
            if fail {
                return Err(AppError::msg("poisoned node"));
            }
            Ok(deps.into_iter().fold(base, u64::wrapping_add))
        },
    );

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_futs = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let base = (li as u64 + 1) * 1000 + ni as u64;
            let dep_futs: Vec<AppFuture<u64>> =
                deps.iter().map(|&d| futures[li - 1][d].clone()).collect();
            let joined = parsl_core::combinators::join_all(&dfk, dep_futs);
            let f = dfk.tenant(tenant_of(li, ni)).call(
                &node,
                (
                    Dep::value(base),
                    Dep::future(joined),
                    Dep::value(fails(dag, li, ni)),
                ),
            );
            layer_futs.push(f);
        }
        futures.push(layer_futs);
    }

    let values: Vec<Vec<Result<u64, &'static str>>> = futures
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|f| match f.result() {
                    Ok(v) => Ok(v),
                    Err(ParslError::Task(TaskError::App(_))) => Err("app"),
                    Err(ParslError::Task(TaskError::DependencyFailed { .. })) => Err("dep"),
                    Err(e) => panic!("unexpected error shape: {e:?}"),
                })
                .collect()
        })
        .collect();

    dfk.wait_for_all();
    let task_count = dfk.task_count();
    let mut state_counts: Vec<(TaskState, usize)> = dfk.state_counts().into_iter().collect();
    state_counts.sort_by_key(|(s, _)| format!("{s}"));
    let mut tenant_inflight: Vec<(u32, usize)> = dfk
        .tenant_ids()
        .into_iter()
        .map(|t| (t.0, dfk.tenant_inflight(t)))
        .collect();
    tenant_inflight.sort();
    dfk.shutdown();
    RunOutput {
        values,
        task_count,
        state_counts,
        retries: retries.sorted(),
        tenant_inflight,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `WeightedFair` placement is observationally identical to
    /// `RandomHash`: same values and failure kinds, same task count,
    /// same terminal-state histogram, same per-task attempt counts —
    /// and both runs end with every tenant's in-flight count at zero.
    #[test]
    fn weighted_fair_equals_random_hash(dag in dag_strategy()) {
        let fair = run(&dag, SchedulerPolicy::WeightedFair);
        let random = run(&dag, SchedulerPolicy::RandomHash);
        prop_assert_eq!(fair.values, random.values);
        prop_assert_eq!(fair.task_count, random.task_count);
        prop_assert_eq!(fair.state_counts, random.state_counts);
        prop_assert_eq!(fair.retries, random.retries);
        for (tenant, inflight) in fair.tenant_inflight.iter().chain(&random.tenant_inflight) {
            prop_assert_eq!(*inflight, 0, "tenant {} leaked a slot", tenant);
        }
    }

    /// The multi-tenant path is itself deterministic: two `WeightedFair`
    /// runs of the same DAG agree bit for bit.
    #[test]
    fn weighted_fair_run_is_deterministic(dag in dag_strategy()) {
        let a = run(&dag, SchedulerPolicy::WeightedFair);
        let b = run(&dag, SchedulerPolicy::WeightedFair);
        prop_assert_eq!(a.values, b.values);
        prop_assert_eq!(a.task_count, b.task_count);
        prop_assert_eq!(a.state_counts, b.state_counts);
        prop_assert_eq!(a.retries, b.retries);
    }
}

// ---------------------------------------------------------------------------
// Starvation stress: a gated executor drained one task at a time, a heavy
// tenant's backlog parked first, a light tenant arriving behind it.
// ---------------------------------------------------------------------------

struct GatedExec {
    ctx: Mutex<Option<ExecutorContext>>,
    queue: Mutex<VecDeque<TaskSpec>>,
    tenants_seen: Mutex<Vec<TenantId>>,
    inflight: AtomicUsize,
}

impl GatedExec {
    fn new() -> Arc<Self> {
        Arc::new(GatedExec {
            ctx: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
            tenants_seen: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
        })
    }

    fn complete_one(&self) -> bool {
        let Some(task) = self.queue.lock().pop_front() else {
            return false;
        };
        let ctx = self.ctx.lock().clone().expect("started");
        let outcome = InlineExec::run(&task);
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        ctx.completions
            .send(vec![outcome])
            .expect("collector alive");
        true
    }
}

impl Executor for GatedExec {
    fn label(&self) -> &str {
        "gated"
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        if self.ctx.lock().is_none() {
            return Err(ExecutorError::NotRunning);
        }
        self.inflight.fetch_add(1, Ordering::SeqCst);
        self.tenants_seen.lock().push(task.tenant);
        self.queue.lock().push_back(task);
        Ok(())
    }

    fn outstanding(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    fn connected_workers(&self) -> usize {
        4
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
        self.queue.lock().clear();
    }
}

/// A light tenant submitting 40 tasks behind a heavy tenant's 200-task
/// parked backlog must be served interleaved: under the weighted-deficit
/// unpark order its share tracks the heavy tenant's, so its last task
/// dispatches well inside the first half of the run. (Plain FIFO
/// unparking — the starvation failure mode — would dispatch it among the
/// very last 40.)
#[test]
fn late_light_tenant_is_not_starved_by_a_parked_backlog() {
    const HEAVY_N: usize = 200;
    const LIGHT_N: usize = 40;
    let heavy = TenantId(1);
    let light = TenantId(2);
    let ex = GatedExec::new();
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .max_inflight_per_executor(4)
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);

    let h = dfk.tenant(heavy);
    let l = dfk.tenant(light);
    let heavy_futs: Vec<_> = (0..HEAVY_N as u64)
        .map(|i| h.call(&id, (Dep::value(i),)))
        .collect();
    // The whole heavy backlog is in (4 in flight, the rest parked)
    // before the light tenant shows up.
    let deadline = Instant::now() + Duration::from_secs(5);
    while dfk.parked_tasks() < HEAVY_N - 4 {
        assert!(Instant::now() < deadline, "backlog never parked");
        std::thread::sleep(Duration::from_millis(2));
    }
    let light_futs: Vec<_> = (0..LIGHT_N as u64)
        .map(|i| l.call(&id, (Dep::value(i),)))
        .collect();

    // Drain one completion at a time: every freed slot is one
    // weighted-deficit grant decision.
    let deadline = Instant::now() + Duration::from_secs(30);
    while dfk.live_tasks() > 0 {
        assert!(Instant::now() < deadline, "drain stalled");
        if !ex.complete_one() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for (i, f) in heavy_futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }
    for (i, f) in light_futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }

    let order = ex.tenants_seen.lock().clone();
    assert_eq!(order.len(), HEAVY_N + LIGHT_N);
    let last_light = order
        .iter()
        .rposition(|&t| t == light)
        .expect("light tenant dispatched");
    assert!(
        last_light < (HEAVY_N + LIGHT_N) * 2 / 3,
        "light tenant starved: its last task dispatched at position {last_light} of {}",
        HEAVY_N + LIGHT_N
    );
    assert_eq!(dfk.tenant_inflight(heavy), 0);
    assert_eq!(dfk.tenant_inflight(light), 0);
    dfk.shutdown();
}
