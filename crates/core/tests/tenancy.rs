//! Integration tests for the multi-tenant admission plane: per-tenant
//! in-flight quotas, weighted-deficit unparking, tenant-aware placement,
//! and the exactly-once slot accounting on every park/unpark exit path
//! (memo hit, dependency failure, walltime expiry while parked).
//!
//! These are cap=1-style deadlock regressions: a leaked or stranded slot
//! shows up here as a `wait_for_all_timeout` that never returns rather
//! than a silently wrong counter.

use bytes::Bytes;
use parking_lot::Mutex;
use parsl_core::error::{AppError, ParslError, TaskError};
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An executor that accepts tasks but completes them only when the test
/// says so, recording the tenant of every submission in arrival order.
struct GatedExecutor {
    label: String,
    workers: usize,
    ctx: Mutex<Option<ExecutorContext>>,
    queue: Mutex<VecDeque<TaskSpec>>,
    tenants_seen: Mutex<Vec<TenantId>>,
    submitted: AtomicUsize,
    inflight: AtomicUsize,
}

impl GatedExecutor {
    fn new(label: &str, workers: usize) -> Arc<Self> {
        Arc::new(GatedExecutor {
            label: label.to_string(),
            workers,
            ctx: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
            tenants_seen: Mutex::new(Vec::new()),
            submitted: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
        })
    }

    fn submitted(&self) -> usize {
        self.submitted.load(Ordering::SeqCst)
    }

    fn tenants_seen(&self) -> Vec<TenantId> {
        self.tenants_seen.lock().clone()
    }

    fn run_task(task: &TaskSpec) -> TaskOutcome {
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        TaskOutcome::new(task.id, task.attempt, result)
    }

    /// Run and report the oldest held task; false when none is held.
    fn complete_one(&self) -> bool {
        let Some(task) = self.queue.lock().pop_front() else {
            return false;
        };
        let ctx = self.ctx.lock().clone().expect("started");
        let outcome = Self::run_task(&task);
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        ctx.completions
            .send(vec![outcome])
            .expect("collector alive");
        true
    }

    fn complete_all(&self) -> usize {
        let mut n = 0;
        while self.complete_one() {
            n += 1;
        }
        n
    }

    /// Run every held task and report all outcomes as ONE completion
    /// batch, so the kernel performs a single `unpark_ready` pass with
    /// the whole freed budget — the weighted-deficit order is then
    /// observable in the subsequent submission order.
    fn complete_all_as_one_batch(&self) -> usize {
        let tasks: Vec<TaskSpec> = self.queue.lock().drain(..).collect();
        if tasks.is_empty() {
            return 0;
        }
        let ctx = self.ctx.lock().clone().expect("started");
        let outcomes: Vec<TaskOutcome> = tasks.iter().map(Self::run_task).collect();
        self.inflight.fetch_sub(tasks.len(), Ordering::SeqCst);
        ctx.completions.send(outcomes).expect("collector alive");
        tasks.len()
    }
}

impl Executor for GatedExecutor {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        if self.ctx.lock().is_none() {
            return Err(ExecutorError::NotRunning);
        }
        self.submitted.fetch_add(1, Ordering::SeqCst);
        self.inflight.fetch_add(1, Ordering::SeqCst);
        self.tenants_seen.lock().push(task.tenant);
        self.queue.lock().push_back(task);
        Ok(())
    }

    fn outstanding(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    fn connected_workers(&self) -> usize {
        self.workers
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
        self.queue.lock().clear();
    }
}

/// Poll until `cond` holds; panic after 5 seconds.
fn eventually(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Drain the executor until the kernel reports no live tasks.
fn drain(dfk: &DataFlowKernel, ex: &GatedExecutor) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while dfk.live_tasks() > 0 {
        assert!(Instant::now() < deadline, "drain stalled: tasks stranded");
        ex.complete_all();
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn tenant_quota_parks_excess_while_other_tenants_flow() {
    let ex = GatedExecutor::new("gated", 4);
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .tenant(
            TenantId(1),
            TenantConfig {
                weight: 1,
                max_inflight: Some(1),
            },
        )
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);
    let alice = dfk.tenant(TenantId(1));

    // Three tasks against a quota of one: one dispatches, two park.
    let alice_futs: Vec<_> = (0..3).map(|i| alice.call(&id, (Dep::value(i),))).collect();
    eventually("quota's worth dispatched", || ex.submitted() == 1);
    eventually("excess parked", || dfk.parked_tasks() == 2);
    assert_eq!(alice.inflight(), 1);

    // The quota throttles alice only: default-tenant work flows past her
    // parked backlog (there is no global cap here).
    let other: Vec<_> = (10..12u64).map(|i| parsl_core::call!(id, i)).collect();
    eventually("other tenant unaffected", || ex.submitted() == 3);
    assert_eq!(
        dfk.parked_tasks(),
        2,
        "quota must hold while nothing completes"
    );

    drain(&dfk, &ex);
    for (i, f) in alice_futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }
    for (i, f) in other.iter().enumerate() {
        assert_eq!(f.result().unwrap(), 10 + i as u64);
    }
    assert_eq!(dfk.tenant_inflight(TenantId(1)), 0, "quota slot leaked");
    assert_eq!(dfk.parked_tasks(), 0);
    dfk.shutdown();
}

#[test]
fn memo_hit_while_parked_settles_whole_cohort_under_cap1() {
    // Deadlock regression: three identical memoizable tasks under a
    // cap of one. The first dispatches; the other two park. When the
    // first completes, one parked task is woken into a memo hit — it
    // settles WITHOUT consuming the freed slot, so the kernel must
    // re-offer that slot to the last parked task or it strands forever.
    let ex = GatedExecutor::new("gated", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .max_inflight_per_executor(1)
        .memoize(true)
        .build()
        .unwrap();
    let double = dfk.python_app("double", |x: u64| x * 2);

    let a = parsl_core::call!(double, 7u64);
    eventually("first dispatched", || ex.submitted() == 1);
    let b = parsl_core::call!(double, 7u64);
    let c = parsl_core::call!(double, 7u64);
    eventually("duplicates parked", || dfk.parked_tasks() == 2);

    assert!(ex.complete_one());
    assert!(
        dfk.wait_for_all_timeout(Duration::from_secs(5)),
        "memo-hit unpark stranded a parked duplicate (cap=1 deadlock)"
    );
    for f in [&a, &b, &c] {
        assert_eq!(f.result().unwrap(), 14);
    }
    // The duplicates were served from the cache, never the executor.
    assert_eq!(ex.submitted(), 1);
    assert_eq!(dfk.parked_tasks(), 0);
    assert_eq!(dfk.tenant_inflight(TenantId::DEFAULT), 0);
    dfk.shutdown();
}

#[test]
fn dep_fail_releases_no_slot_it_never_held_cap1() {
    // A dependency failure terminalizes a task that never dispatched:
    // it must not disturb the in-flight accounting, and the failure's
    // own released slot must reach the parked task behind it.
    let ex = GatedExecutor::new("gated", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .max_inflight_per_executor(1)
        .build()
        .unwrap();
    let boom = dfk.python_app_fallible("boom", |_x: u64| -> Result<u64, AppError> {
        Err(AppError::msg("boom"))
    });
    let inc = dfk.python_app("inc", |x: u64| x + 1);

    let parent = parsl_core::call!(boom, 1u64);
    eventually("parent dispatched", || ex.submitted() == 1);
    let waiting = parsl_core::call!(inc, 5u64);
    eventually("bystander parked", || dfk.parked_tasks() == 1);
    let child = inc.call((Dep::future(parent),));

    // Failing the parent dep-fails the child and frees the only slot;
    // the parked bystander must then dispatch and the run must drain.
    assert!(ex.complete_one());
    drain(&dfk, &ex);
    assert!(matches!(
        child.result(),
        Err(ParslError::Task(TaskError::DependencyFailed { .. }))
    ));
    assert_eq!(waiting.result().unwrap(), 6);
    assert_eq!(ex.submitted(), 2, "dep-failed child must never dispatch");
    assert_eq!(dfk.tenant_inflight(TenantId::DEFAULT), 0, "slot leaked");

    // The ultimate leak check: a fresh task still finds the slot free.
    let again = parsl_core::call!(inc, 9u64);
    eventually("fresh task dispatched", || ex.submitted() == 3);
    drain(&dfk, &ex);
    assert_eq!(again.result().unwrap(), 10);
    dfk.shutdown();
}

#[test]
fn walltime_expires_while_parked_behind_a_blocked_executor() {
    // The walltime clock starts when a task becomes ready, not when it
    // dispatches: a task parked behind a saturated executor must still
    // expire via the deadline watcher, leave the parking lot, and leave
    // the accounting untouched (it never held a slot).
    let ex = GatedExecutor::new("gated", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .max_inflight_per_executor(1)
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);
    let timed = dfk.python_app_cfg::<(u64,), u64, _>(
        "timed",
        AppOptions {
            walltime: Some(Duration::from_millis(40)),
            ..Default::default()
        },
        |x: u64| Ok(x),
    );

    let blocker = parsl_core::call!(id, 1u64);
    eventually("blocker dispatched", || ex.submitted() == 1);
    let doomed = parsl_core::call!(timed, 2u64);
    eventually("timed task parked", || dfk.parked_tasks() == 1);

    // The executor stays blocked; only the watcher can settle the task.
    eventually("parked task expired", || dfk.parked_tasks() == 0);
    assert!(matches!(
        doomed.result(),
        Err(ParslError::Task(TaskError::WalltimeExceeded))
    ));
    assert_eq!(ex.submitted(), 1, "expired task must not dispatch later");
    assert_eq!(
        dfk.tenant_inflight(TenantId::DEFAULT),
        1,
        "only the blocker"
    );

    assert!(ex.complete_one());
    drain(&dfk, &ex);
    assert_eq!(blocker.result().unwrap(), 1);
    assert_eq!(dfk.tenant_inflight(TenantId::DEFAULT), 0);
    dfk.shutdown();
}

#[test]
fn weighted_deficit_unpark_grants_follow_tenant_weights() {
    // Fill a cap-4 executor with default-tenant blockers, park four
    // tasks each for a weight-2 and a weight-1 tenant, then free all
    // four slots in ONE completion batch. The single unpark pass must
    // grant by smallest inflight/weight share: A, B, A, A — the
    // weight-2 tenant gets the larger share, but the weight-1 tenant is
    // not starved.
    let heavy = TenantId(1);
    let light = TenantId(2);
    let ex = GatedExecutor::new("gated", 4);
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .max_inflight_per_executor(4)
        .tenant(
            heavy,
            TenantConfig {
                weight: 2,
                max_inflight: None,
            },
        )
        .tenant(
            light,
            TenantConfig {
                weight: 1,
                max_inflight: None,
            },
        )
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);

    let blockers: Vec<_> = (0..4u64).map(|i| parsl_core::call!(id, i)).collect();
    eventually("cap filled", || ex.submitted() == 4);

    let a = dfk.tenant(heavy);
    let b = dfk.tenant(light);
    let a_futs: Vec<_> = (0..4).map(|i| a.call(&id, (Dep::value(i),))).collect();
    let b_futs: Vec<_> = (0..4).map(|i| b.call(&id, (Dep::value(i),))).collect();
    eventually("both tenants parked", || dfk.parked_tasks() == 8);

    assert_eq!(ex.complete_all_as_one_batch(), 4);
    eventually("one budget's worth woken", || ex.submitted() == 8);
    let grants: Vec<TenantId> = ex.tenants_seen()[4..8].to_vec();
    assert_eq!(
        grants,
        vec![heavy, light, heavy, heavy],
        "weighted-deficit order must interleave 2:1, not serve one tenant wholesale"
    );

    drain(&dfk, &ex);
    for (i, f) in a_futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }
    for (i, f) in b_futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }
    for f in &blockers {
        f.result().unwrap();
    }
    assert_eq!(dfk.tenant_inflight(heavy), 0);
    assert_eq!(dfk.tenant_inflight(light), 0);
    dfk.shutdown();
}

#[test]
fn weighted_fair_placement_spreads_a_tenant_despite_a_hot_spot() {
    // Six tasks pinned onto executor a simulate another workflow's hot
    // spot. A tenant routing through WeightedFair spreads its own four
    // tasks by *its own* per-executor in-flight count, so it still lands
    // 2/2 instead of chasing the globally idle executor wholesale.
    let a = GatedExecutor::new("a", 4);
    let b = GatedExecutor::new("b", 4);
    let dfk = DataFlowKernel::builder()
        .executor_arc(a.clone())
        .executor_arc(b.clone())
        .scheduler(SchedulerPolicy::WeightedFair)
        .build()
        .unwrap();
    assert_eq!(dfk.scheduler_name(), "weighted_fair");
    let pinned = dfk.python_app_cfg::<(u64,), u64, _>(
        "pinned",
        AppOptions {
            executor: Some("a".into()),
            ..Default::default()
        },
        |x: u64| Ok(x),
    );
    let id = dfk.python_app("id", |x: u64| x);

    let hot: Vec<_> = (0..6u64).map(|i| parsl_core::call!(pinned, i)).collect();
    eventually("hot spot built", || a.submitted() == 6);

    let alice = dfk.tenant(TenantId(7));
    let futs: Vec<_> = (0..4).map(|i| alice.call(&id, (Dep::value(i),))).collect();
    eventually("tenant tasks dispatched", || {
        a.submitted() + b.submitted() == 10
    });
    assert_eq!(
        a.submitted(),
        8,
        "tenant-JSQ must still use the hot executor"
    );
    assert_eq!(b.submitted(), 2);

    a.complete_all();
    b.complete_all();
    for f in hot.iter().chain(&futs) {
        f.result().unwrap();
    }
    dfk.shutdown();
}
