//! Property: batching is semantically invisible on *both* halves of the
//! task lifecycle. For random layered DAGs (including failing nodes and
//! retries):
//!
//! - **submission**: running on an executor with a *native* batch
//!   implementation must yield byte-identical results and an identical
//!   task-state histogram to running on one that submits strictly one
//!   task per call;
//! - **collection**: the DFK's batched completion plane
//!   (`completion_batching(true)`, the default) must produce identical
//!   results, states, attempt counts, and monitor-event multisets to the
//!   per-task baseline (`completion_batching(false)`).
//!
//! Seeded and deterministic: values are pure functions of the DAG shape.

use bytes::Bytes;
use parsl_core::error::{AppError, ParslError, TaskError};
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// A minimal inline executor with switchable batch behaviour. `batched:
// false` refuses the batch path entirely (every task arrives through
// `submit` and every outcome ships as a one-element frame); `batched:
// true` executes a whole batch before delivering any outcome, shipping
// all of them as one frame — the most batch-like schedule possible.
// ---------------------------------------------------------------------------

struct InlineExec {
    label: String,
    batched: bool,
    ctx: parking_lot::Mutex<Option<ExecutorContext>>,
}

impl InlineExec {
    fn new(batched: bool) -> Self {
        InlineExec {
            // Same label either way: runs in different modes must emit
            // identical monitor events.
            label: "inline".into(),
            batched,
            ctx: parking_lot::Mutex::new(None),
        }
    }

    fn run(task: &TaskSpec) -> TaskOutcome {
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        TaskOutcome::new(task.id, task.attempt, result)
    }
}

impl Executor for InlineExec {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        ctx.completions
            .send(vec![Self::run(&task)])
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        if !self.batched {
            // Per-task baseline: the provided-trait-method behaviour.
            for t in tasks {
                self.submit(t)?;
            }
            return Ok(());
        }
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        let outcomes: Vec<TaskOutcome> = tasks.iter().map(Self::run).collect();
        ctx.completions
            .send(outcomes)
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn outstanding(&self) -> usize {
        0
    }

    fn connected_workers(&self) -> usize {
        1
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

// ---------------------------------------------------------------------------
// An order-insensitive monitor capture: events normalized to comparable
// tuples (the `at` timestamp dropped — wall-clock differs between runs).
// ---------------------------------------------------------------------------

/// (kind, task, app, state/reason, executor, attempt)
type EventKey = (u8, u64, String, String, String, u32);

#[derive(Default)]
struct Capture(parking_lot::Mutex<Vec<EventKey>>);

impl Capture {
    fn multiset(&self) -> Vec<EventKey> {
        let mut v = self.0.lock().clone();
        v.sort();
        v
    }
}

impl MonitorSink for Capture {
    fn on_event(&self, event: &MonitorEvent) {
        let key = match event {
            MonitorEvent::Task {
                task,
                app,
                state,
                executor,
                attempt,
                ..
            } => (
                0u8,
                task.0,
                app.to_string(),
                state.to_string(),
                executor.clone().unwrap_or_default(),
                *attempt,
            ),
            MonitorEvent::Retry {
                task,
                attempt,
                reason,
                ..
            } => (
                1u8,
                task.0,
                String::new(),
                reason.clone(),
                String::new(),
                *attempt,
            ),
            MonitorEvent::Workers { .. } | MonitorEvent::Hedge { .. } => return,
        };
        self.0.lock().push(key);
    }
}

// ---------------------------------------------------------------------------
// Random layered DAGs. Node (li, ni) depends on a subset of layer li−1 and
// computes base + Σ parents; nodes where `(li * 31 + ni) % 7 == 0` (and
// `with_failures`) fail instead, exercising DepFail propagation and — with
// a retry budget — the batched retry path.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Dag {
    layers: Vec<Vec<Vec<usize>>>,
    with_failures: bool,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    let layer_sizes = vec(1usize..5, 2..4);
    (layer_sizes, any::<bool>()).prop_flat_map(|(sizes, with_failures)| {
        let mut layer_strats = Vec::new();
        for i in 0..sizes.len() {
            let n = sizes[i];
            let prev = if i == 0 { 0 } else { sizes[i - 1] };
            let node = if prev == 0 {
                Just(Vec::new()).boxed()
            } else {
                vec(0..prev, 0..=prev.min(3)).boxed()
            };
            layer_strats.push(vec(node, n..=n));
        }
        layer_strats.prop_map(move |layers| Dag {
            layers,
            with_failures,
        })
    })
}

fn fails(dag: &Dag, li: usize, ni: usize) -> bool {
    dag.with_failures && (li * 31 + ni) % 7 == 0
}

/// Per-layer node results, total task count, state histogram, per-task
/// retry counts, and the normalized monitor-event multiset.
struct RunOutput {
    values: Vec<Vec<Result<u64, &'static str>>>,
    task_count: usize,
    state_counts: Vec<(TaskState, usize)>,
    retries: Vec<(u64, u32)>,
    events: Vec<EventKey>,
}

/// One run of the DAG; `submit_batched` selects the executor's submission
/// mode, `collect_batched` the DFK's collection mode.
fn run(dag: &Dag, submit_batched: bool, collect_batched: bool) -> RunOutput {
    let capture = Arc::new(Capture::default());
    let store = Arc::new(parsl_monitor_capture::Retries::default());
    struct Tee(Arc<Capture>, Arc<parsl_monitor_capture::Retries>);
    impl MonitorSink for Tee {
        fn on_event(&self, e: &MonitorEvent) {
            self.0.on_event(e);
            self.1.on_event(e);
        }
    }
    let dfk = DataFlowKernel::builder()
        .executor(InlineExec::new(submit_batched))
        .completion_batching(collect_batched)
        .retries(1)
        .monitor(Arc::new(Tee(Arc::clone(&capture), Arc::clone(&store))))
        .build()
        .unwrap();
    let node = dfk.python_app_fallible(
        "node",
        |base: u64, deps: Vec<u64>, fail: bool| -> Result<u64, AppError> {
            if fail {
                return Err(AppError::msg("poisoned node"));
            }
            Ok(deps.into_iter().fold(base, u64::wrapping_add))
        },
    );

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_futs = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let base = (li as u64 + 1) * 1000 + ni as u64;
            let dep_futs: Vec<AppFuture<u64>> =
                deps.iter().map(|&d| futures[li - 1][d].clone()).collect();
            let joined = parsl_core::combinators::join_all(&dfk, dep_futs);
            let f = node.call((
                Dep::value(base),
                Dep::future(joined),
                Dep::value(fails(dag, li, ni)),
            ));
            layer_futs.push(f);
        }
        futures.push(layer_futs);
    }

    let values: Vec<Vec<Result<u64, &'static str>>> = futures
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|f| match f.result() {
                    Ok(v) => Ok(v),
                    Err(ParslError::Task(TaskError::App(_))) => Err("app"),
                    Err(ParslError::Task(TaskError::DependencyFailed { .. })) => Err("dep"),
                    Err(e) => panic!("unexpected error shape: {e:?}"),
                })
                .collect()
        })
        .collect();

    dfk.wait_for_all();
    let task_count = dfk.task_count();
    let mut state_counts: Vec<(TaskState, usize)> = dfk.state_counts().into_iter().collect();
    state_counts.sort_by_key(|(s, _)| format!("{s}"));
    dfk.shutdown();
    RunOutput {
        values,
        task_count,
        state_counts,
        retries: store.sorted(),
        events: capture.multiset(),
    }
}

/// Tiny helper sink counting retries per task (the attempt-count witness).
mod parsl_monitor_capture {
    use super::*;
    use std::collections::HashMap;

    #[derive(Default)]
    pub struct Retries(parking_lot::Mutex<HashMap<u64, u32>>);

    impl Retries {
        pub fn sorted(&self) -> Vec<(u64, u32)> {
            let mut v: Vec<(u64, u32)> = self.0.lock().iter().map(|(&k, &v)| (k, v)).collect();
            v.sort();
            v
        }
    }

    impl MonitorSink for Retries {
        fn on_event(&self, event: &MonitorEvent) {
            if let MonitorEvent::Retry { task, .. } = event {
                *self.0.lock().entry(task.0).or_insert(0) += 1;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batched and per-task *submission* are observationally identical:
    /// same per-node values (and failure kinds), same task count, same
    /// terminal-state histogram.
    #[test]
    fn batched_equals_per_task(dag in dag_strategy()) {
        let serial = run(&dag, false, true);
        let batch = run(&dag, true, true);
        prop_assert_eq!(serial.values, batch.values);
        prop_assert_eq!(serial.task_count, batch.task_count);
        prop_assert_eq!(serial.state_counts, batch.state_counts);
    }

    /// Batched and per-task *collection* are observationally identical:
    /// same values, task count, state histogram, per-task retry counts,
    /// and monitor-event multiset (order-insensitive, timestamps
    /// excluded).
    #[test]
    fn batched_collection_equals_per_task_collection(dag in dag_strategy()) {
        let batched = run(&dag, true, true);
        let per_task = run(&dag, true, false);
        prop_assert_eq!(batched.values, per_task.values);
        prop_assert_eq!(batched.task_count, per_task.task_count);
        prop_assert_eq!(batched.state_counts, per_task.state_counts);
        prop_assert_eq!(batched.retries, per_task.retries);
        prop_assert_eq!(batched.events, per_task.events);
    }

    /// Determinism of the fully batched path itself: two runs of the same
    /// DAG agree bit for bit (and event for event).
    #[test]
    fn batched_run_is_deterministic(dag in dag_strategy()) {
        let a = run(&dag, true, true);
        let b = run(&dag, true, true);
        prop_assert_eq!(a.values, b.values);
        prop_assert_eq!(a.task_count, b.task_count);
        prop_assert_eq!(a.state_counts, b.state_counts);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.events, b.events);
    }
}
