//! Property: batched dispatch is semantically invisible. For random
//! layered DAGs (including failing nodes), running on an executor with a
//! *native* batch implementation must yield byte-identical results and an
//! identical task-state histogram to running on one that submits strictly
//! one task per call. Seeded and deterministic: values are pure functions
//! of the DAG shape.

use bytes::Bytes;
use parsl_core::error::{AppError, ParslError, TaskError};
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// A minimal inline executor with switchable batch behaviour. `batched:
// false` refuses the batch path entirely (every task arrives through
// `submit`); `batched: true` executes a whole batch before delivering any
// outcome — the most batch-like schedule possible.
// ---------------------------------------------------------------------------

struct InlineExec {
    label: String,
    batched: bool,
    ctx: parking_lot::Mutex<Option<ExecutorContext>>,
}

impl InlineExec {
    fn new(batched: bool) -> Self {
        InlineExec {
            label: if batched {
                "inline-batched".into()
            } else {
                "inline-serial".into()
            },
            batched,
            ctx: parking_lot::Mutex::new(None),
        }
    }

    fn run(task: &TaskSpec) -> TaskOutcome {
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        TaskOutcome::new(task.id, task.attempt, result)
    }
}

impl Executor for InlineExec {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        ctx.completions
            .send(Self::run(&task))
            .map_err(|_| ExecutorError::Comm("completions closed".into()))
    }

    fn submit_batch(&self, tasks: Vec<TaskSpec>) -> Result<(), ExecutorError> {
        if !self.batched {
            // Per-task baseline: the provided-trait-method behaviour.
            for t in tasks {
                self.submit(t)?;
            }
            return Ok(());
        }
        let ctx = self.ctx.lock().clone().ok_or(ExecutorError::NotRunning)?;
        let outcomes: Vec<TaskOutcome> = tasks.iter().map(Self::run).collect();
        for o in outcomes {
            ctx.completions
                .send(o)
                .map_err(|_| ExecutorError::Comm("completions closed".into()))?;
        }
        Ok(())
    }

    fn outstanding(&self) -> usize {
        0
    }

    fn connected_workers(&self) -> usize {
        1
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
    }
}

// ---------------------------------------------------------------------------
// Random layered DAGs. Node (li, ni) depends on a subset of layer li−1 and
// computes base + Σ parents; nodes where `(li * 31 + ni) % 7 == 0` (and
// `with_failures`) fail instead, exercising DepFail propagation.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Dag {
    layers: Vec<Vec<Vec<usize>>>,
    with_failures: bool,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    let layer_sizes = vec(1usize..5, 2..4);
    (layer_sizes, any::<bool>()).prop_flat_map(|(sizes, with_failures)| {
        let mut layer_strats = Vec::new();
        for i in 0..sizes.len() {
            let n = sizes[i];
            let prev = if i == 0 { 0 } else { sizes[i - 1] };
            let node = if prev == 0 {
                Just(Vec::new()).boxed()
            } else {
                vec(0..prev, 0..=prev.min(3)).boxed()
            };
            layer_strats.push(vec(node, n..=n));
        }
        layer_strats.prop_map(move |layers| Dag {
            layers,
            with_failures,
        })
    })
}

fn fails(dag: &Dag, li: usize, ni: usize) -> bool {
    dag.with_failures && (li * 31 + ni) % 7 == 0
}

/// Per-layer node results, total task count, and final state histogram.
type RunOutput = (
    Vec<Vec<Result<u64, &'static str>>>,
    usize,
    Vec<(TaskState, usize)>,
);

/// One run of the DAG; returns each node's observed result (`Ok(value)` or
/// a stable error discriminant) plus the kernel's final accounting.
fn run(dag: &Dag, batched: bool) -> RunOutput {
    let dfk = DataFlowKernel::builder()
        .executor(InlineExec::new(batched))
        .build()
        .unwrap();
    let node = dfk.python_app_fallible(
        "node",
        |base: u64, deps: Vec<u64>, fail: bool| -> Result<u64, AppError> {
            if fail {
                return Err(AppError::msg("poisoned node"));
            }
            Ok(deps.into_iter().fold(base, u64::wrapping_add))
        },
    );

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    for (li, layer) in dag.layers.iter().enumerate() {
        let mut layer_futs = Vec::new();
        for (ni, deps) in layer.iter().enumerate() {
            let base = (li as u64 + 1) * 1000 + ni as u64;
            let dep_futs: Vec<AppFuture<u64>> =
                deps.iter().map(|&d| futures[li - 1][d].clone()).collect();
            let joined = parsl_core::combinators::join_all(&dfk, dep_futs);
            let f = node.call((
                Dep::value(base),
                Dep::future(joined),
                Dep::value(fails(dag, li, ni)),
            ));
            layer_futs.push(f);
        }
        futures.push(layer_futs);
    }

    let results: Vec<Vec<Result<u64, &'static str>>> = futures
        .iter()
        .map(|layer| {
            layer
                .iter()
                .map(|f| match f.result() {
                    Ok(v) => Ok(v),
                    Err(ParslError::Task(TaskError::App(_))) => Err("app"),
                    Err(ParslError::Task(TaskError::DependencyFailed { .. })) => Err("dep"),
                    Err(e) => panic!("unexpected error shape: {e:?}"),
                })
                .collect()
        })
        .collect();

    dfk.wait_for_all();
    let task_count = dfk.task_count();
    let mut counts: Vec<(TaskState, usize)> = dfk.state_counts().into_iter().collect();
    counts.sort_by_key(|(s, _)| format!("{s}"));
    dfk.shutdown();
    (results, task_count, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and per-task submission are observationally identical:
    /// same per-node values (and failure kinds), same task count, same
    /// terminal-state histogram.
    #[test]
    fn batched_equals_per_task(dag in dag_strategy()) {
        let (serial_vals, serial_n, serial_counts) = run(&dag, false);
        let (batch_vals, batch_n, batch_counts) = run(&dag, true);
        prop_assert_eq!(serial_vals, batch_vals);
        prop_assert_eq!(serial_n, batch_n);
        prop_assert_eq!(serial_counts, batch_counts);
    }

    /// Determinism of the batched path itself: two runs of the same DAG
    /// agree bit for bit.
    #[test]
    fn batched_run_is_deterministic(dag in dag_strategy()) {
        let a = run(&dag, true);
        let b = run(&dag, true);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}
