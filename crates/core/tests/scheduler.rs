//! Integration tests for the pluggable scheduler and the per-executor
//! backpressure cap, driven through the full DataFlowKernel dispatch
//! path against a manually-completed executor.

use bytes::Bytes;
use parking_lot::Mutex;
use parsl_core::error::TaskError;
use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An executor that accepts tasks but completes them only when the test
/// says so, giving deterministic control over in-flight counts.
struct GatedExecutor {
    label: String,
    workers: usize,
    ctx: Mutex<Option<ExecutorContext>>,
    queue: Mutex<VecDeque<TaskSpec>>,
    submitted: AtomicUsize,
    inflight: AtomicUsize,
    peak_inflight: AtomicUsize,
}

impl GatedExecutor {
    fn new(label: &str, workers: usize) -> Arc<Self> {
        Arc::new(GatedExecutor {
            label: label.to_string(),
            workers,
            ctx: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
            submitted: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            peak_inflight: AtomicUsize::new(0),
        })
    }

    fn submitted(&self) -> usize {
        self.submitted.load(Ordering::SeqCst)
    }

    fn peak_inflight(&self) -> usize {
        self.peak_inflight.load(Ordering::SeqCst)
    }

    /// Run and report the oldest held task; false when none is held.
    fn complete_one(&self) -> bool {
        let Some(task) = self.queue.lock().pop_front() else {
            return false;
        };
        let ctx = self.ctx.lock().clone().expect("started");
        let result = (task.app.func)(&task.args)
            .map(Bytes::from)
            .map_err(TaskError::App);
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        ctx.completions
            .send(vec![TaskOutcome::new(task.id, task.attempt, result)])
            .expect("collector alive");
        true
    }

    fn complete_all(&self) -> usize {
        let mut n = 0;
        while self.complete_one() {
            n += 1;
        }
        n
    }
}

impl Executor for GatedExecutor {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        *self.ctx.lock() = Some(ctx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        if self.ctx.lock().is_none() {
            return Err(ExecutorError::NotRunning);
        }
        self.submitted.fetch_add(1, Ordering::SeqCst);
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_inflight.fetch_max(now, Ordering::SeqCst);
        self.queue.lock().push_back(task);
        Ok(())
    }

    fn outstanding(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    fn connected_workers(&self) -> usize {
        self.workers
    }

    fn shutdown(&self) {
        self.ctx.lock().take();
        self.queue.lock().clear();
    }
}

/// Poll until `cond` holds; panic after 5 seconds.
fn eventually(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn inflight_of(dfk: &DataFlowKernel, label: &str) -> usize {
    dfk.inflight_counts()
        .into_iter()
        .find(|(l, _)| l == label)
        .map(|(_, n)| n)
        .expect("label exists")
}

#[test]
fn least_outstanding_converges_on_the_idle_executor() {
    let a = GatedExecutor::new("a", 1);
    let b = GatedExecutor::new("b", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(a.clone())
        .executor_arc(b.clone())
        .scheduler(SchedulerPolicy::LeastOutstanding)
        .build()
        .unwrap();
    assert_eq!(dfk.scheduler_name(), "least_outstanding");
    let id = dfk.python_app("id", |x: u64| x);

    // Six tasks split 3/3: join-shortest-queue balances an even load.
    let first: Vec<_> = (0..6).map(|i| parsl_core::call!(id, i)).collect();
    eventually("first wave dispatched", || {
        a.submitted() + b.submitted() == 6
    });
    assert_eq!(a.submitted(), 3);
    assert_eq!(b.submitted(), 3);

    // Drain executor b only: it becomes the shortest queue.
    assert_eq!(b.complete_all(), 3);
    eventually("b's completions processed", || inflight_of(&dfk, "b") == 0);

    // The next two tasks must both chase the idle executor.
    let second: Vec<_> = (10..12).map(|i| parsl_core::call!(id, i)).collect();
    eventually("second wave dispatched", || b.submitted() == 5);
    assert_eq!(
        a.submitted(),
        3,
        "saturated executor must not receive new work"
    );

    a.complete_all();
    b.complete_all();
    for f in first.iter().chain(&second) {
        f.result().unwrap();
    }
    dfk.shutdown();
}

#[test]
fn round_robin_splits_exactly_evenly() {
    let a = GatedExecutor::new("a", 1);
    let b = GatedExecutor::new("b", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(a.clone())
        .executor_arc(b.clone())
        .scheduler(SchedulerPolicy::RoundRobin)
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);
    let futs: Vec<_> = (0..10).map(|i| parsl_core::call!(id, i)).collect();
    eventually("all dispatched", || a.submitted() + b.submitted() == 10);
    assert_eq!(a.submitted(), 5);
    assert_eq!(b.submitted(), 5);
    a.complete_all();
    b.complete_all();
    for f in &futs {
        f.result().unwrap();
    }
    dfk.shutdown();
}

#[test]
fn capacity_weighted_follows_worker_slots() {
    // 8-vs-2 worker slots: traffic should skew roughly 80/20.
    let big = GatedExecutor::new("big", 8);
    let small = GatedExecutor::new("small", 2);
    let dfk = DataFlowKernel::builder()
        .executor_arc(big.clone())
        .executor_arc(small.clone())
        .scheduler(SchedulerPolicy::CapacityWeighted)
        .seed(11)
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);
    let n = 1000u64;
    let futs: Vec<_> = (0..n).map(|i| parsl_core::call!(id, i)).collect();
    eventually("all dispatched", || {
        big.submitted() + small.submitted() == n as usize
    });
    let share = big.submitted() as f64 / n as f64;
    assert!(
        (0.72..0.88).contains(&share),
        "big executor share was {share}"
    );
    big.complete_all();
    small.complete_all();
    for f in &futs {
        f.result().unwrap();
    }
    dfk.shutdown();
}

#[test]
fn backpressure_parks_over_cap_tasks_and_drains_on_completion() {
    let ex = GatedExecutor::new("gated", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(ex.clone())
        .scheduler(SchedulerPolicy::LeastOutstanding)
        .max_inflight_per_executor(2)
        .build()
        .unwrap();
    let id = dfk.python_app("id", |x: u64| x);

    let futs: Vec<_> = (0..5).map(|i| parsl_core::call!(id, i)).collect();
    // Only the cap's worth dispatches; the rest park.
    eventually("cap reached", || ex.submitted() == 2);
    eventually("excess parked", || dfk.parked_tasks() == 3);
    assert_eq!(ex.submitted(), 2, "cap must hold while nothing completes");

    // Each completion frees one slot and pulls one parked task through.
    assert!(ex.complete_one());
    eventually("third task dispatched", || ex.submitted() == 3);
    assert_eq!(dfk.parked_tasks(), 2);

    // Draining everything lets the rest flow; the cap is never exceeded.
    while dfk.live_tasks() > 0 {
        ex.complete_all();
        std::thread::sleep(Duration::from_millis(2));
    }
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }
    assert!(
        ex.peak_inflight() <= 2,
        "peak in-flight {} exceeded the cap",
        ex.peak_inflight()
    );
    assert_eq!(dfk.parked_tasks(), 0);
    dfk.shutdown();
}

#[test]
fn pinned_tasks_park_on_their_own_executor_only() {
    let a = GatedExecutor::new("a", 1);
    let b = GatedExecutor::new("b", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(a.clone())
        .executor_arc(b.clone())
        .scheduler(SchedulerPolicy::LeastOutstanding)
        .max_inflight_per_executor(1)
        .build()
        .unwrap();
    let pinned = dfk.python_app_cfg::<(u64,), u64, _>(
        "pinned",
        AppOptions {
            executor: Some("b".into()),
            ..Default::default()
        },
        |x: u64| Ok(x),
    );
    let futs: Vec<_> = (0..3).map(|i| parsl_core::call!(pinned, i)).collect();
    // One in flight on b; the other two wait for b specifically, even
    // though a is idle.
    eventually("first pinned task dispatched", || b.submitted() == 1);
    eventually("rest parked", || dfk.parked_tasks() == 2);
    assert_eq!(
        a.submitted(),
        0,
        "pinned tasks must not spill to another executor"
    );

    while dfk.live_tasks() > 0 {
        b.complete_all();
        std::thread::sleep(Duration::from_millis(2));
    }
    for (i, f) in futs.iter().enumerate() {
        assert_eq!(f.result().unwrap(), i as u64);
    }
    assert_eq!(b.submitted(), 3);
    assert!(b.peak_inflight() <= 1);
    dfk.shutdown();
}

#[test]
fn random_hash_default_still_reaches_every_executor() {
    let a = GatedExecutor::new("a", 1);
    let b = GatedExecutor::new("b", 1);
    let dfk = DataFlowKernel::builder()
        .executor_arc(a.clone())
        .executor_arc(b.clone())
        .seed(5)
        .build()
        .unwrap();
    assert_eq!(dfk.scheduler_name(), "random_hash");
    let id = dfk.python_app("id", |x: u64| x);
    let futs: Vec<_> = (0..64).map(|i| parsl_core::call!(id, i)).collect();
    eventually("all dispatched", || a.submitted() + b.submitted() == 64);
    assert!(a.submitted() > 0 && b.submitted() > 0);
    a.complete_all();
    b.complete_all();
    for f in &futs {
        f.result().unwrap();
    }
    dfk.shutdown();
}
