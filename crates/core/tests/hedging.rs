//! Straggler hedging is semantically invisible. For random diamond DAGs
//! with injected stragglers, a run with the hedge watcher enabled must be
//! observationally identical to an unhedged run: same per-node values,
//! same task count, every task `Done`, and **exactly one** checkpoint
//! record per task — the hedge race settles once, the loser's late result
//! is discarded, and the memo/checkpoint plane never double-commits.
//!
//! A deterministic companion test pins the mechanism itself: a primary
//! attempt blocked on a gate only the test releases can still resolve,
//! because the speculative duplicate wins the race.

use parsl_core::executor::{Executor, ExecutorContext, ExecutorError, TaskOutcome, TaskSpec};
use parsl_core::memo::Memoizer;
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use parsl_core::strategy::{HedgeConfig, StrategyConfig};
use parsl_core::types::TaskState;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// An inline thread-pool executor: workers pull specs off a shared channel
// and run them with real wall-clock timing, so stragglers genuinely
// occupy a worker and service-time quantiles are observed. (The crate's
// ImmediateExecutor runs on the submitting thread — a straggler there
// would block the DFK itself, and no attempt could ever overtake it.)
// ---------------------------------------------------------------------------

struct PoolExec {
    label: String,
    workers: usize,
    tx: parking_lot::Mutex<Option<crossbeam::channel::Sender<TaskSpec>>>,
    threads: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl PoolExec {
    fn new(label: &str, workers: usize) -> Self {
        PoolExec {
            label: label.into(),
            workers,
            tx: parking_lot::Mutex::new(None),
            threads: parking_lot::Mutex::new(Vec::new()),
        }
    }
}

impl Executor for PoolExec {
    fn label(&self) -> &str {
        &self.label
    }

    fn start(&self, ctx: ExecutorContext) -> Result<(), ExecutorError> {
        let (tx, rx) = crossbeam::channel::unbounded::<TaskSpec>();
        let mut threads = self.threads.lock();
        for i in 0..self.workers {
            let rx = rx.clone();
            let completions = ctx.completions.clone();
            let worker = format!("{}-w{i}", self.label);
            threads.push(
                std::thread::Builder::new()
                    .name(worker.clone())
                    .spawn(move || {
                        for task in rx.iter() {
                            let started = Instant::now();
                            let result = (task.app.func)(&task.args)
                                .map(bytes::Bytes::from)
                                .map_err(parsl_core::error::TaskError::App);
                            let _ = completions.send(vec![TaskOutcome {
                                id: task.id,
                                attempt: task.attempt,
                                result,
                                worker: Some(worker.clone()),
                                started: Some(started),
                                finished: Some(Instant::now()),
                            }]);
                        }
                    })
                    .expect("spawn pool worker"),
            );
        }
        *self.tx.lock() = Some(tx);
        Ok(())
    }

    fn submit(&self, task: TaskSpec) -> Result<(), ExecutorError> {
        self.tx
            .lock()
            .as_ref()
            .ok_or(ExecutorError::NotRunning)?
            .send(task)
            .map_err(|_| ExecutorError::Comm("pool stopped".into()))
    }

    fn outstanding(&self) -> usize {
        0
    }

    fn connected_workers(&self) -> usize {
        self.workers
    }

    fn shutdown(&self) {
        self.tx.lock().take();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

/// Counts hedge launches off the monitor stream.
#[derive(Default)]
struct HedgeCount(AtomicUsize);

impl MonitorSink for HedgeCount {
    fn on_event(&self, e: &MonitorEvent) {
        if matches!(e, MonitorEvent::Hedge { .. }) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }
}

fn unique_ckpt_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "parsl-hedging-{tag}-{}-{}.ckpt",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ))
}

// ---------------------------------------------------------------------------
// Random diamond DAGs: a fixed wide, fast first layer (it supplies the
// p99 samples that arm the hedge watcher), then random layers where each
// node reads two parents from the previous layer and may be a straggler.
// Values are pure functions of the DAG shape; stragglers only add delay —
// the first execution of a straggling task sleeps, any speculative
// re-execution returns immediately, so a hedge genuinely overtakes.
// ---------------------------------------------------------------------------

const ROOT_WIDTH: usize = 8;
const STRAGGLE_MS: u64 = 100;

#[derive(Debug, Clone)]
struct Dag {
    /// Per layer, per node: (parent a, parent b, straggles). Parent
    /// indices are taken modulo the previous layer's width.
    layers: Vec<Vec<(usize, usize, bool)>>,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    // ~20% of nodes straggle.
    let node = (0usize..8, 0usize..8, (0usize..5).prop_map(|s| s == 0));
    vec(vec(node, 1..5), 1..3).prop_map(|layers| Dag { layers })
}

struct RunOutput {
    values: Vec<Vec<u64>>,
    task_count: usize,
    done: usize,
    checkpoint_frames: usize,
}

fn run(dag: &Dag, hedged: bool) -> RunOutput {
    let ckpt = unique_ckpt_path(if hedged { "hedged" } else { "plain" });
    let mut builder = DataFlowKernel::builder()
        .executor(PoolExec::new("e0", 4))
        .executor(PoolExec::new("e1", 4))
        .memoize(true)
        .checkpoint_file(&ckpt)
        .seed(7);
    if hedged {
        builder = builder.strategy(StrategyConfig::off().hedge(HedgeConfig {
            multiplier: 2.0,
            min_samples: 4,
            min_age: Duration::from_millis(20),
            check_interval: Duration::from_millis(5),
        }));
    }
    let dfk = builder.build().unwrap();

    // First-execution tracker: a straggling task sleeps only the first
    // time its (unique) base is seen, so the hedge attempt runs fast.
    let first = Arc::new(parking_lot::Mutex::new(HashSet::<u64>::new()));
    let node = dfk.python_app("node", move |base: u64, a: u64, b: u64, straggle: bool| {
        if straggle && first.lock().insert(base) {
            std::thread::sleep(Duration::from_millis(STRAGGLE_MS));
        }
        base.wrapping_add(a).wrapping_add(b)
    });

    let mut futures: Vec<Vec<AppFuture<u64>>> = Vec::new();
    let roots: Vec<AppFuture<u64>> = (0..ROOT_WIDTH)
        .map(|ni| {
            node.call((
                Dep::value(1000 + ni as u64),
                Dep::value(0u64),
                Dep::value(0u64),
                Dep::value(false),
            ))
        })
        .collect();
    futures.push(roots);
    for (li, layer) in dag.layers.iter().enumerate() {
        let prev_len = futures[li].len();
        let layer_futs = layer
            .iter()
            .enumerate()
            .map(|(ni, &(a, b, straggle))| {
                // Bases are globally unique: every task has its own memo
                // key, so checkpoint frames count tasks one-to-one.
                let base = (li as u64 + 2) * 1000 + ni as u64;
                node.call((
                    Dep::value(base),
                    Dep::future(futures[li][a % prev_len].clone()),
                    Dep::future(futures[li][b % prev_len].clone()),
                    Dep::value(straggle),
                ))
            })
            .collect();
        futures.push(layer_futs);
    }

    let values: Vec<Vec<u64>> = futures
        .iter()
        .map(|layer| layer.iter().map(|f| f.result().unwrap()).collect())
        .collect();
    dfk.wait_for_all();
    let task_count = dfk.task_count();
    let done = dfk
        .state_counts()
        .into_iter()
        .filter(|&(s, _)| s == TaskState::Done)
        .map(|(_, n)| n)
        .sum();
    dfk.shutdown();

    let checkpoint_frames = Memoizer::new(true)
        .load_checkpoint(&ckpt)
        .expect("readable checkpoint");
    let _ = std::fs::remove_file(&ckpt);
    RunOutput {
        values,
        task_count,
        done,
        checkpoint_frames,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hedged ≡ unhedged: identical values, identical task counts, every
    /// task terminal in `Done`, and exactly one checkpoint record per
    /// task in both runs — speculation never double-commits.
    #[test]
    fn hedged_run_equals_unhedged_run(dag in dag_strategy()) {
        let plain = run(&dag, false);
        let hedged = run(&dag, true);
        prop_assert_eq!(&plain.values, &hedged.values);
        prop_assert_eq!(plain.task_count, hedged.task_count);
        prop_assert_eq!(plain.done, plain.task_count, "unhedged: non-Done terminals");
        prop_assert_eq!(hedged.done, hedged.task_count, "hedged: non-Done terminals");
        prop_assert_eq!(plain.checkpoint_frames, plain.task_count,
            "unhedged: checkpoint not exactly-once");
        prop_assert_eq!(hedged.checkpoint_frames, hedged.task_count,
            "hedged: checkpoint not exactly-once");
    }
}

/// The mechanism, deterministically: a primary attempt parked behind a
/// gate only this test opens still resolves, because the hedge watcher
/// launches a duplicate that wins the race. The gate is then opened and
/// the loser's late result is discarded (the task settles exactly once).
#[test]
fn hedge_overtakes_a_blocked_primary() {
    let hedges = Arc::new(HedgeCount::default());
    let dfk = DataFlowKernel::builder()
        .executor(PoolExec::new("e0", 2))
        .executor(PoolExec::new("e1", 2))
        .strategy(StrategyConfig::off().hedge(HedgeConfig {
            multiplier: 2.0,
            min_samples: 4,
            min_age: Duration::from_millis(20),
            check_interval: Duration::from_millis(5),
        }))
        .monitor(Arc::clone(&hedges) as Arc<dyn MonitorSink>)
        .build()
        .unwrap();

    let release = Arc::new(AtomicBool::new(false));
    let executions = Arc::new(AtomicUsize::new(0));
    let gate = dfk.python_app("gate", {
        let release = Arc::clone(&release);
        let executions = Arc::clone(&executions);
        move |id: u64, blocking: bool| {
            // Only the FIRST execution of the blocking task waits on the
            // gate; the speculative duplicate returns immediately. The
            // watchdog bounds a failed test instead of hanging it.
            if blocking && executions.fetch_add(1, Ordering::SeqCst) == 0 {
                let watchdog = Instant::now();
                while !release.load(Ordering::SeqCst)
                    && watchdog.elapsed() < Duration::from_secs(10)
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            id
        }
    });

    // Fast tasks arm the p99 estimator (min_samples = 4).
    for i in 0..8u64 {
        let f = gate.call((Dep::value(i), Dep::value(false)));
        assert_eq!(f.result().unwrap(), i);
    }

    let blocked = gate.call((Dep::value(99u64), Dep::value(true)));
    // The primary is wedged on the gate; only a hedge can resolve this.
    let v = blocked
        .result_timeout(Duration::from_secs(5))
        .expect("hedge resolves the blocked task");
    assert_eq!(v, 99);
    assert!(
        !release.load(Ordering::SeqCst),
        "gate opened early: the primary could have finished on its own"
    );
    assert!(
        hedges.0.load(Ordering::SeqCst) >= 1,
        "no hedge was launched"
    );

    // Open the gate so the losing primary finishes; its late result is
    // discarded by the attempt filter and the pool can shut down.
    release.store(true, Ordering::SeqCst);
    dfk.wait_for_all();
    assert_eq!(
        dfk.state_counts()
            .into_iter()
            .find(|&(s, _)| s == TaskState::Done)
            .map(|(_, n)| n),
        Some(9),
        "every task settles exactly once"
    );
    dfk.shutdown();
}
