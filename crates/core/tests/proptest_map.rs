//! Property: `app.map` is observationally equivalent to N individual
//! `invoke().call()`s — same per-item values, same failure classification
//! — for random inputs and chunk sizes, while the monitoring plane sees
//! fused events that expand to the same logical item counts.

use parsl_core::fusion::MapOptions;
use parsl_core::monitor::{MonitorEvent, MonitorSink};
use parsl_core::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

/// A comparable rendering of one logical item's outcome.
fn normalize(r: Result<u64, ParslError>) -> Result<u64, String> {
    match r {
        Ok(v) => Ok(v),
        Err(ParslError::Task(TaskError::App(e))) => Err(e.to_string()),
        Err(e) => panic!("unexpected error shape: {e:?}"),
    }
}

fn app_body(x: u64, with_failures: bool) -> Result<u64, AppError> {
    if with_failures && x % 7 == 0 {
        Err(AppError::Failure(format!("rejects {x}")))
    } else {
        Ok(x.wrapping_mul(2654435761).rotate_left(11))
    }
}

fn run_map(inputs: &[u64], chunk: Option<usize>, with_failures: bool) -> Vec<Result<u64, String>> {
    let dfk = DataFlowKernel::builder()
        .executor(ImmediateExecutor::new())
        .build()
        .unwrap();
    let app = dfk.python_app_fallible("under_test", move |x: u64| app_body(x, with_failures));
    let handle = app.map_with(
        inputs.to_vec(),
        MapOptions {
            chunk_size: chunk,
            ..MapOptions::default()
        },
    );
    let out = handle.results().into_iter().map(normalize).collect();
    dfk.shutdown();
    out
}

fn run_individual(inputs: &[u64], with_failures: bool) -> Vec<Result<u64, String>> {
    let dfk = DataFlowKernel::builder()
        .executor(ImmediateExecutor::new())
        .build()
        .unwrap();
    let app = dfk.python_app_fallible("under_test", move |x: u64| app_body(x, with_failures));
    let futs: Vec<AppFuture<u64>> = inputs
        .iter()
        .map(|&x| app.invoke().call((Dep::value(x),)))
        .collect();
    let out = futs.into_iter().map(|f| normalize(f.result())).collect();
    dfk.shutdown();
    out
}

/// Per-terminal-state (events, logical items) tallies.
#[derive(Default)]
struct Tally(parking_lot::Mutex<std::collections::BTreeMap<String, (usize, usize)>>);

impl MonitorSink for Tally {
    fn on_event(&self, event: &MonitorEvent) {
        if let MonitorEvent::Task { state, items, .. } = event {
            if state.is_terminal() {
                let mut m = self.0.lock();
                let e = m.entry(state.to_string()).or_insert((0, 0));
                e.0 += 1;
                e.1 += *items as usize;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused map and N individual calls agree item for item: successful
    /// values byte-for-byte, failures with identical classification and
    /// message, in input order.
    #[test]
    fn map_equals_individual_calls(
        inputs in vec(0u64..1000, 0..60),
        chunk in 1usize..9,
        auto in any::<bool>(),
        with_failures in any::<bool>(),
    ) {
        let chunk = if auto { None } else { Some(chunk) };
        let fused = run_map(&inputs, chunk, with_failures);
        let individual = run_individual(&inputs, with_failures);
        prop_assert_eq!(fused, individual);
    }

    /// The monitor sees ~n/chunk fused Done events whose `items` weights
    /// expand back to exactly n logical completions (clean runs only:
    /// split-retry re-reports remainder items, like retries re-report
    /// attempts).
    #[test]
    fn fused_events_expand_to_logical_counts(
        n in 0usize..200,
        chunk in 1usize..17,
    ) {
        let tally = Arc::new(Tally::default());
        let dfk = DataFlowKernel::builder()
            .executor(ImmediateExecutor::new())
            .monitor(Arc::clone(&tally) as Arc<dyn MonitorSink>)
            .build()
            .unwrap();
        let id = dfk.python_app("id", |x: u64| x);
        let handle = id.map_with(
            0..n as u64,
            MapOptions { chunk_size: Some(chunk), ..MapOptions::default() },
        );
        prop_assert!(handle.results().iter().all(|r| r.is_ok()));
        dfk.wait_for_all();
        let m = tally.0.lock();
        if n == 0 {
            prop_assert!(m.is_empty());
        } else {
            let (events, items) = m.get("done").copied().unwrap_or((0, 0));
            prop_assert_eq!(events, n.div_ceil(chunk));
            prop_assert_eq!(items, n);
            prop_assert_eq!(m.len(), 1);
        }
        dfk.shutdown();
    }
}
