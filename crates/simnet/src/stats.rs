//! Measurement containers: sample sets and stepwise time series.

use crate::time::SimTime;

/// A bag of scalar samples with summary statistics.
///
/// Used for task latencies (Figure 3) and completion times. Quantiles use
/// the nearest-rank method over a lazily sorted copy.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean (0 for an empty set).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Smallest observation (0 for an empty set).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation (0 for an empty set).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Quantile `q` in `[0, 1]` by nearest rank. Panics on an empty set.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.values.is_empty(), "quantile of empty sample set");
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let idx = ((self.values.len() - 1) as f64 * q).round() as usize;
        self.values[idx]
    }

    /// All raw samples, in insertion order unless a quantile was taken.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A stepwise-constant time series: the value set at each instant holds
/// until the next record. Used for worker counts and utilization (Fig. 6).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the value became `v` at time `t` (non-decreasing `t`).
    pub fn record(&mut self, t: SimTime, v: f64) {
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(t >= last_t, "time series must be recorded in order");
        }
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Value in effect at time `t` (None before the first record).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Integral of the series over `[first_record, end]` divided by the
    /// span — the time-weighted average value.
    pub fn time_weighted_mean(&self, end: SimTime) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let start = self.points[0].0;
        if end <= start {
            return self.points[0].1;
        }
        let mut integral = 0.0;
        for w in self.points.windows(2) {
            let (t0, v) = w[0];
            let (t1, _) = w[1];
            let hi = t1.min(end);
            if hi > t0 {
                integral += v * (hi - t0).as_secs_f64();
            }
        }
        let (tl, vl) = *self.points.last().expect("non-empty");
        if end > tl {
            integral += vl * (end - tl).as_secs_f64();
        }
        integral / (end - start).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_safe() {
        let s = Samples::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let mut s = Samples::new();
        for _ in 0..10 {
            s.record(4.2);
        }
        assert!(s.stddev() < 1e-9);
    }

    #[test]
    fn stddev_known_value() {
        let mut s = Samples::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev() - 2.138).abs() < 0.01);
    }

    #[test]
    fn value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(1), 10.0);
        ts.record(SimTime::from_secs(5), 20.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(3)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(20.0));
        assert_eq!(ts.value_at(SimTime::from_secs(9)), Some(20.0));
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn out_of_order_record_panics() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(2), 1.0);
        ts.record(SimTime::from_secs(1), 2.0);
    }
}
