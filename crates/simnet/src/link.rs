//! Network link model: latency plus optional serialization bandwidth.

use crate::time::SimTime;

/// A one-way network pipe.
///
/// Transmission time = queueing behind earlier messages on this link
/// (bytes ÷ bandwidth each) + propagation `latency`. With `bandwidth:
/// None` the link is a pure-latency wire, appropriate when message sizes
/// are negligible (the paper's no-op task experiments).
#[derive(Debug, Clone)]
pub struct Link {
    latency: SimTime,
    bandwidth: Option<u64>,
    busy_until: SimTime,
    messages: u64,
    bytes: u64,
}

impl Link {
    /// Create a link with propagation `latency` and optional serialization
    /// `bandwidth` in bytes/second.
    pub fn new(latency: SimTime, bandwidth: Option<u64>) -> Self {
        assert!(bandwidth != Some(0), "zero bandwidth link");
        Link {
            latency,
            bandwidth,
            busy_until: SimTime::ZERO,
            messages: 0,
            bytes: 0,
        }
    }

    /// Send `bytes` at `now`; returns the arrival instant at the far end.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.messages += 1;
        self.bytes += bytes;
        match self.bandwidth {
            None => now + self.latency,
            Some(bw) => {
                let ser = SimTime::from_secs_f64(bytes as f64 / bw as f64);
                let start = self.busy_until.max(now);
                self.busy_until = start + ser;
                self.busy_until + self.latency
            }
        }
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Messages transmitted.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Payload bytes transmitted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut l = Link::new(SimTime::from_micros(10), None);
        l.transmit(SimTime::ZERO, 100);
        l.transmit(SimTime::ZERO, 50);
        assert_eq!(l.messages(), 2);
        assert_eq!(l.bytes(), 150);
    }

    #[test]
    fn bandwidth_queues_but_latency_does_not() {
        let mut l = Link::new(SimTime::from_millis(1), Some(1000)); // 1 KB/s
                                                                    // 10 bytes = 10 ms serialization.
        let a1 = l.transmit(SimTime::ZERO, 10);
        let a2 = l.transmit(SimTime::ZERO, 10);
        assert_eq!(a1, SimTime::from_millis(11));
        assert_eq!(a2, SimTime::from_millis(21));
        // After the pipe drains, no queueing.
        let a3 = l.transmit(SimTime::from_millis(100), 10);
        assert_eq!(a3, SimTime::from_millis(111));
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(SimTime::ZERO, Some(0));
    }
}
